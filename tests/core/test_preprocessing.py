"""Tests for STONE's fingerprint preprocessing (paper Sec. IV.B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    FingerprintImagePreprocessor,
    denormalize_rssi,
    normalize_rssi,
    pad_to_square,
    square_side_for,
)


class TestNormalization:
    def test_endpoints(self):
        assert normalize_rssi(np.array([-100.0])).item() == 0.0
        assert normalize_rssi(np.array([0.0])).item() == 1.0

    def test_midpoint(self):
        assert normalize_rssi(np.array([-50.0])).item() == pytest.approx(0.5)

    def test_clipping_out_of_range(self):
        out = normalize_rssi(np.array([-150.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])

    @given(
        arrays(
            np.float64,
            (3, 5),
            elements=st.floats(-100.0, 0.0, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, rssi):
        np.testing.assert_allclose(
            denormalize_rssi(normalize_rssi(rssi)), rssi, atol=1e-9
        )

    @given(
        arrays(
            np.float64,
            (2, 4),
            elements=st.floats(-200.0, 50.0, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_output_in_unit_interval(self, rssi):
        out = normalize_rssi(rssi)
        assert (out >= 0).all() and (out <= 1).all()

    def test_denormalize_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            denormalize_rssi(np.array([1.5]))


class TestPadding:
    @pytest.mark.parametrize(
        "n,side", [(1, 1), (4, 2), (5, 3), (9, 3), (10, 4), (60, 8), (64, 8), (65, 9)]
    )
    def test_square_side(self, n, side):
        assert square_side_for(n) == side

    def test_square_side_invalid(self):
        with pytest.raises(ValueError):
            square_side_for(0)

    def test_pad_preserves_prefix(self):
        v = np.arange(1, 6, dtype=float)[None, :]
        padded = pad_to_square(v)
        assert padded.shape == (1, 9)
        np.testing.assert_array_equal(padded[0, :5], v[0])
        np.testing.assert_array_equal(padded[0, 5:], 0.0)

    def test_pad_noop_for_perfect_square(self):
        v = np.ones((2, 16))
        assert pad_to_square(v).shape == (2, 16)


class TestPreprocessor:
    def test_fit_locks_geometry(self):
        pre = FingerprintImagePreprocessor().fit(np.zeros((3, 60)) - 100)
        assert pre.n_aps == 60
        assert pre.image_side == 8
        assert pre.image_shape() == (1, 8, 8)

    def test_transform_shape_and_dtype(self):
        pre = FingerprintImagePreprocessor().fit(np.zeros((3, 10)) - 100)
        images = pre.transform(np.full((5, 10), -50.0))
        assert images.shape == (5, 1, 4, 4)
        assert images.dtype == np.float32

    def test_transform_values(self):
        pre = FingerprintImagePreprocessor().fit(np.zeros((1, 4)) - 100)
        img = pre.transform(np.array([[-100.0, -75.0, -50.0, 0.0]]))
        np.testing.assert_allclose(
            img.reshape(-1), [0.0, 0.25, 0.5, 1.0], atol=1e-6
        )

    def test_column_mismatch_rejected(self):
        pre = FingerprintImagePreprocessor().fit(np.zeros((1, 10)) - 100)
        with pytest.raises(ValueError):
            pre.transform(np.zeros((1, 11)) - 100)

    def test_use_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            FingerprintImagePreprocessor().transform(np.zeros((1, 4)))

    def test_padded_tail_is_zero(self):
        pre = FingerprintImagePreprocessor().fit(np.zeros((1, 5)) - 100)
        img = pre.transform(np.full((1, 5), -20.0)).reshape(-1)
        np.testing.assert_array_equal(img[5:], 0.0)

    def test_fit_transform(self):
        pre = FingerprintImagePreprocessor()
        images = pre.fit_transform(np.full((2, 9), -40.0))
        assert images.shape == (2, 1, 3, 3)
