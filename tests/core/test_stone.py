"""Tests for the STONE facade and its configuration."""

import numpy as np
import pytest

from repro.core import StoneConfig, StoneLocalizer
from repro.core.encoder import PER_SUITE_EMBEDDING_DIM
from repro.geometry import build_grid_floorplan

from ..conftest import make_synthetic_dataset

FAST = dict(epochs=4, steps_per_epoch=8, batch_size=16)


@pytest.fixture(scope="module")
def fitted_stone():
    train = make_synthetic_dataset(n_rps=6, fpr=4, n_aps=12, seed=3)
    fp = build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)
    stone = StoneLocalizer(StoneConfig(**FAST, seed=1))
    stone.fit(train, fp, rng=np.random.default_rng(1))
    return stone, train, fp


class TestStoneConfig:
    def test_paper_defaults(self):
        config = StoneConfig()
        assert config.p_upper == 0.90
        assert config.triplet_strategy == "floorplan"
        assert config.encoder.conv_filters == (64, 128)
        assert config.encoder.kernel_size == (2, 2)

    def test_for_suite_embedding_dims(self):
        for suite, dim in PER_SUITE_EMBEDDING_DIM.items():
            assert StoneConfig.for_suite(suite).encoder.embedding_dim == dim
        # paper: embedding length lies in 3..10
        assert all(3 <= d <= 10 for d in PER_SUITE_EMBEDDING_DIM.values())

    def test_with_embedding_dim(self):
        config = StoneConfig().with_embedding_dim(9)
        assert config.encoder.embedding_dim == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            StoneConfig(p_upper=1.5)
        with pytest.raises(ValueError):
            StoneConfig(triplet_strategy="magic")
        with pytest.raises(ValueError):
            StoneConfig(learning_rate=-1)


class TestStoneLocalizer:
    def test_predict_shape(self, fitted_stone):
        stone, train, _ = fitted_stone
        pred = stone.predict(train.rssi[:5])
        assert pred.shape == (5, 2)

    def test_training_rssi_relocalized_close(self, fitted_stone):
        stone, train, _ = fitted_stone
        pred = stone.predict(train.rssi)
        err = np.linalg.norm(pred - train.locations, axis=1)
        # synthetic RPs are well separated; most train scans must come home
        assert np.median(err) < 2.0

    def test_predict_rp_labels_valid(self, fitted_stone):
        stone, train, _ = fitted_stone
        rps = stone.predict_rp(train.rssi[:8])
        assert set(rps.tolist()) <= set(train.rp_set.tolist())

    def test_embeddings_unit_norm(self, fitted_stone):
        stone, train, _ = fitted_stone
        emb = stone.embed_rssi(train.rssi[:6])
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1), 1.0, rtol=1e-5)

    def test_predict_before_fit_rejected(self):
        stone = StoneLocalizer(StoneConfig(**FAST))
        with pytest.raises(RuntimeError):
            stone.predict(np.zeros((1, 12)) - 100)

    def test_wrong_ap_count_rejected(self, fitted_stone):
        stone, _, _ = fitted_stone
        with pytest.raises(ValueError):
            stone.predict(np.zeros((1, 99)) - 100)

    def test_begin_epoch_is_noop(self, fitted_stone):
        """STONE never re-trains: begin_epoch must not change predictions."""
        stone, train, _ = fitted_stone
        before = stone.predict(train.rssi[:5])
        stone.begin_epoch(3, train.rssi)
        after = stone.predict(train.rssi[:5])
        np.testing.assert_array_equal(before, after)
        assert stone.requires_retraining is False

    def test_deterministic_under_seed(self):
        train = make_synthetic_dataset(n_rps=5, fpr=3, n_aps=10, seed=4)
        fp = build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)
        preds = []
        for _ in range(2):
            stone = StoneLocalizer(StoneConfig(**FAST, seed=9))
            stone.fit(train, fp, rng=np.random.default_rng(9))
            preds.append(stone.predict(train.rssi[:6]))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_save_load_encoder_roundtrip(self, fitted_stone, tmp_path):
        stone, train, fp = fitted_stone
        path = tmp_path / "encoder.npz"
        stone.save_encoder(path)
        restored = StoneLocalizer(stone.config).load_encoder(path, train)
        np.testing.assert_allclose(
            restored.predict(train.rssi[:6]), stone.predict(train.rssi[:6])
        )

    def test_history_populated(self, fitted_stone):
        stone, _, _ = fitted_stone
        assert stone.history is not None
        assert len(stone.history.loss) == FAST["epochs"]
        assert np.isfinite(stone.history.final_loss)

    def test_set_encoder_quantized_predictions_close(self, fitted_stone):
        from repro.compress import quantize_model

        stone, train, fp = fitted_stone
        before = stone.predict(train.rssi)
        original = stone.encoder
        quantized = quantize_model(original)
        stone.set_encoder(quantized.dequantized_model())
        after = stone.predict(train.rssi)
        drift = np.linalg.norm(before - after, axis=1)
        # int8 weight error must not move predictions more than one RP.
        assert np.median(drift) <= 2.0
        stone.set_encoder(original)
        assert np.allclose(stone.predict(train.rssi), before)

    def test_set_encoder_before_fit_rejected(self):
        stone = StoneLocalizer(StoneConfig(**FAST))
        with pytest.raises(RuntimeError):
            stone.set_encoder(None)

    def test_set_encoder_after_load(self, fitted_stone, tmp_path):
        stone, train, fp = fitted_stone
        path = tmp_path / "enc.npz"
        stone.save_encoder(path)
        fresh = StoneLocalizer(StoneConfig(**FAST))
        fresh.load_encoder(path, train)
        fresh.set_encoder(fresh.encoder)  # cache populated by load
        assert fresh.predict(train.rssi).shape == (train.n_samples, 2)

    def test_uniform_strategy_variant(self):
        train = make_synthetic_dataset(n_rps=5, fpr=3, n_aps=10, seed=5)
        fp = build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)
        stone = StoneLocalizer(
            StoneConfig(**FAST, triplet_strategy="uniform", seed=2)
        )
        stone.fit(train, fp, rng=np.random.default_rng(2))
        assert stone.predict(train.rssi[:3]).shape == (3, 2)

    def test_augmentation_disabled_variant(self):
        train = make_synthetic_dataset(n_rps=5, fpr=3, n_aps=10, seed=6)
        fp = build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)
        stone = StoneLocalizer(StoneConfig(**FAST, p_upper=0.0, seed=2))
        stone.fit(train, fp, rng=np.random.default_rng(2))
        assert stone.predict(train.rssi[:3]).shape == (3, 2)
