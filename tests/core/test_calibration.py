"""Tests for the embedding-dimension calibration sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    StoneConfig,
    holdout_split,
    select_embedding_dim,
)
from repro.geometry import build_grid_floorplan

from ..conftest import make_synthetic_dataset

FAST = StoneConfig(epochs=3, steps_per_epoch=6, batch_size=16)


@pytest.fixture(scope="module")
def setup():
    train = make_synthetic_dataset(n_rps=6, fpr=4, n_aps=12, seed=3)
    fp = build_grid_floorplan("c", width=8, height=6, rp_spacing=2.0, margin=1.0)
    return train, fp


class TestHoldoutSplit:
    def test_one_holdout_per_rp(self, setup):
        train, _ = setup
        fit, val = holdout_split(train, np.random.default_rng(0))
        assert val.n_samples == train.rp_set.size
        assert fit.n_samples + val.n_samples == train.n_samples
        # Every RP still has fit samples.
        assert set(fit.rp_set.tolist()) == set(train.rp_set.tolist())

    def test_single_sample_rps_stay_in_fit(self):
        train = make_synthetic_dataset(n_rps=4, fpr=1, n_aps=8, seed=1)
        extra = make_synthetic_dataset(n_rps=4, fpr=2, n_aps=8, seed=2)
        merged = train.merge(extra)
        fit, val = holdout_split(merged, np.random.default_rng(0))
        # fpr=1 rows cannot be held out; only the fpr=2 RPs contribute.
        assert val.n_samples == 4

    def test_all_singletons_rejected(self):
        train = make_synthetic_dataset(n_rps=4, fpr=1, n_aps=8, seed=1)
        with pytest.raises(ValueError):
            holdout_split(train, np.random.default_rng(0))


class TestSelectEmbeddingDim:
    def test_sweep_returns_all_points(self, setup):
        train, fp = setup
        result = select_embedding_dim(
            train,
            fp,
            dims=(3, 5),
            base_config=FAST,
            rng=np.random.default_rng(0),
        )
        assert [p.embedding_dim for p in result.points] == [3, 5]
        for p in result.points:
            assert np.isfinite(p.val_error_m)
            assert np.isfinite(p.final_loss)

    def test_best_is_minimum(self, setup):
        train, fp = setup
        result = select_embedding_dim(
            train,
            fp,
            dims=(3, 5, 8),
            base_config=FAST,
            rng=np.random.default_rng(1),
        )
        assert result.best.val_error_m == min(
            p.val_error_m for p in result.points
        )

    def test_table_marks_best(self, setup):
        train, fp = setup
        result = select_embedding_dim(
            train, fp, dims=(3, 5), base_config=FAST,
            rng=np.random.default_rng(2),
        )
        assert "<- best" in result.table()

    def test_empty_dims_rejected(self, setup):
        train, fp = setup
        with pytest.raises(ValueError):
            select_embedding_dim(train, fp, dims=())
