"""Tests for the turn-off augmentation (Sec. IV.C) and triplet selection
(Sec. IV.E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FloorplanTripletSelector,
    TurnOffAugmentation,
    UniformTripletSelector,
    make_selector,
    simulate_ap_removal,
)
from repro.geometry import build_grid_floorplan


def rng():
    return np.random.default_rng(21)


def _batch(n=20, f=36, density=0.6, seed=21):
    r = np.random.default_rng(seed)
    batch = r.uniform(0.1, 1.0, size=(n, f)).astype(np.float32)
    batch[r.random((n, f)) > density] = 0.0
    return batch


class TestTurnOffAugmentation:
    def test_p_zero_is_identity(self):
        batch = _batch()
        out = TurnOffAugmentation(0.0)(batch, rng())
        np.testing.assert_array_equal(out, batch)

    def test_input_not_mutated(self):
        batch = _batch()
        before = batch.copy()
        TurnOffAugmentation(0.9)(batch, rng())
        np.testing.assert_array_equal(batch, before)

    def test_only_turns_off_never_on(self):
        batch = _batch()
        out = TurnOffAugmentation(0.9)(batch, rng())
        # every changed entry went to exactly zero
        changed = out != batch
        assert (out[changed] == 0.0).all()
        # zeros stayed zero
        assert (out[batch == 0.0] == 0.0).all()

    def test_expected_fraction(self):
        assert TurnOffAugmentation(0.9).expected_turned_off_fraction() == 0.45

    def test_statistical_turn_off_rate(self):
        batch = np.ones((400, 64), np.float32)
        out = TurnOffAugmentation(0.9)(batch, rng())
        off_frac = (out == 0).mean()
        # E[U(0, .9)] = .45, averaged over many rows
        assert 0.38 < off_frac < 0.52

    def test_images_supported(self):
        imgs = _batch(8, 36).reshape(8, 1, 6, 6)
        out = TurnOffAugmentation(0.5)(imgs, rng())
        assert out.shape == imgs.shape

    def test_invalid_p_upper(self):
        with pytest.raises(ValueError):
            TurnOffAugmentation(1.2)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_property_off_fraction_bounded_by_p_upper(self, p):
        batch = np.ones((30, 25), np.float32)
        out = TurnOffAugmentation(p)(batch, np.random.default_rng(5))
        per_row_off = (out == 0).mean(axis=1)
        # each row turns off at most ~p of its pixels (+rounding slack)
        assert (per_row_off <= p + 0.05).all()


class TestSimulateAPRemoval:
    def test_removes_whole_columns(self):
        rssi = np.full((10, 20), -50.0)
        out = simulate_ap_removal(rssi, 0.25, rng())
        removed_cols = (out == -100.0).all(axis=0)
        assert removed_cols.sum() == 5
        assert ((out == -50.0).all(axis=0) | removed_cols).all()

    def test_zero_fraction_noop(self):
        rssi = np.full((3, 8), -40.0)
        np.testing.assert_array_equal(simulate_ap_removal(rssi, 0.0, rng()), rssi)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            simulate_ap_removal(np.zeros((1, 4)), 1.5, rng())


class TestSelectors:
    def _floorplan(self):
        return build_grid_floorplan("t", width=12, height=12, rp_spacing=2.0, margin=2.0)

    def _rp_indices(self, n_rps, fpr=3):
        return np.repeat(np.arange(n_rps), fpr)

    def test_uniform_negative_never_anchor(self):
        sel = UniformTripletSelector(self._rp_indices(8))
        batch = sel.sample(200, rng())
        a_rp = sel.rp_indices[batch.anchor]
        n_rp = sel.rp_indices[batch.negative]
        assert (a_rp != n_rp).all()

    def test_positive_same_rp_as_anchor(self):
        sel = UniformTripletSelector(self._rp_indices(8))
        batch = sel.sample(200, rng())
        a_rp = sel.rp_indices[batch.anchor]
        p_rp = sel.rp_indices[batch.positive]
        assert (a_rp == p_rp).all()

    def test_positive_differs_from_anchor_row_when_possible(self):
        sel = UniformTripletSelector(self._rp_indices(8, fpr=3))
        batch = sel.sample(300, rng())
        assert (batch.anchor != batch.positive).all()

    def test_fpr1_positive_degenerates_to_anchor(self):
        sel = UniformTripletSelector(self._rp_indices(5, fpr=1))
        batch = sel.sample(50, rng())
        assert (batch.anchor == batch.positive).all()

    def test_single_rp_rejected(self):
        with pytest.raises(ValueError):
            UniformTripletSelector(np.zeros(4, dtype=np.int64))

    def test_floorplan_selector_zero_self_probability(self):
        fp = self._floorplan()
        sel = FloorplanTripletSelector(
            self._rp_indices(fp.n_reference_points), fp, sigma_m=3.0
        )
        for rp in (0, 5, fp.n_reference_points - 1):
            probs = sel.negative_distribution(rp)
            row = int(np.flatnonzero(sel.rp_labels == rp)[0])
            assert probs[row] == 0.0
            assert probs.sum() == pytest.approx(1.0)

    def test_floorplan_selector_prefers_nearby(self):
        fp = self._floorplan()
        sel = FloorplanTripletSelector(
            self._rp_indices(fp.n_reference_points), fp, sigma_m=2.0
        )
        anchor = 0
        probs = sel.negative_distribution(anchor)
        d = fp.rp_distance_matrix()[anchor]
        nearest = np.argsort(d)[1]
        farthest = np.argsort(d)[-1]
        assert probs[nearest] > probs[farthest]

    def test_floorplan_selector_empirical_bias(self):
        fp = self._floorplan()
        sel = FloorplanTripletSelector(
            self._rp_indices(fp.n_reference_points), fp, sigma_m=2.0
        )
        batch = sel.sample(3000, rng())
        a_rp = sel.rp_indices[batch.anchor]
        n_rp = sel.rp_indices[batch.negative]
        d = fp.rp_distance_matrix()
        dists = np.array([d[a, n] for a, n in zip(a_rp, n_rp)])
        # mean selected-negative distance well below the floor's mean RP distance
        assert dists.mean() < d.mean() * 0.8

    def test_floorplan_selector_wide_sigma_approaches_uniform(self):
        fp = self._floorplan()
        sel = FloorplanTripletSelector(
            self._rp_indices(fp.n_reference_points), fp, sigma_m=1e4
        )
        probs = sel.negative_distribution(0)
        nonzero = probs[probs > 0]
        assert nonzero.max() / nonzero.min() < 1.001

    def test_subset_of_rps_supported(self):
        """Training data may cover only some of the floorplan's RPs."""
        fp = self._floorplan()
        labels = np.array([0, 0, 3, 3, 7, 7])
        sel = FloorplanTripletSelector(labels, fp, sigma_m=3.0)
        batch = sel.sample(100, rng())
        assert set(np.unique(sel.rp_indices[batch.anchor])) <= {0, 3, 7}

    def test_rp_outside_floorplan_rejected(self):
        fp = self._floorplan()
        bad = np.array([0, 1, fp.n_reference_points + 5])
        with pytest.raises(ValueError, match="outside"):
            FloorplanTripletSelector(bad, fp)

    def test_factory(self):
        fp = self._floorplan()
        labels = self._rp_indices(fp.n_reference_points)
        assert isinstance(make_selector("uniform", labels), UniformTripletSelector)
        assert isinstance(
            make_selector("floorplan", labels, fp), FloorplanTripletSelector
        )
        with pytest.raises(ValueError):
            make_selector("floorplan", labels)  # floorplan missing
        with pytest.raises(KeyError):
            make_selector("hardest", labels, fp)

    def test_batch_size_validation(self):
        sel = UniformTripletSelector(self._rp_indices(4))
        with pytest.raises(ValueError):
            sel.sample(0, rng())
