"""Tests for the KNN head's soft-score surface (per-RP distances)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KNNHead


def fitted_head(seed: int = 0, n_rps: int = 4, per_rp: int = 3, dim: int = 5):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_rps, dim))
    embeddings = np.repeat(centers, per_rp, axis=0) + rng.normal(
        0.0, 0.05, size=(n_rps * per_rp, dim)
    )
    labels = np.repeat(np.arange(n_rps), per_rp)
    locations = np.column_stack(
        [np.repeat(np.arange(n_rps, dtype=float), per_rp), np.zeros(n_rps * per_rp)]
    )
    head = KNNHead(k=3).fit(embeddings, labels, locations)
    return head, centers


class TestRpLabels:
    def test_sorted_unique(self):
        head, _ = fitted_head()
        assert head.rp_labels.tolist() == [0, 1, 2, 3]

    def test_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            KNNHead().rp_labels


class TestPerRpDistances:
    def test_shape_and_alignment(self):
        head, centers = fitted_head()
        labels, distances = head.per_rp_distances(centers)
        assert labels.tolist() == [0, 1, 2, 3]
        assert distances.shape == (4, 4)

    def test_own_center_is_nearest(self):
        head, centers = fitted_head()
        _, distances = head.per_rp_distances(centers)
        assert (distances.argmin(axis=1) == np.arange(4)).all()

    def test_min_over_references_not_mean(self):
        # One RP with two references, one close and one far: the per-RP
        # distance must be the close one's.
        embeddings = np.array([[0.0, 0.0], [10.0, 0.0]])
        head = KNNHead(k=1).fit(
            embeddings, np.array([7, 7]), np.zeros((2, 2))
        )
        labels, distances = head.per_rp_distances(np.array([[0.1, 0.0]]))
        assert labels.tolist() == [7]
        assert distances[0, 0] == pytest.approx(0.1, abs=1e-9)

    def test_single_query_vector_promoted(self):
        head, centers = fitted_head()
        _, distances = head.per_rp_distances(centers[0])
        assert distances.shape == (1, 4)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_distances_nonnegative_and_consistent_with_kneighbors(self, seed):
        head, _ = fitted_head(seed=seed)
        rng = np.random.default_rng(seed + 1)
        queries = rng.normal(size=(3, 5))
        _, distances = head.per_rp_distances(queries)
        assert (distances >= 0).all()
        # The global nearest neighbour's distance equals the min over RPs.
        knn_dist, _ = head.kneighbors(queries)
        assert np.allclose(distances.min(axis=1), knn_dist[:, 0], atol=1e-9)
