"""Tests for the encoder architecture, Siamese training and KNN head."""

import numpy as np
import pytest

from repro.core import (
    EncoderConfig,
    KNNHead,
    SiameseTrainer,
    TurnOffAugmentation,
    UniformTripletSelector,
    build_encoder,
    embed,
)
from repro.nn import Adam, TripletLoss


def rng():
    return np.random.default_rng(31)


class TestEncoderArchitecture:
    def test_output_is_unit_normalized(self):
        model = build_encoder(6, EncoderConfig(embedding_dim=4), rng=rng())
        x = rng().random((10, 1, 6, 6)).astype(np.float32)
        out = model.predict(x)
        assert out.shape == (10, 4)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, rtol=1e-5)

    def test_paper_architecture_layers(self):
        model = build_encoder(8, EncoderConfig(), rng=rng())
        names = [layer.__class__.__name__ for layer in model.layers]
        assert names == [
            "GaussianNoise",
            "Conv2D",
            "ReLU",
            "Dropout",
            "Conv2D",
            "ReLU",
            "Dropout",
            "Flatten",
            "Dense",
            "ReLU",
            "Dense",
            "L2Normalize",
        ]
        conv1, conv2 = model.layers[1], model.layers[4]
        assert conv1.out_channels == 64 and conv2.out_channels == 128
        assert conv1.kernel_size == (2, 2) and conv1.stride == (1, 1)

    def test_inference_is_deterministic(self):
        model = build_encoder(6, EncoderConfig(dropout_rate=0.5), rng=rng())
        x = rng().random((4, 1, 6, 6)).astype(np.float32)
        np.testing.assert_array_equal(model.predict(x), model.predict(x))

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            build_encoder(2)

    def test_embedding_dim_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(embedding_dim=1)

    def test_embed_helper_batches(self):
        model = build_encoder(6, EncoderConfig(embedding_dim=3), rng=rng())
        x = rng().random((700, 1, 6, 6)).astype(np.float32)
        out = embed(model, x, batch_size=256)
        assert out.shape == (700, 3)


class TestSiameseTraining:
    def _separable_images(self, n_rps=4, fpr=6, side=5, seed=31):
        """RP-dependent blob patterns that a working encoder separates."""
        r = np.random.default_rng(seed)
        prototypes = r.random((n_rps, side * side)).astype(np.float32)
        images, labels = [], []
        for rp in range(n_rps):
            for _ in range(fpr):
                sample = prototypes[rp] + r.normal(0, 0.05, side * side)
                images.append(np.clip(sample, 0, 1))
                labels.append(rp)
        images = np.array(images, np.float32).reshape(-1, 1, side, side)
        return images, np.array(labels)

    def test_loss_decreases(self):
        images, labels = self._separable_images()
        model = build_encoder(5, EncoderConfig(embedding_dim=4, dropout_rate=0.0,
                                               input_noise_sigma=0.01), rng=rng())
        trainer = SiameseTrainer(
            model,
            TripletLoss(0.2),
            Adam(2e-3),
            UniformTripletSelector(labels),
        )
        history = trainer.fit(
            images, epochs=8, steps_per_epoch=10, batch_size=24, rng=rng()
        )
        assert history.loss[-1] < history.loss[0]
        assert len(history.loss) == 8
        assert all(0.0 <= f <= 1.0 for f in history.active_fraction)

    def test_training_separates_classes(self):
        images, labels = self._separable_images()
        model = build_encoder(5, EncoderConfig(embedding_dim=4, dropout_rate=0.0,
                                               input_noise_sigma=0.01), rng=rng())
        trainer = SiameseTrainer(
            model, TripletLoss(0.2), Adam(2e-3), UniformTripletSelector(labels)
        )
        trainer.fit(images, epochs=15, steps_per_epoch=10, batch_size=24, rng=rng())
        emb = model.predict(images)
        # intra-class distances < inter-class distances on average
        intra, inter = [], []
        for i in range(len(labels)):
            for j in range(i + 1, len(labels)):
                d = float(((emb[i] - emb[j]) ** 2).sum())
                (intra if labels[i] == labels[j] else inter).append(d)
        assert np.mean(intra) < np.mean(inter)

    def test_augmentation_branch_independent(self):
        images, labels = self._separable_images()
        model = build_encoder(5, EncoderConfig(embedding_dim=3), rng=rng())
        trainer = SiameseTrainer(
            model,
            TripletLoss(0.2),
            Adam(1e-3),
            UniformTripletSelector(labels),
            augmentation=TurnOffAugmentation(0.9),
        )
        loss, active = trainer.train_step(images, 16, rng())
        assert np.isfinite(loss)
        assert 0.0 <= active <= 1.0

    def test_invalid_fit_args(self):
        images, labels = self._separable_images()
        model = build_encoder(5, EncoderConfig(embedding_dim=3), rng=rng())
        trainer = SiameseTrainer(
            model, TripletLoss(0.2), Adam(1e-3), UniformTripletSelector(labels)
        )
        with pytest.raises(ValueError):
            trainer.fit(images, epochs=0, steps_per_epoch=5)


class TestKNNHead:
    def test_exact_match_k1(self):
        emb = np.eye(4)
        locs = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=float)
        head = KNNHead(k=1).fit(emb, np.arange(4), locs)
        pred = head.predict_location(emb[2][None, :])
        np.testing.assert_array_equal(pred, [[0, 1]])

    def test_majority_vote(self):
        # Two references of RP 7 near the query, one of RP 2 farther.
        emb = np.array([[0.0], [0.1], [5.0]])
        rps = np.array([7, 7, 2])
        locs = np.array([[1.0, 1.0], [1.0, 1.0], [9.0, 9.0]])
        head = KNNHead(k=3).fit(emb, rps, locs)
        assert head.predict_rp(np.array([[0.05]]))[0] == 7

    def test_tie_breaks_to_nearest(self):
        emb = np.array([[0.0], [1.0]])
        rps = np.array([1, 2])
        locs = np.array([[0.0, 0.0], [5.0, 5.0]])
        head = KNNHead(k=2).fit(emb, rps, locs)
        assert head.predict_rp(np.array([[0.2]]))[0] == 1

    def test_regress_mode_averages(self):
        emb = np.array([[0.0], [1.0]])
        rps = np.array([0, 1])
        locs = np.array([[0.0, 0.0], [2.0, 2.0]])
        head = KNNHead(k=2, mode="regress").fit(emb, rps, locs)
        np.testing.assert_allclose(
            head.predict_location(np.array([[0.5]])), [[1.0, 1.0]]
        )

    def test_k_larger_than_references(self):
        emb = np.array([[0.0], [1.0]])
        head = KNNHead(k=10).fit(emb, np.array([0, 1]), np.zeros((2, 2)))
        assert head.predict_rp(np.array([[0.0]])).shape == (1,)

    def test_kneighbors_sorted(self):
        emb = np.array([[0.0], [1.0], [2.0], [3.0]])
        head = KNNHead(k=3).fit(emb, np.arange(4), np.zeros((4, 2)))
        dist, idx = head.kneighbors(np.array([[1.8]]))
        assert (np.diff(dist[0]) >= 0).all()
        assert idx[0, 0] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNHead(k=0)
        with pytest.raises(ValueError):
            KNNHead(mode="wat")
        head = KNNHead()
        with pytest.raises(RuntimeError):
            head.predict_rp(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            head.fit(np.zeros((3, 2)), np.zeros(2), np.zeros((3, 2)))
