"""Tests for the WiDeep and pseudo-label ensemble baselines."""

from __future__ import annotations

import numpy as np
import pytest
from tests.conftest import make_synthetic_dataset

from repro.baselines import (
    EXTENDED_FRAMEWORKS,
    EnsembleConfig,
    PseudoLabelEnsembleLocalizer,
    WiDeepConfig,
    WiDeepLocalizer,
    make_localizer,
)


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(n_rps=6, fpr=4, n_aps=16, seed=3)


def quick_widep() -> WiDeepLocalizer:
    # The synthetic fixture has only 24 rows; small batches and a hot
    # learning rate keep the gradient-step count meaningful.
    return WiDeepLocalizer(
        WiDeepConfig(
            hidden_units=32,
            ae_epochs=20,
            classifier_epochs=150,
            n_corruptions=4,
            batch_size=8,
            learning_rate=5e-3,
        )
    )


def quick_ensemble(**overrides) -> PseudoLabelEnsembleLocalizer:
    defaults = dict(n_members=3, hidden_units=32, epochs=40, refit_epochs=5)
    defaults.update(overrides)
    return PseudoLabelEnsembleLocalizer(EnsembleConfig(**defaults))


class TestWiDeepConfig:
    def test_invalid_corruption_rejected(self):
        with pytest.raises(ValueError):
            WiDeepConfig(corruption_rate=1.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            WiDeepConfig(hidden_units=0)
        with pytest.raises(ValueError):
            WiDeepConfig(ae_epochs=0)


class TestWiDeepLocalizer:
    def test_learns_separable_synthetic_rps(self, dataset, tiny_floorplan):
        loc = quick_widep().fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(0)
        )
        predicted = loc.predict(dataset.rssi)
        errors = np.linalg.norm(predicted - dataset.locations, axis=1)
        # Synthetic RPs are cleanly separable; training error must be low.
        assert errors.mean() < 1.0

    def test_predict_before_fit_rejected(self, dataset):
        with pytest.raises(RuntimeError):
            quick_widep().predict(dataset.rssi)

    def test_wrong_ap_count_rejected(self, dataset, tiny_floorplan):
        loc = quick_widep().fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            loc.predict(np.full((1, dataset.n_aps + 3), -60.0))

    def test_single_scan_vector_accepted(self, dataset, tiny_floorplan):
        loc = quick_widep().fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(0)
        )
        out = loc.predict(dataset.rssi[0])
        assert out.shape == (1, 2)

    def test_no_retraining_flag(self):
        assert WiDeepLocalizer.requires_retraining is False


class TestEnsembleConfig:
    def test_invalid_agreement_rejected(self):
        with pytest.raises(ValueError):
            EnsembleConfig(agreement=0.0)
        with pytest.raises(ValueError):
            EnsembleConfig(agreement=1.5)

    def test_invalid_members_rejected(self):
        with pytest.raises(ValueError):
            EnsembleConfig(n_members=0)


class TestPseudoLabelEnsemble:
    def test_learns_and_votes(self, dataset, tiny_floorplan):
        loc = quick_ensemble().fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(1)
        )
        assert len(loc.members) == 3
        predicted = loc.predict(dataset.rssi)
        errors = np.linalg.norm(predicted - dataset.locations, axis=1)
        assert errors.mean() < 1.0

    def test_begin_epoch_adopts_confident_pseudolabels(
        self, dataset, tiny_floorplan
    ):
        loc = quick_ensemble(agreement=0.5).fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(2)
        )
        loc.begin_epoch(1, dataset.rssi)
        assert len(loc.pseudo_counts) == 1
        # Training fingerprints are confidently classified, so most
        # should be adopted at a majority threshold of 0.5.
        assert loc.pseudo_counts[0] > 0

    def test_begin_epoch_empty_input_noop(self, dataset, tiny_floorplan):
        loc = quick_ensemble().fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(3)
        )
        before = [m.parameters() for m in loc.members]
        loc.begin_epoch(1, np.zeros((0, dataset.n_aps)))
        assert loc.pseudo_counts == [0]
        for member, params in zip(loc.members, before):
            for k, v in member.parameters().items():
                assert np.array_equal(v, params[k])

    def test_pseudo_cap_respected(self, dataset, tiny_floorplan):
        loc = quick_ensemble(agreement=0.34, max_pseudo_per_epoch=5).fit(
            dataset, tiny_floorplan, rng=np.random.default_rng(4)
        )
        loc.begin_epoch(1, dataset.rssi)
        assert loc.pseudo_counts[0] <= 5

    def test_retraining_flag(self):
        assert PseudoLabelEnsembleLocalizer.requires_retraining is True


class TestRegistry:
    def test_extended_frameworks_constructible(self):
        for name in EXTENDED_FRAMEWORKS:
            loc = make_localizer(name, fast=True)
            assert loc.name == name

    def test_unknown_name_lists_extended(self):
        with pytest.raises(KeyError, match="PL-Ensemble"):
            make_localizer("nonexistent")
