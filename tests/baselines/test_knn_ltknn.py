"""Tests for the KNN and LT-KNN baselines."""

import numpy as np
import pytest

from repro.baselines import KNNLocalizer, LTKNNLocalizer, RidgeImputer
from repro.core import simulate_ap_removal
from repro.geometry import build_grid_floorplan

from ..conftest import make_synthetic_dataset


@pytest.fixture()
def floorplan():
    return build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)


@pytest.fixture()
def train():
    return make_synthetic_dataset(n_rps=6, fpr=4, n_aps=16, seed=8)


class TestKNN:
    def test_recalls_training_points(self, train, floorplan):
        knn = KNNLocalizer(k=1).fit(train, floorplan)
        pred = knn.predict(train.rssi)
        np.testing.assert_allclose(pred, train.locations, atol=1e-6)

    def test_weighted_interpolates(self, train, floorplan):
        knn = KNNLocalizer(k=3, weighted=True).fit(train, floorplan)
        noisy = np.clip(train.rssi[:4] + 1.0, -100, 0)
        pred = knn.predict(noisy)
        err = np.linalg.norm(pred - train.locations[:4], axis=1)
        assert err.max() < 2.0

    def test_unweighted_variant(self, train, floorplan):
        knn = KNNLocalizer(k=3, weighted=False).fit(train, floorplan)
        assert knn.predict(train.rssi[:2]).shape == (2, 2)

    def test_single_row_query(self, train, floorplan):
        knn = KNNLocalizer().fit(train, floorplan)
        assert knn.predict(train.rssi[0]).shape == (1, 2)

    def test_no_retraining_flag(self):
        assert KNNLocalizer().requires_retraining is False

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNLocalizer().predict(np.zeros((1, 4)))

    def test_empty_train_rejected(self, train, floorplan):
        empty = train.select(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            KNNLocalizer().fit(empty, floorplan)


class TestRidgeImputer:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-90, -30, size=(200, 5))
        w = np.array([0.3, -0.2, 0.5, 0.1, -0.4])
        y = np.clip(x @ w * 0.1 - 50 + rng.normal(0, 0.1, 200), -100, 0)
        imputer = RidgeImputer(alpha=1e-3).fit(x, y)
        pred = imputer.predict(x)
        assert np.abs(pred - y).mean() < 0.5

    def test_prediction_clipped_to_rssi_range(self):
        x = np.full((10, 3), -50.0)
        y = np.full(10, -60.0)
        imputer = RidgeImputer().fit(x, y)
        out = imputer.predict(np.full((2, 3), 500.0))
        assert (out <= 0.0).all() and (out >= -100.0).all()

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            RidgeImputer().predict(np.zeros((1, 3)))

    def test_sample_mismatch(self):
        with pytest.raises(ValueError):
            RidgeImputer().fit(np.zeros((5, 2)), np.zeros(4))


class TestLTKNN:
    def test_matches_knn_when_no_aps_missing(self, train, floorplan):
        lt = LTKNNLocalizer(k=3).fit(train, floorplan)
        knn = KNNLocalizer(k=3).fit(train, floorplan)
        lt.begin_epoch(0, train.rssi)
        np.testing.assert_allclose(
            lt.predict(train.rssi[:5]), knn.predict(train.rssi[:5])
        )
        assert lt.refit_count == 0  # nothing vanished, no maintenance

    def test_detects_missing_aps_and_refits(self, train, floorplan):
        lt = LTKNNLocalizer(k=3).fit(train, floorplan)
        removed = simulate_ap_removal(train.rssi, 0.25, np.random.default_rng(1))
        lt.begin_epoch(1, removed)
        assert lt.refit_count == 1
        assert lt._current_missing.size > 0

    def test_imputation_beats_naive_knn_under_removal(self, floorplan):
        """The point of LT-KNN: with dead AP columns, imputing them
        recovers accuracy that naive KNN loses."""
        train = make_synthetic_dataset(n_rps=9, fpr=6, n_aps=24, seed=9, spacing=3.0)
        rng = np.random.default_rng(2)
        test_rssi = np.clip(train.rssi + rng.normal(0, 1.0, train.rssi.shape), -100, 0)
        broken = simulate_ap_removal(test_rssi, 0.4, rng)
        knn = KNNLocalizer(k=3).fit(train, floorplan)
        lt = LTKNNLocalizer(k=3).fit(train, floorplan)
        lt.begin_epoch(1, broken)
        knn_err = np.linalg.norm(knn.predict(broken) - train.locations, axis=1).mean()
        lt_err = np.linalg.norm(lt.predict(broken) - train.locations, axis=1).mean()
        assert lt_err < knn_err

    def test_no_refit_when_population_stable(self, train, floorplan):
        lt = LTKNNLocalizer().fit(train, floorplan)
        removed = simulate_ap_removal(train.rssi, 0.25, np.random.default_rng(3))
        lt.begin_epoch(1, removed)
        count = lt.refit_count
        lt.begin_epoch(2, removed)  # same missing set
        assert lt.refit_count == count

    def test_impute_fills_missing_columns(self, train, floorplan):
        lt = LTKNNLocalizer().fit(train, floorplan)
        rng = np.random.default_rng(4)
        broken = simulate_ap_removal(train.rssi, 0.3, rng)
        lt.begin_epoch(1, broken)
        filled = lt.impute(broken[:5])
        missing = lt._current_missing
        assert missing.size > 0
        # imputed columns are no longer stuck at -100 everywhere
        assert (filled[:, missing] > -100.0).any()

    def test_all_missing_epoch_matches_sequential_reference(
        self, train, floorplan
    ):
        # Degenerate epoch: every train-visible AP reads as dead, so
        # _alive_columns() falls back to the full visible set and the
        # imputers read columns they also write. The vectorized impute
        # must keep the sequential chaining semantics here.
        lt = LTKNNLocalizer(k=3).fit(train, floorplan)
        all_dead = np.full_like(train.rssi, -100.0)
        lt.begin_epoch(1, all_dead)
        assert np.intersect1d(
            lt._alive_columns(), lt._current_missing
        ).size > 0
        scans = train.rssi[:5]
        filled = lt.impute(scans)
        reference = np.clip(np.array(scans, copy=True), -100.0, 0.0)
        alive = lt._alive_columns()
        for ap in lt._current_missing:
            reference[:, ap] = lt._imputers[int(ap)].predict(
                reference[:, alive]
            )
        np.testing.assert_array_equal(filled, reference)

    def test_requires_retraining_flag(self):
        assert LTKNNLocalizer().requires_retraining is True

    def test_refit_resets_on_fit(self, train, floorplan):
        lt = LTKNNLocalizer().fit(train, floorplan)
        removed = simulate_ap_removal(train.rssi, 0.25, np.random.default_rng(5))
        lt.begin_epoch(1, removed)
        lt.fit(train, floorplan)
        assert lt.refit_count == 0
        assert lt._current_missing.size == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            LTKNNLocalizer(missing_threshold=2.0)
