"""Tests for the SELE contrastive Siamese baseline."""

import numpy as np
import pytest

from repro.baselines import SELEConfig, SELELocalizer, make_localizer
from repro.geometry import build_grid_floorplan

from ..conftest import make_synthetic_dataset

FAST = SELEConfig(epochs=6, steps_per_epoch=10, batch_size=24, seed=0)


@pytest.fixture(scope="module")
def fitted():
    train = make_synthetic_dataset(n_rps=6, fpr=4, n_aps=12, seed=12)
    fp = build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)
    sele = SELELocalizer(FAST)
    sele.fit(train, fp, rng=np.random.default_rng(0))
    return sele, train


class TestSELE:
    def test_predict_shape(self, fitted):
        sele, train = fitted
        assert sele.predict(train.rssi[:4]).shape == (4, 2)

    def test_contrastive_loss_decreases(self, fitted):
        sele, _ = fitted
        assert sele.loss_history[-1] < sele.loss_history[0]

    def test_train_rssi_relocalized_close(self, fitted):
        sele, train = fitted
        pred = sele.predict(train.rssi)
        err = np.linalg.norm(pred - train.locations, axis=1)
        assert np.median(err) < 2.5

    def test_requires_retraining_flag(self):
        # The cited SELE recalibrates monthly (paper Sec. II).
        assert SELELocalizer().requires_retraining is True

    def test_registry_entry(self):
        sele = make_localizer("SELE", fast=True)
        assert isinstance(sele, SELELocalizer)
        assert sele.config.epochs == 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SELEConfig(similar_fraction=0.0)
        with pytest.raises(ValueError):
            SELEConfig(margin=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SELELocalizer().predict(np.zeros((1, 12)) - 100)
