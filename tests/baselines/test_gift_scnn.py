"""Tests for the GIFT and SCNN baselines and the registry."""

import numpy as np
import pytest

from repro.baselines import (
    PAPER_FRAMEWORKS,
    GIFTLocalizer,
    SCNNConfig,
    SCNNLocalizer,
    make_localizer,
)
from repro.core import StoneLocalizer
from repro.geometry import build_grid_floorplan

from ..conftest import make_synthetic_dataset


@pytest.fixture()
def floorplan():
    return build_grid_floorplan("t", width=8, height=6, rp_spacing=2.0, margin=1.0)


@pytest.fixture()
def train():
    return make_synthetic_dataset(n_rps=6, fpr=4, n_aps=16, seed=10)


class TestGIFT:
    def test_gradient_map_includes_self_pairs(self, train, floorplan):
        gift = GIFTLocalizer(max_step_m=2.5).fit(train, floorplan)
        self_pairs = (gift._grad_from == gift._grad_to).sum()
        assert self_pairs == train.rp_set.size

    def test_stationary_walk_stays_put(self, train, floorplan):
        gift = GIFTLocalizer().fit(train, floorplan)
        # the same scan repeated: gradients are zero, position constant
        walk = np.tile(train.rssi[0], (5, 1))
        pred = gift.predict(walk)
        assert (pred == pred[0]).all()

    def test_clean_walk_tracks_path(self, floorplan):
        train = make_synthetic_dataset(n_rps=9, fpr=3, n_aps=24, seed=11, spacing=3.0)
        gift = GIFTLocalizer(max_step_m=4.0).fit(train, floorplan)
        # walk over RPs 0..8 using (noiseless) mean train fingerprints
        walk = np.array(
            [
                train.rssi[train.rp_indices == rp].mean(axis=0)
                for rp in range(9)
            ]
        )
        pred = gift.predict(walk)
        true = np.array(
            [train.locations[train.rp_indices == rp][0] for rp in range(9)]
        )
        err = np.linalg.norm(pred - true, axis=1)
        assert err.mean() < 2.0

    def test_predict_shape_single_scan(self, train, floorplan):
        gift = GIFTLocalizer().fit(train, floorplan)
        assert gift.predict(train.rssi[0]).shape == (1, 2)

    def test_no_retraining_flag(self):
        assert GIFTLocalizer().requires_retraining is False

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GIFTLocalizer(max_step_m=0)
        with pytest.raises(ValueError):
            GIFTLocalizer(reanchor_factor=0.5)


class TestSCNN:
    def test_learns_training_set(self, train, floorplan):
        scnn = SCNNLocalizer(SCNNConfig(epochs=30, batch_size=8))
        scnn.fit(train, floorplan, rng=np.random.default_rng(0))
        pred_idx = scnn.predict_class_index(train.rssi)
        labels = {int(rp): i for i, rp in enumerate(train.rp_set)}
        true_idx = np.array([labels[int(rp)] for rp in train.rp_indices])
        accuracy = (pred_idx == true_idx).mean()
        assert accuracy > 0.8

    def test_predict_returns_rp_coordinates(self, train, floorplan):
        scnn = SCNNLocalizer(SCNNConfig(epochs=5))
        scnn.fit(train, floorplan, rng=np.random.default_rng(0))
        pred = scnn.predict(train.rssi[:6])
        rp_locs = {tuple(train.locations[train.rp_indices == rp][0]) for rp in train.rp_set}
        for p in pred:
            assert tuple(p) in rp_locs

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SCNNConfig(epochs=0)
        with pytest.raises(ValueError):
            SCNNConfig(dropout_rate=1.0)

    def test_no_retraining_flag(self):
        assert SCNNLocalizer().requires_retraining is False


class TestRegistry:
    def test_all_paper_frameworks_buildable(self):
        for name in PAPER_FRAMEWORKS:
            localizer = make_localizer(name, suite_name="office", fast=True)
            assert localizer.name == name

    def test_stone_suite_tuning(self):
        from repro.core import PER_SUITE_EMBEDDING_DIM

        stone = make_localizer("STONE", suite_name="uji")
        assert isinstance(stone, StoneLocalizer)
        assert stone.config.encoder.embedding_dim == PER_SUITE_EMBEDDING_DIM["uji"]

    def test_case_insensitive(self):
        assert make_localizer("ltknn").name == "LT-KNN"
        assert make_localizer("stone", fast=True).name == "STONE"

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            make_localizer("DeepMagic")
