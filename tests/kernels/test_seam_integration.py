"""The backend seam end to end: specs, stores, localizers, encoder.

What ships in artifacts and fingerprints is the load-bearing half of
the seam: bit-identical backends must keep addressing the *same*
cached/persisted models as the pre-seam code, result-changing backends
must never collide with them, and everything a fit produces must
record which backend produced it.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import FleetSpec, LocalizerSpec
from repro.baselines import KNNLocalizer, build_localizer, supports_kernel_backend
from repro.baselines.ltknn import LTKNNLocalizer
from repro.core import EncoderConfig, build_encoder
from repro.kernels import BACKEND_ENV_VAR
from repro.serve import ModelStore


class TestFingerprintRule:
    """Bit-identical backends share identities; bounded ones never do."""

    def test_blas64_shares_default_fingerprint(self):
        base = LocalizerSpec(framework="KNN", fast=True)
        pinned = LocalizerSpec(framework="KNN", fast=True, backend="blas64")
        assert pinned.backend == "blas64"
        assert pinned.fingerprint() == base.fingerprint()

    @pytest.mark.parametrize("backend", ["blas", "quantized"])
    def test_result_changing_backend_changes_fingerprint(self, backend):
        base = LocalizerSpec(framework="KNN", fast=True)
        other = LocalizerSpec(framework="KNN", fast=True, backend=backend)
        assert other.fingerprint() != base.fingerprint()

    def test_legacy_dict_roundtrip_defaults_to_reference(self):
        # Pre-seam to_dict payloads have no "backend" key; they must
        # deserialize (reference) and fingerprint exactly as before.
        payload = LocalizerSpec(framework="KNN", fast=True).to_dict()
        del payload["backend"]
        spec = LocalizerSpec.from_dict(payload)
        assert spec.backend == "reference"
        assert spec.fingerprint() == LocalizerSpec(
            framework="KNN", fast=True
        ).fingerprint()

    def test_store_key_matches_spec_model_key(self, tiny_suite):
        spec = LocalizerSpec(
            framework="KNN",
            suite_name=tiny_suite.name,
            fast=True,
            backend="quantized",
        )
        store = ModelStore()
        assert (
            store.key_for(
                "KNN", tiny_suite, fast=True, backend="quantized"
            ).digest
            == spec.model_key(tiny_suite).digest
        )

    def test_store_digest_unchanged_for_exact_backends(self, tiny_suite):
        store = ModelStore()
        legacy = store.key_for("KNN", tiny_suite, fast=True)
        pinned = store.key_for("KNN", tiny_suite, fast=True, backend="blas64")
        quant = store.key_for("KNN", tiny_suite, fast=True, backend="quantized")
        assert pinned.digest == legacy.digest
        assert quant.digest != legacy.digest


class TestFrameworkGating:
    def test_seam_capable_frameworks(self):
        for name in ("STONE", "KNN", "LT-KNN"):
            assert supports_kernel_backend(name)
        assert not supports_kernel_backend("GIFT")

    def test_explicit_changing_backend_on_gift_raises(self):
        with pytest.raises(ValueError, match="kernel-backend seam"):
            build_localizer("GIFT", fast=True, backend="quantized")

    def test_exact_backend_on_gift_is_dropped(self):
        localizer = build_localizer("GIFT", fast=True, backend="blas64")
        assert localizer.kernel_backend == "reference"

    def test_spec_env_backend_normalizes_on_non_seam(self, monkeypatch):
        # An env-derived result-changing backend on a framework without
        # the seam silently falls back (the env var is fleet-wide);
        # only an *explicit* spec field is a hard error.
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantized")
        spec = LocalizerSpec(framework="GIFT", fast=True)
        assert spec.backend == "reference"
        with pytest.raises(ValueError, match="kernel-backend seam"):
            LocalizerSpec(framework="GIFT", fast=True, backend="quantized")

    def test_fleet_spec_same_gating(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "int8")
        spec = FleetSpec.from_string("HQ:2,LAB:3", framework="KNN", fast=True)
        assert spec.backend == "quantized"


class TestLocalizerBackends:
    def test_localizers_report_resolved_backend(self, tiny_suite):
        knn = KNNLocalizer(backend="quantized")
        assert knn.kernel_backend == "quantized"
        lt = LTKNNLocalizer(backend="blas")
        assert lt.kernel_backend == "blas"
        assert KNNLocalizer().kernel_backend == "reference"

    def test_knn_blas64_predictions_bit_identical(self, tiny_suite):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        a = KNNLocalizer().fit(
            tiny_suite.train, tiny_suite.floorplan, rng=rng_a
        )
        b = KNNLocalizer(backend="blas64").fit(
            tiny_suite.train, tiny_suite.floorplan, rng=rng_b
        )
        queries = tiny_suite.test_epochs[0].rssi
        np.testing.assert_array_equal(a.predict(queries), b.predict(queries))

    @pytest.mark.parametrize("backend", ["blas", "quantized"])
    def test_accuracy_gate_on_eval_suite(self, tiny_suite, backend):
        # The bounded-error backends must not move the paper metric:
        # mean localization error within 25 cm of reference on the
        # tiny office suite (reference error is meters-scale).
        queries = tiny_suite.test_epochs[0]
        errors = {}
        for name in ("reference", backend):
            loc = KNNLocalizer(backend=name).fit(
                tiny_suite.train,
                tiny_suite.floorplan,
                rng=np.random.default_rng(0),
            )
            predicted = loc.predict(queries.rssi)
            errors[name] = float(
                np.linalg.norm(predicted - queries.locations, axis=1).mean()
            )
        assert abs(errors[backend] - errors["reference"]) <= 0.25


class TestStorePayloads:
    def test_payload_embeds_spec_and_backend(self, tiny_suite, tmp_path):
        store = ModelStore(tmp_path)
        entry = store.get_or_fit(
            "KNN", tiny_suite, fast=True, backend="quantized"
        )
        assert entry.key.backend == "quantized"
        assert entry.spec is not None
        assert entry.spec["backend"] == "quantized"
        assert entry.spec["framework"] == "KNN"
        with (tmp_path / f"{entry.key.digest}.pkl").open("rb") as fh:
            payload = pickle.load(fh)
        assert payload["backend"] == "quantized"
        assert payload["spec"] == entry.spec
        # And the persisted spec rebuilds the exact same identity.
        rebuilt = LocalizerSpec.from_dict(payload["spec"])
        assert rebuilt.model_key(tiny_suite).digest == entry.key.digest

    def test_describe_reports_backend(self, tiny_suite):
        store = ModelStore()
        store.get_or_fit("KNN", tiny_suite, fast=True, backend="blas")
        models = store.describe()["models"]
        assert models[0]["backend"] == "blas"

    def test_exact_backends_share_persisted_artifact(self, tiny_suite, tmp_path):
        # A reference fit persisted pre-seam (no backend record in the
        # key digest) must warm-load for a blas64 request and vice
        # versa — they are interchangeable by contract.
        store_a = ModelStore(tmp_path)
        store_a.get_or_fit("KNN", tiny_suite, fast=True)
        store_b = ModelStore(tmp_path)
        entry = store_b.get_or_fit(
            "KNN", tiny_suite, fast=True, backend="blas64"
        )
        assert entry.source == "disk"
        assert store_b.fits == 0

    def test_versionless_payload_is_a_warned_miss(
        self, tiny_suite, tmp_path
    ):
        # The pre-seam grace window is closed: an artifact without
        # backend/spec records is refit (with a migration warning) and
        # rewritten in the self-describing format.
        store = ModelStore(tmp_path)
        entry = store.get_or_fit("KNN", tiny_suite, fast=True)
        path = tmp_path / f"{entry.key.digest}.pkl"
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        del payload["backend"]
        del payload["spec"]
        with path.open("wb") as fh:
            pickle.dump(payload, fh)
        fresh = ModelStore(tmp_path)
        with pytest.warns(UserWarning, match="backend/spec"):
            loaded = fresh.get_or_fit("KNN", tiny_suite, fast=True)
        assert loaded.source == "fitted"
        assert fresh.fits == 1
        with path.open("rb") as fh:
            rewritten = pickle.load(fh)
        assert rewritten["backend"] == "reference"
        assert rewritten["spec"] is not None

    def test_mislabeled_backend_record_is_a_miss(self, tiny_suite, tmp_path):
        # A payload claiming a result-changing backend under an exact
        # key digest is a foreign artifact: refit, never serve.
        store = ModelStore(tmp_path)
        entry = store.get_or_fit("KNN", tiny_suite, fast=True)
        path = tmp_path / f"{entry.key.digest}.pkl"
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        payload["backend"] = "quantized"
        with path.open("wb") as fh:
            pickle.dump(payload, fh)
        fresh = ModelStore(tmp_path)
        refit = fresh.get_or_fit("KNN", tiny_suite, fast=True)
        assert refit.source == "fitted"

    def test_quantized_artifact_roundtrips(self, tiny_suite, tmp_path):
        store_a = ModelStore(tmp_path)
        fitted = store_a.get_or_fit(
            "KNN", tiny_suite, fast=True, backend="quantized"
        )
        store_b = ModelStore(tmp_path)
        loaded = store_b.get_or_fit(
            "KNN", tiny_suite, fast=True, backend="quantized"
        )
        assert loaded.source == "disk"
        assert loaded.key.backend == "quantized"
        queries = tiny_suite.test_epochs[0].rssi
        np.testing.assert_array_equal(
            fitted.localizer.predict(queries), loaded.localizer.predict(queries)
        )


class TestEncoderSeam:
    @pytest.mark.parametrize("backend", [None, "reference", "blas", "quantized"])
    def test_predict_backend_is_bit_identical(self, backend):
        # The fused dense forward is an optimization, never a precision
        # trade: every backend's encoder output equals the plain pass.
        rng = np.random.default_rng(4)
        model = build_encoder(8, EncoderConfig(embedding_dim=6), rng=rng)
        x = rng.random((70, 1, 8, 8)).astype(np.float32)
        plain = model.predict(x)
        routed = model.predict(x, backend=backend)
        assert np.array_equal(plain, routed)

    def test_chunked_predict_matches_unchunked(self):
        rng = np.random.default_rng(4)
        model = build_encoder(8, EncoderConfig(embedding_dim=6), rng=rng)
        x = rng.random((70, 1, 8, 8)).astype(np.float32)
        assert np.array_equal(
            model.predict(x, batch_size=16, backend="blas"),
            model.predict(x, backend="blas"),
        )
