"""Contract tests for the kernel-backend seam (``repro.kernels``).

Three tiers, mirroring the seam's documented contract:

* **Registry** — names, aliases, the ``$REPRO_KERNEL_BACKEND``
  resolution order, and the ``changes_results`` flags the fingerprint
  rule is built on.
* **Bit-identity** — ``blas64`` must reproduce ``reference``
  byte-for-byte on every distance surface (``sq_distances``, subset
  ``take``, ``kneighbors``, the sharded-index path and
  ``per_rp_distances``), hypothesis-pinned over random radio maps.
* **Bounded error** — ``blas`` (float32) and ``quantized`` (int8) stay
  inside their error envelopes and agree with reference on neighbour
  *structure* for well-separated data.

The negative-clamp boundary (squared distances must never go below
zero before the downstream ``sqrt``) gets its own class with a
deterministic input whose raw matmul decomposition IS negative.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knn_head import KNNHead
from repro.index import IndexConfig
from repro.index.distance import squared_distances
from repro.kernels import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    backend_changes_results,
    canonical_backend_name,
    get_backend,
    resolve_backend,
    resolve_backend_name,
)

#: Same envelopes as ``benchmarks/bench_kernels.py`` — relative to the
#: mean reference neighbour distance.
BLAS_REL_ERROR_BOUND = 1e-3
QUANTIZED_REL_ERROR_BOUND = 0.15

ALL_BACKENDS = ("reference", "blas64", "blas", "quantized")
EXACT_BACKENDS = ("reference", "blas64")
BOUNDED_BACKENDS = ("blas", "quantized")


def _radio_map(rng, n_rows, n_dims):
    """RSSI-like float64 rows, the distance kernels' native domain."""
    return rng.uniform(-90.0, -30.0, size=(n_rows, n_dims))


def _fitted_heads(rng, n_rows=60, n_dims=12, k=3, index=None):
    refs = _radio_map(rng, n_rows, n_dims)
    rp = rng.integers(0, max(2, n_rows // 4), size=n_rows)
    locs = rng.uniform(0.0, 40.0, size=(n_rows, 2))
    return {
        name: KNNHead(k=k, index=index, backend=name).fit(refs, rp, locs)
        for name in ALL_BACKENDS
    }


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    @pytest.mark.parametrize(
        ("alias", "canonical"),
        [
            ("blas-f64", "blas64"),
            ("blas-float64", "blas64"),
            ("blas32", "blas"),
            ("blas-f32", "blas"),
            ("blas-float32", "blas"),
            ("int8", "quantized"),
            ("quantized-int8", "quantized"),
            ("REFERENCE", "reference"),
            ("  Blas64 ", "blas64"),
        ],
    )
    def test_aliases_and_case(self, alias, canonical):
        assert canonical_backend_name(alias) == canonical

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown kernel backend"):
            canonical_backend_name("cuda")

    def test_changes_results_flags(self):
        # THE fingerprint-participation rule: exact backends share the
        # legacy cache keys, bounded-error backends never may.
        for name in EXACT_BACKENDS:
            assert not backend_changes_results(name)
        for name in BOUNDED_BACKENDS:
            assert backend_changes_results(name)

    def test_env_override_fills_unset(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "int8")
        assert resolve_backend_name(None) == "quantized"
        assert resolve_backend(None).name == "quantized"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantized")
        assert resolve_backend_name("blas64") == "blas64"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name(None) == "reference"

    def test_resolve_accepts_instance(self):
        backend = get_backend("blas")
        assert resolve_backend(backend) is backend

    def test_head_resolves_through_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blas-f32")
        assert KNNHead(k=1).backend_name == "blas"


class TestNegativeClamp:
    """Squared distances are clamped at zero before any sqrt.

    ``default_rng(0)`` radio-map rows compared against *themselves*
    make the raw decomposition ``|q|^2 + |r|^2 - 2 q.r`` go slightly
    negative (about ``-3e-11``) on the diagonal — exactly the rounding
    noise the clamp exists for.
    """

    def _identical_rows(self):
        rng = np.random.default_rng(0)
        refs = _radio_map(rng, 40, 16)
        return refs, refs.copy()

    def test_raw_decomposition_is_negative(self):
        # The precondition: without a clamp this input WOULD produce a
        # negative squared distance (and a NaN after sqrt).
        queries, refs = self._identical_rows()
        refs_sq = (refs * refs).sum(axis=1)
        raw = (
            (queries * queries).sum(axis=1)[:, None]
            + refs_sq[None, :]
            - 2.0 * (queries @ refs.T)
        )
        assert raw.min() < 0.0

    def test_shared_kernel_clamps_at_zero(self):
        queries, refs = self._identical_rows()
        d2 = squared_distances(queries, refs)
        # Raw-negative entries land on exactly 0.0; entries that round
        # slightly positive stay (the clamp bounds, it doesn't snap).
        assert d2.min() == 0.0
        assert np.diagonal(d2).max() <= 1e-9
        assert not np.isnan(np.sqrt(d2)).any()

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_every_backend_is_nonnegative(self, name):
        queries, refs = self._identical_rows()
        backend = get_backend(name)
        d2 = backend.sq_distances(queries, backend.pack(refs))
        assert d2.min() >= 0.0
        assert not np.isnan(np.sqrt(d2)).any()

    @pytest.mark.parametrize("name", EXACT_BACKENDS)
    def test_exact_backends_identical_rows_near_zero(self, name):
        queries, refs = self._identical_rows()
        backend = get_backend(name)
        d2 = backend.sq_distances(queries, backend.pack(refs))
        assert d2.min() >= 0.0
        assert np.diagonal(d2).max() <= 1e-9

    def test_scalar_boundary_pair(self):
        # A near-identical pair whose decomposition is ~-1.4e-14 raw.
        rng = np.random.default_rng(0)
        a = rng.uniform(1.0, 2.0, size=(1, 16))
        b = a + rng.normal(0.0, 1e-9, size=(1, 16))
        raw = (a * a).sum() + (b * b).sum() - 2.0 * (a @ b.T).item()
        assert raw < 0.0
        assert squared_distances(a, b)[0, 0] == 0.0


class TestBlas64BitIdentity:
    """``blas64`` == ``reference``, byte for byte, on every surface."""

    @settings(max_examples=30, deadline=None)
    @given(
        n_rows=st.integers(min_value=3, max_value=100),
        n_dims=st.integers(min_value=1, max_value=24),
        n_queries=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_sq_distances(self, n_rows, n_dims, n_queries, seed):
        rng = np.random.default_rng(seed)
        refs = _radio_map(rng, n_rows, n_dims)
        queries = rng.uniform(-95.0, -25.0, size=(n_queries, n_dims))
        ref, b64 = get_backend("reference"), get_backend("blas64")
        d_ref = ref.sq_distances(queries, ref.pack(refs))
        d_b64 = b64.sq_distances(queries, b64.pack(refs))
        assert np.array_equal(d_ref, d_b64)

    @settings(max_examples=20, deadline=None)
    @given(
        n_rows=st.integers(min_value=6, max_value=80),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_kneighbors_and_per_rp(self, n_rows, k, seed):
        rng = np.random.default_rng(seed)
        heads = _fitted_heads(rng, n_rows=n_rows, k=min(k, n_rows))
        queries = rng.uniform(-95.0, -25.0, size=(11, 12))
        d_ref, i_ref = heads["reference"].kneighbors(queries)
        d_b64, i_b64 = heads["blas64"].kneighbors(queries)
        assert np.array_equal(d_ref, d_b64)
        assert np.array_equal(i_ref, i_b64)
        l_ref, p_ref = heads["reference"].per_rp_distances(queries)
        l_b64, p_b64 = heads["blas64"].per_rp_distances(queries)
        assert np.array_equal(l_ref, l_b64)
        assert np.array_equal(p_ref, p_b64)

    @settings(max_examples=15, deadline=None)
    @given(
        n_rows=st.integers(min_value=12, max_value=90),
        n_shards=st.integers(min_value=2, max_value=8),
        n_probe=st.integers(min_value=1, max_value=8),
        kind=st.sampled_from(["region", "kmeans"]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_sharded_index_path(
        self, n_rows, n_shards, n_probe, kind, seed
    ):
        # The partial-probe path runs backend.take() on shard row
        # subsets — the gather must preserve bit-identity too.
        rng = np.random.default_rng(seed)
        index = IndexConfig(
            kind=kind, n_shards=n_shards, n_probe=n_probe, seed=seed
        )
        heads = _fitted_heads(rng, n_rows=n_rows, k=3, index=index)
        queries = rng.uniform(-95.0, -25.0, size=(9, 12))
        d_ref, i_ref = heads["reference"].kneighbors(queries)
        d_b64, i_b64 = heads["blas64"].kneighbors(queries)
        assert np.array_equal(d_ref, d_b64)
        assert np.array_equal(i_ref, i_b64)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_take_equals_column_subset(self, name):
        # take(rows) then distances == distances on the packed subset
        # built from scratch — the sharded path's correctness anchor.
        rng = np.random.default_rng(3)
        refs = _radio_map(rng, 50, 10)
        queries = _radio_map(rng, 7, 10)
        rows = np.sort(rng.choice(50, size=18, replace=False))
        backend = get_backend(name)
        packed = backend.pack(refs)
        d_taken = backend.sq_distances(queries, backend.take(packed, rows))
        d_fresh = backend.sq_distances(queries, backend.pack(refs[rows]))
        if name == "quantized":
            # Per-tensor scale is computed from the packed matrix, so a
            # subset re-pack may choose a different scale; the gather
            # itself must stay within quantization error.
            assert np.allclose(d_taken, d_fresh, rtol=0.05, atol=1.0)
        else:
            assert np.array_equal(d_taken, d_fresh)


class TestBoundedError:
    def _reference_distances(self, heads, queries):
        d_ref, _ = heads["reference"].kneighbors(queries)
        return d_ref

    @pytest.mark.parametrize(
        ("name", "bound"),
        [
            ("blas", BLAS_REL_ERROR_BOUND),
            ("quantized", QUANTIZED_REL_ERROR_BOUND),
        ],
    )
    def test_neighbour_distance_envelope(self, name, bound):
        rng = np.random.default_rng(7)
        heads = _fitted_heads(rng, n_rows=200, n_dims=16, k=3)
        queries = rng.uniform(-95.0, -25.0, size=(64, 16))
        d_ref = self._reference_distances(heads, queries)
        d, _ = heads[name].kneighbors(queries)
        rel = np.abs(d - d_ref).max() / d_ref.mean()
        assert rel <= bound

    @pytest.mark.parametrize("name", BOUNDED_BACKENDS)
    def test_well_separated_neighbours_agree(self, name):
        # Cluster centers far apart: quantization/rounding noise must
        # not change which cluster a query snaps to.
        rng = np.random.default_rng(11)
        centers = rng.uniform(-90.0, -30.0, size=(8, 12))
        refs = np.repeat(centers, 5, axis=0) + rng.normal(
            0.0, 0.2, size=(40, 12)
        )
        rp = np.repeat(np.arange(8), 5)
        locs = rng.uniform(0.0, 40.0, size=(40, 2))
        queries = centers + rng.normal(0.0, 0.2, size=centers.shape)
        ref_head = KNNHead(k=1, backend="reference").fit(refs, rp, locs)
        head = KNNHead(k=1, backend=name).fit(refs, rp, locs)
        assert np.array_equal(
            ref_head.predict_rp(queries), head.predict_rp(queries)
        )

    def test_quantized_packs_smaller(self):
        rng = np.random.default_rng(5)
        refs = _radio_map(rng, 400, 24)
        nbytes = {
            name: get_backend(name).pack(refs).nbytes for name in ALL_BACKENDS
        }
        assert nbytes["quantized"] * 5 < nbytes["reference"]
        assert nbytes["blas"] < nbytes["reference"]

    def test_packed_nbytes_surfaced_by_head(self):
        rng = np.random.default_rng(5)
        heads = _fitted_heads(rng, n_rows=80)
        assert heads["quantized"].packed_nbytes < heads["reference"].packed_nbytes


class TestDenseForwardContract:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_fused_relu_matches_layer_arithmetic(self, name):
        from repro.nn import Dense, ReLU

        rng = np.random.default_rng(2)
        layer = Dense(20, 12, rng=rng)
        relu = ReLU()
        x = rng.normal(size=(16, 20)).astype(np.float32)
        y_plain, _ = layer.forward(x, training=False)
        y_plain, _ = relu.forward(y_plain, training=False)
        backend = get_backend(name)
        y_fused = backend.dense_forward(x, layer, fuse_relu=True)
        # The fused forward is an optimization for EVERY backend — the
        # float32 layer weights leave no precision to trade, so even
        # bounded-error backends stay byte-identical here.
        assert np.array_equal(y_plain, y_fused)

    def test_abstract_contract_surface(self):
        backend = get_backend("reference")
        assert isinstance(backend, KernelBackend)
        facts = backend.describe()
        assert facts == {"name": "reference", "changes_results": False}
