"""Atomic hot-swap: no mixed-version answers, unchanged slots untouched.

The property under test is the serving contract of the live loop: at
any instant during a refit + hot-swap, a batch answered for the swapped
slot is bit-identical to either the OLD model's direct answer or the
NEW model's direct answer — never a blend — and slots that were not
refit stay byte-for-byte unchanged.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import FleetDispatcher
from repro.fleet.experiment import fleet_epoch_traffic
from repro.live import LiveManager

from .conftest import direct_answer, make_fleet, matches_exactly_one_version, run


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    # Shared across examples/tests: identical observation content makes
    # every repeat refit a store hit instead of a fresh fit.
    return tmp_path_factory.mktemp("models")


def _traffic(registry):
    scans, true_b, true_f, true_xy = fleet_epoch_traffic(registry, 1)
    mask = (true_b == 0) & (true_f == 0)
    return scans, scans[mask], true_xy[mask]


async def _interleave(registry, *, n_obs, probe_at, clients, post_rounds):
    """Swap HQ/f0 under concurrent traffic; returns the evidence."""
    all_scans, obs_scans, obs_xy = _traffic(registry)
    probe = all_scans[probe_at : probe_at + 8]
    v1 = direct_answer(registry, "HQ", 0, probe)
    f1_before = direct_answer(registry, "HQ", 1, probe)
    version_before = registry.slot("HQ", 0).version

    dispatcher = FleetDispatcher(registry, batch_window_ms=0.5)
    live = LiveManager(dispatcher)
    answers = {0: [], 1: []}
    dropped = 0
    swapped = asyncio.Event()

    async def client(floor):
        nonlocal dropped
        post = 0
        while post < post_rounds:
            if swapped.is_set():
                post += 1
            try:
                coords, _ = await dispatcher.localize(
                    probe, building="HQ", floor=floor
                )
            except Exception:
                dropped += 1
                continue
            answers[floor].append(np.asarray(coords))

    tasks = [
        asyncio.create_task(client(floor))
        for floor in (0, 1)
        for _ in range(clients)
    ]
    await live.observe(obs_scans[:n_obs], obs_xy[:n_obs], building="HQ", floor=0)
    summary = await live.refit_now("HQ", 0)
    swapped.set()
    await asyncio.gather(*tasks)

    v2 = direct_answer(registry, "HQ", 0, probe)
    f1_after = direct_answer(registry, "HQ", 1, probe)
    version_after = registry.slot("HQ", 0).version
    live.close()
    dispatcher.close()
    return {
        "answers": answers,
        "dropped": dropped,
        "summary": summary,
        "v1": v1,
        "v2": v2,
        "f1_before": f1_before,
        "f1_after": f1_after,
        "versions": (version_before, version_after),
    }


class TestSwapAtomicity:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(
        n_obs=st.integers(min_value=32, max_value=64),
        probe_at=st.integers(min_value=0, max_value=40),
        clients=st.integers(min_value=1, max_value=3),
        post_rounds=st.integers(min_value=1, max_value=3),
    )
    def test_no_mixed_version_answers(
        self, store_dir, n_obs, probe_at, clients, post_rounds
    ):
        registry = make_fleet(store_dir)
        out = run(
            _interleave(
                registry,
                n_obs=n_obs,
                probe_at=probe_at,
                clients=clients,
                post_rounds=post_rounds,
            )
        )
        assert out["dropped"] == 0
        # The refit genuinely changed the model, so v1 vs v2 answers
        # are distinguishable and the property below is non-vacuous.
        assert not np.array_equal(out["v1"], out["v2"])
        for coords in out["answers"][0]:
            assert matches_exactly_one_version(coords, out["v1"], out["v2"])
        # Post-swap answers exist and the tail of the stream is v2.
        assert matches_exactly_one_version(out["answers"][0][-1], out["v2"], out["v2"])
        # The slot that was never refit is bit-identical throughout.
        for coords in out["answers"][1]:
            assert np.array_equal(coords, out["f1_before"])
        assert np.array_equal(out["f1_before"], out["f1_after"])
        assert out["versions"][1] == out["versions"][0] + 1


class TestSwapBookkeeping:
    def test_swap_summary_and_state(self, live_fleet, labeled_traffic):
        scans, xy = labeled_traffic
        dispatcher = FleetDispatcher(live_fleet, batch_window_ms=0.5)
        live = LiveManager(dispatcher)

        async def go():
            await live.observe(scans[:40], xy[:40], building="HQ", floor=0)
            return await live.refit_now("HQ", 0)

        summary = run(go())
        assert summary["reason"] == "manual"
        assert summary["refit"]["n_observations"] == 40
        assert summary["refit"]["old_digest"] != summary["refit"]["new_digest"]
        state = live.state_for("HQ", 0)
        assert state.refits == 1
        assert state.swaps == 1
        # The consumed rows cleared; the buffer is ready for the next cycle.
        assert state.buffer.n_rows == 0
        live.close()
        dispatcher.close()

    def test_refit_now_needs_evidence(self, live_fleet):
        dispatcher = FleetDispatcher(live_fleet, batch_window_ms=0.5)
        live = LiveManager(dispatcher)
        with pytest.raises(ValueError, match="no buffered observations"):
            run(live.refit_now("HQ", 0))
        live.close()
        dispatcher.close()

    def test_observations_during_refit_survive_swap(
        self, live_fleet, labeled_traffic
    ):
        scans, xy = labeled_traffic
        dispatcher = FleetDispatcher(live_fleet, batch_window_ms=0.5)
        live = LiveManager(dispatcher)

        async def go():
            await live.observe(scans[:40], xy[:40], building="HQ", floor=0)
            refit = asyncio.create_task(live.refit_now("HQ", 0))
            # Let the refit capture its 40-row snapshot (it reads the
            # buffer synchronously before its first await)...
            await asyncio.sleep(0)
            # ...then land more evidence while the fit is in flight.
            await live.observe(scans[40:44], xy[40:44], building="HQ", floor=0)
            await refit
            return live.state_for("HQ", 0).buffer.n_rows

        leftover = run(go())
        assert leftover == 4
        live.close()
        dispatcher.close()
