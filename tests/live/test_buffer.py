"""ObservationBuffer: crash safety, rotation, bounds, validation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.live import ObservationBuffer
from repro.live.buffer import slot_dirname


def make_rows(n, n_aps=4, seed=0):
    rng = np.random.default_rng(seed)
    rssi = rng.uniform(-90.0, -30.0, size=(n, n_aps))
    xy = rng.uniform(0.0, 20.0, size=(n, 2))
    return rssi, xy


class TestAppendAndRecover:
    def test_roundtrip(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4)
        rssi, xy = make_rows(5)
        assert buf.append(rssi, xy) == 5
        assert buf.n_rows == 5
        got_rssi, got_xy = buf.rows()
        np.testing.assert_array_equal(got_rssi, rssi)
        np.testing.assert_array_equal(got_xy, xy)

    def test_recovery_preserves_rows_and_hash(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4)
        rssi, xy = make_rows(7)
        buf.append(rssi, xy)
        fresh = ObservationBuffer(tmp_path, "HQ/f0", 4)
        assert fresh.n_rows == 7
        assert fresh.content_hash == buf.content_hash
        got_rssi, got_xy = fresh.rows()
        np.testing.assert_array_equal(got_rssi, rssi)
        np.testing.assert_array_equal(got_xy, xy)

    def test_torn_final_line_is_dropped_not_fatal(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4)
        rssi, xy = make_rows(3)
        buf.append(rssi, xy)
        segment = sorted((tmp_path / slot_dirname("HQ/f0")).iterdir())[0]
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write('{"ts": 1.0, "rssi": [-50.0, -5')  # crash mid-write
        fresh = ObservationBuffer(tmp_path, "HQ/f0", 4)
        assert fresh.n_rows == 3
        np.testing.assert_array_equal(fresh.rows()[0], rssi)

    def test_foreign_garbage_row_truncates_tail(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4)
        rssi, xy = make_rows(2)
        buf.append(rssi, xy)
        segment = sorted((tmp_path / slot_dirname("HQ/f0")).iterdir())[0]
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"rssi": [1, 2], "xy": [0]}) + "\n")
        fresh = ObservationBuffer(tmp_path, "HQ/f0", 4)
        assert fresh.n_rows == 2


class TestRotationAndBounds:
    def test_segments_rotate(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4, segment_rows=3)
        rssi, xy = make_rows(8)
        buf.append(rssi, xy)
        files = sorted(
            p.name for p in (tmp_path / slot_dirname("HQ/f0")).iterdir()
        )
        assert files == ["obs-000000.jsonl", "obs-000001.jsonl",
                         "obs-000002.jsonl"]

    def test_max_rows_trims_oldest_whole_segments(self, tmp_path):
        buf = ObservationBuffer(
            tmp_path, "HQ/f0", 4, max_rows=6, segment_rows=3
        )
        rssi, xy = make_rows(12)
        buf.append(rssi, xy)
        assert buf.n_rows <= 6
        # The survivors are the NEWEST rows.
        got_rssi, _ = buf.rows()
        np.testing.assert_array_equal(got_rssi, rssi[-got_rssi.shape[0]:])

    def test_clear_rows_partial_segment_rewrite(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4, segment_rows=4)
        rssi, xy = make_rows(10)
        buf.append(rssi, xy)
        buf.clear_rows(6)
        assert buf.n_rows == 4
        np.testing.assert_array_equal(buf.rows()[0], rssi[6:])
        # ...and the rewrite is durable across recovery.
        fresh = ObservationBuffer(tmp_path, "HQ/f0", 4, segment_rows=4)
        np.testing.assert_array_equal(fresh.rows()[0], rssi[6:])

    def test_clear(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4)
        buf.append(*make_rows(3))
        buf.clear()
        assert buf.n_rows == 0
        assert ObservationBuffer(tmp_path, "HQ/f0", 4).n_rows == 0


class TestValidationNeverPoisons:
    @pytest.fixture()
    def buf(self, tmp_path):
        buf = ObservationBuffer(tmp_path, "HQ/f0", 4)
        buf.append(*make_rows(2))
        return buf

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r, x: (r[:, :3], x),  # wrong AP width
            lambda r, x: (r, x[:-1]),  # location count mismatch
            lambda r, x: (r, x[:, :1]),  # locations not (n, 2)
            lambda r, x: (np.full_like(r, 5.0), x),  # RSSI above 0 dBm
            lambda r, x: (np.full_like(r, -300.0), x),  # below no-signal
            lambda r, x: (np.full_like(r, np.nan), x),  # non-finite
            lambda r, x: (r[:0], x[:0]),  # empty batch
        ],
    )
    def test_rejected_before_any_write(self, buf, mutate):
        before_hash = buf.content_hash
        rssi, xy = make_rows(3, seed=9)
        with pytest.raises(ValueError):
            buf.append(*mutate(rssi, xy))
        assert buf.n_rows == 2
        assert buf.content_hash == before_hash

    def test_age_and_describe(self, buf):
        assert buf.age_s(now=buf.rows()[0].shape[0] * 1e12) > 0
        desc = buf.describe()
        assert desc["n_rows"] == 2
        assert desc["n_aps"] == 4
