"""DriftPolicy decision matrix, fingerprint conditionality, drift_score."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.config import FleetSpec
from repro.live import DriftPolicy
from repro.live.policy import drift_score


class TestDecision:
    def test_buffer_full_always_fires(self):
        policy = DriftPolicy(max_scans=64)
        assert policy.decision(64, 0.0, None) == (True, "buffer_full")
        # Even with a drift threshold the buffer bound wins first.
        policy = DriftPolicy(drift_threshold_m=5.0, max_scans=64)
        assert policy.decision(100, 0.0, 1.0) == (True, "buffer_full")

    def test_below_min_scans_never_fires(self):
        policy = DriftPolicy(drift_threshold_m=1.0, max_age_s=1.0, min_scans=32)
        assert policy.decision(31, 1e9, 99.0) == (False, None)

    def test_drift_trigger(self):
        policy = DriftPolicy(drift_threshold_m=5.0)
        assert policy.decision(32, 0.0, 5.1) == (True, "drift")
        assert policy.decision(32, 0.0, 5.0) == (False, None)
        assert policy.decision(32, 0.0, None) == (False, None)

    def test_age_trigger(self):
        policy = DriftPolicy(max_age_s=60.0)
        assert policy.decision(32, 61.0, None) == (True, "age")
        assert policy.decision(32, 59.0, None) == (False, None)

    def test_default_policy_only_fires_on_buffer_full(self):
        policy = DriftPolicy()
        assert policy.is_default
        assert policy.decision(4095, 1e9, 500.0) == (False, None)
        assert policy.decision(4096, 0.0, None) == (True, "buffer_full")

    def test_non_default_detection(self):
        assert not DriftPolicy(drift_threshold_m=3.0).is_default
        assert not DriftPolicy(min_scans=16).is_default

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drift_threshold_m": 0.0},
            {"drift_threshold_m": -1.0},
            {"min_scans": 0},
            {"max_scans": 8, "min_scans": 16},
            {"max_age_s": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftPolicy(**kwargs)


class TestFleetSpecIntegration:
    def test_default_policy_stays_out_of_fingerprint(self):
        base = FleetSpec.from_string("HQ:2")
        live = FleetSpec.from_string("HQ:2")
        assert live.drift_policy().is_default
        assert base.fingerprint() == live.fingerprint()

    def test_non_default_policy_changes_fingerprint(self):
        base = FleetSpec.from_string("HQ:2")
        live = FleetSpec.from_string("HQ:2", drift_threshold_m=4.0)
        assert base.fingerprint() != live.fingerprint()

    def test_dict_roundtrip_preserves_policy(self):
        spec = FleetSpec.from_string(
            "HQ:2", drift_threshold_m=4.0, live_min_scans=8, live_max_scans=64
        )
        again = FleetSpec.from_dict(spec.to_dict())
        assert again.drift_policy() == spec.drift_policy()
        assert again.fingerprint() == spec.fingerprint()


class TestDriftScore:
    def test_empty_is_zero(self):
        class Never:
            def predict(self, rssi):  # pragma: no cover - never called
                raise AssertionError

        assert drift_score(Never(), np.empty((0, 4)), np.empty((0, 2))) == 0.0

    def test_mean_error_against_labels(self):
        class Fixed:
            def predict(self, rssi):
                return np.zeros((rssi.shape[0], 2))

        xy = np.array([[3.0, 4.0], [0.0, 0.0]])  # errors 5 and 0
        score = drift_score(Fixed(), np.full((2, 4), -50.0), xy)
        assert score == pytest.approx(2.5)

    def test_real_slot_scores_drifted_month_worse(self, live_fleet):
        from repro.fleet.experiment import fleet_epoch_traffic

        localizer = live_fleet.slot("HQ", 0).entry.localizer
        deployment = live_fleet.building("HQ")
        scores = []
        for epoch in (0, 1):
            scans, true_b, true_f, true_xy = fleet_epoch_traffic(live_fleet, epoch)
            mask = (true_b == 0) & (true_f == 0)
            scores.append(
                drift_score(localizer, deployment.block(scans[mask]), true_xy[mask])
            )
        assert scores[1] > scores[0]
