"""Hot-swap through the worker pipe protocol: workers=2 acceptance.

The in-process swap is a dict assignment; the multi-process swap has to
republish the slot's shared-memory payload and make every future
request — including ones answered by a *respawned* worker — land on the
new version. These tests cover the acceptance criteria: zero dropped
requests, answers bit-identical to exactly one version, a SIGKILL
racing the swap window, and no leaked ``/dev/shm`` segments.
"""

from __future__ import annotations

import asyncio
import glob
import os
import signal

import numpy as np
import pytest

from repro.fleet import FleetDispatcher, WorkerCrashedError
from repro.fleet.experiment import fleet_epoch_traffic
from repro.live import LiveManager

from .conftest import direct_answer, make_fleet, matches_exactly_one_version, run


@pytest.fixture()
def shm_audit():
    before = set(glob.glob("/dev/shm/repro-shm-*"))
    created: set[str] = set()

    def snapshot():
        now = set(glob.glob("/dev/shm/repro-shm-*")) - before
        created.update(now)
        return now

    yield snapshot
    # Nothing this test created may survive it.
    assert set(glob.glob("/dev/shm/repro-shm-*")) & created == set()


@pytest.fixture()
def worker_fleet(tmp_path):
    registry = make_fleet(tmp_path / "models")
    dispatcher = FleetDispatcher(registry, batch_window_ms=0.5, workers=2)
    live = LiveManager(dispatcher)
    yield registry, dispatcher, live
    live.close()
    dispatcher.close()


def _observations(registry, n=48):
    scans, true_b, true_f, true_xy = fleet_epoch_traffic(registry, 1)
    mask = (true_b == 0) & (true_f == 0)
    return scans[mask][:n], true_xy[mask][:n]


@pytest.mark.slow
class TestWorkersSwap:
    def test_swap_under_traffic_zero_dropped(self, shm_audit, worker_fleet):
        registry, dispatcher, live = worker_fleet
        obs_scans, obs_xy = _observations(registry)
        probe = obs_scans[:8]
        v1 = direct_answer(registry, "HQ", 0, probe)
        f1_before = direct_answer(registry, "HQ", 1, probe)
        segments_before = len(shm_audit())

        async def go():
            answers = {0: [], 1: []}
            dropped = 0
            swapped = asyncio.Event()

            async def client(floor):
                nonlocal dropped
                post = 0
                while post < 3:
                    if swapped.is_set():
                        post += 1
                    try:
                        coords, _ = await dispatcher.localize(
                            probe, building="HQ", floor=floor
                        )
                    except Exception:
                        dropped += 1
                        continue
                    answers[floor].append(np.asarray(coords))

            tasks = [
                asyncio.create_task(client(floor)) for floor in (0, 1)
            ]
            await live.observe(obs_scans, obs_xy, building="HQ", floor=0)
            summary = await live.refit_now("HQ", 0)
            swapped.set()
            await asyncio.gather(*tasks)
            return answers, dropped, summary

        answers, dropped, summary = run(go())
        v2 = direct_answer(registry, "HQ", 0, probe)

        assert dropped == 0
        assert not np.array_equal(v1, v2)
        assert all(
            matches_exactly_one_version(c, v1, v2) for c in answers[0]
        )
        assert np.array_equal(answers[0][-1], v2)
        assert all(np.array_equal(c, f1_before) for c in answers[1])
        assert summary["refit"]["old_digest"] != summary["refit"]["new_digest"]
        # The republished payload replaced the old segment 1:1 — the
        # swap may not leak segments as refits accumulate.
        assert len(shm_audit()) == segments_before

    def test_respawn_after_sigkill_lands_on_new_version(
        self, shm_audit, worker_fleet
    ):
        """Kill the slot's owner worker right after the swap: the
        respawned worker must serve the NEW version (the pool's payload
        table was updated before the adopt), never the old one."""
        registry, dispatcher, live = worker_fleet
        obs_scans, obs_xy = _observations(registry)
        probe = obs_scans[:8]
        v1 = direct_answer(registry, "HQ", 0, probe)
        shm_audit()

        async def go():
            await live.observe(obs_scans, obs_xy, building="HQ", floor=0)
            return await live.refit_now("HQ", 0)

        run(go())
        v2 = direct_answer(registry, "HQ", 0, probe)
        assert not np.array_equal(v1, v2)

        pool = dispatcher.executor
        victim = pool._workers[pool._owner["HQ/f0"]]
        os.kill(victim.pid, signal.SIGKILL)
        victim.process.join(timeout=10.0)

        try:
            coords, _ = run(
                asyncio.wait_for(
                    dispatcher.localize(probe, building="HQ", floor=0),
                    timeout=60.0,
                )
            )
        except WorkerCrashedError as exc:
            assert "retry" in str(exc)
            coords, _ = run(
                asyncio.wait_for(
                    dispatcher.localize(probe, building="HQ", floor=0),
                    timeout=60.0,
                )
            )
        np.testing.assert_array_equal(coords, v2)
        stats = {w["worker"]: w for w in pool.worker_stats()}
        assert stats[victim.id]["restarts"] >= 1

    def test_sigkill_racing_the_swap_window(self, shm_audit, worker_fleet):
        """SIGKILL the owner while the refit+swap is in flight: the
        swap still completes, traffic settles on the new version and
        nothing hangs."""
        registry, dispatcher, live = worker_fleet
        obs_scans, obs_xy = _observations(registry)
        probe = obs_scans[:8]
        v1 = direct_answer(registry, "HQ", 0, probe)
        shm_audit()
        pool = dispatcher.executor
        victim = pool._workers[pool._owner["HQ/f0"]]

        async def go():
            await live.observe(obs_scans, obs_xy, building="HQ", floor=0)
            refit = asyncio.create_task(live.refit_now("HQ", 0))
            await asyncio.sleep(0.002)
            os.kill(victim.pid, signal.SIGKILL)
            return await asyncio.wait_for(refit, timeout=120.0)

        summary = run(go())
        v2 = direct_answer(registry, "HQ", 0, probe)
        assert summary["refit"]["new_digest"] != summary["refit"]["old_digest"]
        assert not np.array_equal(v1, v2)

        # The pool serves the new version once the respawn settles.
        for _ in range(3):
            try:
                coords, _ = run(
                    asyncio.wait_for(
                        dispatcher.localize(probe, building="HQ", floor=0),
                        timeout=60.0,
                    )
                )
                break
            except WorkerCrashedError as exc:
                assert "retry" in str(exc)
        else:  # pragma: no cover - three consecutive crash retries
            pytest.fail("pool never recovered after SIGKILL during swap")
        np.testing.assert_array_equal(coords, v2)
