"""POST /observe over HTTP: round trip, 400 matrix, never-poison, metrics."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.api.client import ReproClient
from repro.fleet import FleetDispatcher, FleetServer
from repro.fleet.experiment import fleet_epoch_traffic
from repro.live import LiveManager

from .conftest import make_fleet


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    registry = make_fleet(tmp_path_factory.mktemp("models"))
    dispatcher = FleetDispatcher(registry, batch_window_ms=1.0)
    live = LiveManager(
        dispatcher, buffer_dir=tmp_path_factory.mktemp("live-buffers")
    )
    srv = FleetServer(registry, dispatcher, port=0, live=live)
    handle = srv.start_background()
    yield srv
    handle.shutdown()


@pytest.fixture(scope="module")
def traffic(server):
    registry = server.registry
    scans, true_b, true_f, true_xy = fleet_epoch_traffic(registry, 1)
    mask = (true_b == 0) & (true_f == 0)
    return scans[mask], true_xy[mask]


def _request(server, method, path, payload=None):
    if payload is not None and "api_version" not in payload:
        payload = {"api_version": 1, **payload}
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    if path == "/metrics":
        return response.status, data.decode()
    return response.status, json.loads(data)


def _observe_payload(traffic, n=4, **overrides):
    scans, xy = traffic
    payload = {
        "rssi": scans[:n].tolist(),
        "locations": xy[:n].tolist(),
        "building": "HQ",
        "floor": 0,
    }
    payload.update(overrides)
    return payload


def _buffered(server):
    _, body = _request(server, "GET", "/models")
    return body["live"]["slots"].get("HQ/f0", {}).get("buffered", 0)


class TestObserveRoundTrip:
    def test_http_ingest(self, server, traffic):
        before = _buffered(server)
        status, body = _request(
            server, "POST", "/observe", _observe_payload(traffic, n=4)
        )
        assert status == 200
        assert body["slot"] == "HQ/f0"
        assert body["appended"] == 4
        assert body["buffered"] == before + 4
        assert body["version"] >= 1

    def test_client_observe(self, server, traffic):
        scans, xy = traffic
        client = ReproClient("127.0.0.1", server.port)
        result = client.observe(scans[4:7], xy[4:7], building="HQ", floor=0)
        assert result["slot"] == "HQ/f0"
        assert result["appended"] == 3


class TestObserveRejections:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: {k: v for k, v in p.items() if k != "building"},
            lambda p: {k: v for k, v in p.items() if k != "floor"},
            lambda p: {k: v for k, v in p.items() if k != "locations"},
            lambda p: {**p, "rssi": [row[:-1] for row in p["rssi"]]},
            lambda p: {**p, "locations": p["locations"][:-1]},
            lambda p: {**p, "locations": [[0.0] for _ in p["locations"]]},
            lambda p: {**p, "building": "NOPE"},
            lambda p: {**p, "floor": 99},
        ],
    )
    def test_bad_payload_is_400_and_never_buffers(self, server, traffic, mutate):
        before = _buffered(server)
        status, body = _request(
            server, "POST", "/observe", mutate(_observe_payload(traffic))
        )
        assert status == 400
        assert "error" in body
        assert _buffered(server) == before

    def test_get_is_405(self, server):
        status, _ = _request(server, "GET", "/observe")
        assert status == 405

    def test_still_ingests_after_rejections(self, server, traffic):
        before = _buffered(server)
        status, body = _request(
            server, "POST", "/observe", _observe_payload(traffic, n=2)
        )
        assert status == 200
        assert body["buffered"] == before + 2


class TestObservabilitySurface:
    def test_models_annotated_with_versions(self, server):
        status, body = _request(server, "GET", "/models")
        assert status == 200
        slot = body["slots"]["HQ/f0"]
        assert slot["version"] >= 1
        assert len(slot["digest"]) == 16
        assert "live" in body

    def test_live_metrics_families_exported(self, server, traffic):
        _request(server, "POST", "/observe", _observe_payload(traffic, n=2))
        status, text = _request(server, "GET", "/metrics")
        assert status == 200
        assert 'repro_live_observations_total{slot="HQ/f0"}' in text
        assert 'repro_live_buffered_scans{slot="HQ/f0"}' in text

    def test_localize_unaffected_by_ingest(self, server, traffic):
        scans, _ = traffic
        status, body = _request(
            server, "POST", "/localize_batch", {"rssi": scans[:4].tolist()}
        )
        assert status == 200
        assert np.asarray(body["locations"]).shape == (4, 2)
