"""Refit identity: new digest, old artifact kept, spec-embedded, prune."""

from __future__ import annotations

import numpy as np
import pytest

from repro.live import build_refit_suite, nearest_rp_indices, refit_slot


@pytest.fixture()
def observations(labeled_traffic, live_fleet):
    scans, xy = labeled_traffic
    deployment = live_fleet.building("HQ")
    return deployment.block(scans[:48]), xy[:48]


class TestBuildRefitSuite:
    def test_merged_rows_and_provenance(self, live_fleet, observations):
        rssi, xy = observations
        base = live_fleet.slot("HQ", 0).suite
        suite = build_refit_suite(base, rssi, xy, content_hash="abc123")
        assert suite.train.rssi.shape[0] == base.train.rssi.shape[0] + 48
        assert suite.metadata["live"] == {
            "n_observations": 48,
            "base_rows": int(base.train.rssi.shape[0]),
            "content_hash": "abc123",
        }
        # Observed rows keep measured coordinates as labels and are
        # stamped after every offline survey.
        np.testing.assert_array_equal(suite.train.locations[-48:], xy)
        assert suite.train.times_hours[-1] > base.train.times_hours.max()
        assert suite.train.epochs[-1] == base.train.epochs.max() + 1

    def test_nearest_rp_snap(self, live_fleet):
        floorplan = live_fleet.slot("HQ", 0).suite.floorplan
        rps = floorplan.reference_points
        nudged = rps[:5] + 0.01
        np.testing.assert_array_equal(
            nearest_rp_indices(floorplan, nudged), np.arange(5)
        )

    def test_rejects_empty_and_wrong_width(self, live_fleet):
        base = live_fleet.slot("HQ", 0).suite
        with pytest.raises(ValueError):
            build_refit_suite(base, np.empty((0, base.n_aps)), np.empty((0, 2)))
        with pytest.raises(ValueError):
            build_refit_suite(
                base, np.full((4, base.n_aps + 1), -50.0), np.zeros((4, 2))
            )


class TestRefitSlot:
    def test_new_digest_old_artifact_kept(self, live_fleet, observations):
        rssi, xy = observations
        store = live_fleet.store
        slot = live_fleet.slot("HQ", 0)
        on_disk_before = {row["digest"] for row in store.disk_manifest()}

        result = refit_slot(store, slot, rssi, xy, content_hash="h1")
        assert result.new_digest != result.old_digest
        assert result.entry.source == "fitted"
        assert result.n_observations == 48

        manifest = store.disk_manifest()
        digests = {row["digest"] for row in manifest}
        # Old and new versions coexist on disk.
        assert on_disk_before <= digests
        assert result.new_digest in digests
        assert result.old_digest in digests
        # The refit artifact is self-describing: spec embedded, same
        # config group as the artifact it supersedes.
        by_digest = {row["digest"]: row for row in manifest}
        new_row, old_row = by_digest[result.new_digest], by_digest[result.old_digest]
        assert new_row["spec_fingerprint"] is not None
        for field in ("framework", "suite", "seed", "fast", "index_tag", "backend"):
            assert new_row[field] == old_row[field]
        assert new_row["train_hash"] != old_row["train_hash"]

    def test_same_buffer_content_is_cache_hit(self, live_fleet, observations):
        rssi, xy = observations
        store = live_fleet.store
        slot = live_fleet.slot("HQ", 0)
        first = refit_slot(store, slot, rssi, xy)
        again = refit_slot(store, slot, rssi, xy)
        assert again.new_digest == first.new_digest
        # Identical merged content is a store hit, not a second fit.
        assert again.entry is first.entry

    def test_refit_model_answers_differ_from_old(self, live_fleet, labeled_traffic):
        scans, xy = labeled_traffic
        deployment = live_fleet.building("HQ")
        slot = live_fleet.slot("HQ", 0)
        result = refit_slot(
            live_fleet.store, slot, deployment.block(scans[:48]), xy[:48]
        )
        probe = deployment.block(scans[48:80])
        old = slot.entry.localizer.predict_batched(probe)
        new = result.entry.localizer.predict_batched(probe)
        assert not np.array_equal(old, new)

    def test_rebind_then_prune_keeps_referenced(self, live_fleet, observations):
        rssi, xy = observations
        store = live_fleet.store
        slot = live_fleet.slot("HQ", 0)
        old_digest = slot.entry.key.digest
        old_version = slot.version
        result = refit_slot(store, slot, rssi, xy)
        live_fleet.rebind_slot("HQ", 0, entry=result.entry, suite=result.suite)
        assert live_fleet.slot("HQ", 0).version == old_version + 1

        bound = {s.entry.key.digest for s in live_fleet.slots()}
        removed = store.prune(keep=1, referenced=bound)
        removed_digests = {row["digest"] for row in removed}
        # Exactly the superseded, unreferenced old version goes.
        assert removed_digests == {old_digest}
        remaining = {row["digest"] for row in store.disk_manifest()}
        assert bound <= remaining
        # The pruned fleet still serves.
        coords = live_fleet.slot("HQ", 0).entry.localizer.predict_batched(rssi[:4])
        assert coords.shape == (4, 2)
