"""ModelStore audit surface: disk_manifest, prune, `repro store` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet.experiment import fleet_epoch_traffic
from repro.live import refit_slot

from .conftest import make_fleet


@pytest.fixture()
def refit_store(tmp_path):
    """A disk-backed fleet with one superseded HQ/f0 artifact."""
    model_dir = tmp_path / "models"
    registry = make_fleet(model_dir)
    scans, true_b, true_f, true_xy = fleet_epoch_traffic(registry, 1)
    mask = (true_b == 0) & (true_f == 0)
    slot = registry.slot("HQ", 0)
    old_digest = slot.entry.key.digest
    block = registry.building("HQ").block(scans[mask][:40])
    result = refit_slot(registry.store, slot, block, true_xy[mask][:40])
    registry.rebind_slot("HQ", 0, entry=result.entry, suite=result.suite)
    return model_dir, registry, old_digest, result.new_digest


class TestDiskManifest:
    def test_rows_are_self_describing(self, live_fleet):
        manifest = live_fleet.store.disk_manifest()
        assert len(manifest) == 2  # HQ/f0 + HQ/f1
        for row in manifest:
            assert "error" not in row
            assert row["framework"] == "KNN"
            assert len(row["digest"]) > 16
            assert row["size_bytes"] > 0
            assert row["spec_fingerprint"] is not None

    def test_unreadable_artifact_reported_not_fatal(self, live_fleet):
        store = live_fleet.store
        victim = store.model_dir / f"{'0' * 16}.pkl"
        victim.write_bytes(b"not a pickle")
        rows = store.disk_manifest()
        assert len(rows) == 3
        bad = [row for row in rows if "error" in row]
        assert len(bad) == 1
        assert bad[0]["size_bytes"] == len(b"not a pickle")


class TestPrune:
    def test_dry_run_removes_nothing(self, refit_store):
        _, registry, old_digest, _ = refit_store
        store = registry.store
        removed = store.prune(keep=1, dry_run=True)
        assert {row["digest"] for row in removed} == {old_digest}
        assert old_digest in {row["digest"] for row in store.disk_manifest()}

    def test_referenced_artifacts_survive(self, refit_store):
        _, registry, old_digest, new_digest = refit_store
        store = registry.store
        # Pin the OLD digest as referenced: nothing may be removed even
        # though the group has two versions.
        removed = store.prune(keep=1, referenced={old_digest, new_digest})
        assert removed == []

    def test_prune_keeps_newest_per_group(self, refit_store):
        _, registry, old_digest, new_digest = refit_store
        store = registry.store
        removed = store.prune(keep=1)
        assert {row["digest"] for row in removed} == {old_digest}
        remaining = {row["digest"] for row in store.disk_manifest()}
        assert new_digest in remaining
        assert old_digest not in remaining

    def test_keep_must_be_positive(self, live_fleet):
        with pytest.raises(ValueError):
            live_fleet.store.prune(keep=0)


class TestStoreCommand:
    def test_ls_table(self, refit_store, capsys):
        model_dir, _, old_digest, new_digest = refit_store
        assert main(["store", "ls", "--model-dir", str(model_dir)]) == 0
        out = capsys.readouterr().out
        assert old_digest[:16] in out
        assert new_digest[:16] in out

    def test_ls_json_manifest(self, refit_store, tmp_path, capsys):
        model_dir, *_ = refit_store
        out_json = tmp_path / "manifest.json"
        assert main([
            "store", "ls", "--model-dir", str(model_dir),
            "--json", str(out_json),
        ]) == 0
        capsys.readouterr()
        manifest = json.loads(out_json.read_text())["artifacts"]
        assert len(manifest) == 3

    def test_ls_empty_dir(self, tmp_path, capsys):
        assert main(["store", "ls", "--model-dir", str(tmp_path)]) == 0
        assert "no artifacts" in capsys.readouterr().out

    def test_prune_dry_run_then_real(self, refit_store, capsys):
        model_dir, registry, old_digest, new_digest = refit_store
        assert main([
            "store", "prune", "--model-dir", str(model_dir), "--dry-run",
        ]) == 0
        out = capsys.readouterr().out
        assert "would remove" in out
        assert old_digest[:16] in out

        assert main(["store", "prune", "--model-dir", str(model_dir)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 artifact(s)" in out
        remaining = {row["digest"] for row in registry.store.disk_manifest()}
        assert len(remaining) == 2  # HQ/f0 (refit) + HQ/f1, old version gone
        assert new_digest in remaining
        assert old_digest not in remaining
