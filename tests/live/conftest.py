"""Live-layer fixtures: small fleets + labeled drifted-month traffic.

Hot-swap tests mutate their registry's slot bindings, so — unlike the
session-scoped fleet in ``tests/fleet`` — mutating tests get a *fresh*
fleet from the ``live_fleet`` factory and the read-only fixtures stay
module-scoped.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.fleet import FleetRegistry, parse_fleet_spec
from repro.fleet.experiment import fleet_epoch_traffic


def make_fleet(model_dir=None, *, spec="HQ:2", months=2, aps_per_floor=10):
    return FleetRegistry.from_specs(
        parse_fleet_spec(spec),
        framework="KNN",
        seed=0,
        fast=True,
        months=months,
        aps_per_floor=aps_per_floor,
        model_dir=model_dir,
    )


@pytest.fixture()
def live_fleet(tmp_path):
    """A fresh two-slot fleet with a disk-backed store (mutable)."""
    return make_fleet(tmp_path / "models")


@pytest.fixture()
def labeled_traffic(live_fleet):
    """Drifted-month labeled rows for HQ/f0: (scans, xy) fleet-wide."""
    scans, true_b, true_f, true_xy = fleet_epoch_traffic(live_fleet, 1)
    mask = (true_b == 0) & (true_f == 0)
    return scans[mask], true_xy[mask]


def run(coro):
    return asyncio.run(coro)


def direct_answer(registry, building, floor, scans):
    """Reference answer: the slot's current localizer, called directly."""
    deployment = registry.building(building)
    localizer = registry.slot(building, floor).entry.localizer
    return localizer.predict_batched(deployment.block(scans))


def matches_exactly_one_version(coords, v1, v2):
    """A swap-window answer must be bit-identical to v1 or v2 — and the
    two are distinguishable, so "both" means the refit was a no-op."""
    coords = np.asarray(coords)
    return np.array_equal(coords, v1) or np.array_equal(coords, v2)
