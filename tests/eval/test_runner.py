"""Tests for the longitudinal evaluation runner (protocol correctness)."""

import numpy as np
import pytest

from repro.baselines.base import Localizer
from repro.eval import Comparison, compare_frameworks, evaluate_localizer
from repro.eval.runner import FrameworkResult


class OracleLocalizer(Localizer):
    """Test double: remembers protocol calls, predicts a fixed offset."""

    name = "oracle"

    def __init__(self, offset=0.0):
        super().__init__()
        self.offset = offset
        self.begin_epoch_calls = []
        self.fit_called = False

    def fit(self, train, floorplan, *, rng=None):
        self.fit_called = True
        self._train = train
        self._fitted = True
        return self

    def begin_epoch(self, epoch, unlabeled_rssi):
        self.begin_epoch_calls.append((epoch, unlabeled_rssi.shape))

    def predict(self, rssi):
        # cheat: look up the true locations by matching scan rows
        out = np.zeros((rssi.shape[0], 2))
        out[:] = self._current_truth + self.offset
        return out

    def set_truth(self, locations):
        self._current_truth = locations


class TestEvaluateLocalizer:
    def _run(self, suite, offset=0.0):
        localizer = OracleLocalizer(offset)

        # Wire the oracle so each epoch predicts truth + offset.
        original_begin = localizer.begin_epoch

        def begin_epoch(epoch, unlabeled):
            original_begin(epoch, unlabeled)
            localizer.set_truth(suite.test_epochs[epoch].locations)

        localizer.begin_epoch = begin_epoch
        return localizer, evaluate_localizer(localizer, suite)

    def test_protocol_calls_in_order(self, tiny_suite):
        localizer, result = self._run(tiny_suite)
        assert localizer.fit_called
        epochs_seen = [e for e, _ in localizer.begin_epoch_calls]
        assert epochs_seen == list(range(tiny_suite.n_epochs))
        # begin_epoch received the epoch's scans (unlabeled shape matches)
        for (epoch, shape) in localizer.begin_epoch_calls:
            assert shape == tiny_suite.test_epochs[epoch].rssi.shape

    def test_perfect_predictor_zero_error(self, tiny_suite):
        _, result = self._run(tiny_suite, offset=0.0)
        np.testing.assert_allclose(result.mean_errors(), 0.0, atol=1e-12)

    def test_offset_predictor_constant_error(self, tiny_suite):
        _, result = self._run(tiny_suite, offset=3.0)
        expected = 3.0 * np.sqrt(2)
        np.testing.assert_allclose(result.mean_errors(), expected, rtol=1e-9)
        assert result.overall_mean() == pytest.approx(expected)

    def test_result_labels_match_suite(self, tiny_suite):
        _, result = self._run(tiny_suite)
        assert result.labels() == tiny_suite.epoch_labels

    def test_fit_seconds_recorded(self, tiny_suite):
        _, result = self._run(tiny_suite)
        assert result.fit_seconds >= 0.0

    def test_fit_false_reuses_trained_localizer(self, tiny_suite):
        # A pre-fitted localizer evaluated with fit=False must not be
        # re-fitted (the compression benches depend on this).
        localizer = OracleLocalizer()
        localizer.fit(tiny_suite.train, tiny_suite.floorplan)
        localizer.fit_called = False

        original_begin = localizer.begin_epoch

        def begin_epoch(epoch, unlabeled):
            original_begin(epoch, unlabeled)
            localizer.set_truth(tiny_suite.test_epochs[epoch].locations)

        localizer.begin_epoch = begin_epoch
        result = evaluate_localizer(localizer, tiny_suite, fit=False)
        assert not localizer.fit_called
        assert result.fit_seconds == 0.0
        np.testing.assert_allclose(result.mean_errors(), 0.0, atol=1e-12)


class TestComparison:
    def test_compare_frameworks_fast(self, tiny_suite):
        comparison = compare_frameworks(
            tiny_suite, ("KNN", "GIFT"), seed=0, fast=True
        )
        assert set(comparison.frameworks()) == {"KNN", "GIFT"}
        series = comparison.series()
        for errors in series.values():
            assert errors.shape == (tiny_suite.n_epochs,)
            assert np.isfinite(errors).all()

    def test_best_prior_work(self):
        comparison = Comparison(suite="t")
        for name, mean in (("STONE", 0.5), ("KNN", 2.0), ("LT-KNN", 1.0)):
            result = FrameworkResult(framework=name, suite="t")
            from repro.eval.metrics import ErrorSummary
            from repro.eval.runner import EpochResult

            errors = np.array([mean])
            result.epochs.append(
                EpochResult(
                    label="e0",
                    summary=ErrorSummary.from_errors(errors),
                    errors=errors,
                )
            )
            comparison.results[name] = result
        assert comparison.best_prior_work() == "LT-KNN"

    def test_best_prior_requires_candidates(self):
        comparison = Comparison(suite="t")
        with pytest.raises(ValueError):
            comparison.best_prior_work()
