"""Tests for evaluation metrics and ASCII reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    ErrorSummary,
    comparison_table,
    error_cdf,
    format_table,
    heatmap,
    improvement_percent,
    line_chart,
    localization_errors,
    mean_error,
    visibility_matrix_chart,
)


class TestMetrics:
    def test_localization_errors(self):
        pred = np.array([[0.0, 0.0], [1.0, 1.0]])
        true = np.array([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(localization_errors(pred, true), [5.0, 0.0])

    def test_mean_error(self):
        pred = np.array([[0.0, 0.0], [0.0, 0.0]])
        true = np.array([[0.0, 2.0], [0.0, 4.0]])
        assert mean_error(pred, true) == pytest.approx(3.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            localization_errors(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_summary_fields(self):
        errors = np.array([1.0, 2.0, 3.0, 4.0])
        summary = ErrorSummary.from_errors(errors)
        assert summary.mean_m == pytest.approx(2.5)
        assert summary.median_m == pytest.approx(2.5)
        assert summary.max_m == 4.0
        assert summary.n_samples == 4
        assert "2.50" in summary.as_row()

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_errors(np.array([]))

    def test_cdf_monotone_and_bounded(self):
        errors = np.array([0.5, 1.0, 2.0, 4.0])
        grid = np.linspace(0, 5, 11)
        cdf = error_cdf(errors, grid)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[0] == 0.0
        assert cdf[-1] == 1.0

    def test_improvement_percent(self):
        assert improvement_percent(2.0, 1.0) == pytest.approx(50.0)
        assert improvement_percent(1.0, 1.4) == pytest.approx(-40.0)

    def test_improvement_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)

    @given(
        st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_summary_ordering(self, errors):
        summary = ErrorSummary.from_errors(np.array(errors))
        assert summary.median_m <= summary.p75_m <= summary.p95_m <= summary.max_m


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1.0, 2.5], [10.25, 3.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "10.25" in table

    def test_line_chart_contains_series_marks(self):
        chart = line_chart(
            {"STONE": np.array([1.0, 2.0]), "KNN": np.array([2.0, 1.0])},
            x_labels=["a", "b"],
            title="t",
        )
        assert "legend" in chart
        assert "*=STONE" in chart
        assert "o=KNN" in chart

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_line_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart({"a": np.array([1.0]), "b": np.array([1.0, 2.0])})

    def test_heatmap_renders_values(self):
        text = heatmap(
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            row_labels=["r1", "r2"],
            col_labels=["c1", "c2"],
        )
        assert "1.00" in text and "4.00" in text

    def test_heatmap_shape_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 2)), row_labels=["a"], col_labels=["b", "c"])

    def test_visibility_chart_marks_missing(self):
        matrix = np.array([[True, False], [True, True]])
        text = visibility_matrix_chart(matrix, row_labels=["e0", "e1"])
        assert "#" in text
        assert text.splitlines()[0].count(".") == 1

    def test_comparison_table_has_mean_row(self):
        table = comparison_table(
            {"A": np.array([1.0, 3.0]), "B": np.array([2.0, 2.0])},
            x_labels=["e0", "e1"],
        )
        assert "MEAN" in table
        assert "2.00" in table
