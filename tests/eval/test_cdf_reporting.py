"""Tests for CDF charts and percentile tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import cdf_chart, percentile_table


class TestCdfChart:
    def test_renders_series_and_legend(self):
        rng = np.random.default_rng(0)
        chart = cdf_chart(
            {"STONE": rng.exponential(1.0, 200), "KNN": rng.exponential(2.0, 200)},
            title="office CDF",
        )
        assert "office CDF" in chart
        assert "STONE" in chart and "KNN" in chart
        assert "100%" in chart

    def test_monotone_nondecreasing_marks(self):
        errors = np.array([0.5, 1.0, 2.0, 4.0])
        chart = cdf_chart({"x": errors}, width=20, height=8)
        # Extract, per column, the row index of the mark; the CDF must be
        # non-decreasing left to right.
        grid_lines = [
            line.split("|")[1] for line in chart.splitlines() if "|" in line
        ]
        rows_per_col = []
        for col in range(20):
            marks = [r for r, line in enumerate(grid_lines) if line[col] == "*"]
            rows_per_col.append(min(marks))
        assert all(
            rows_per_col[i] >= rows_per_col[i + 1]
            for i in range(len(rows_per_col) - 1)
        )

    def test_max_error_override(self):
        chart = cdf_chart({"x": np.array([1.0])}, max_error_m=10.0)
        assert "10.0 m" in chart

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            cdf_chart({})
        with pytest.raises(ValueError):
            cdf_chart({"x": np.array([])})

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_never_crashes_on_random_errors(self, seed):
        rng = np.random.default_rng(seed)
        chart = cdf_chart({"a": rng.exponential(1.0, 50)})
        assert "legend" in chart


class TestPercentileTable:
    def test_columns_and_ordering(self):
        errors = np.linspace(0.0, 10.0, 101)
        table = percentile_table({"x": errors})
        assert "p50" in table and "p95" in table
        # p50 of 0..10 is 5, p95 is 9.5.
        assert "5.00" in table
        assert "9.50" in table

    def test_mean_column(self):
        table = percentile_table({"x": np.array([2.0, 2.0])})
        assert "mean" in table
        assert "2.00" in table

    def test_custom_percentiles(self):
        table = percentile_table(
            {"x": np.arange(100.0)}, percentiles=(25.0,)
        )
        assert "p25" in table
        assert "p95" not in table

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_table({})
        with pytest.raises(ValueError):
            percentile_table({"x": np.array([])})
