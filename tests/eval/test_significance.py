"""Tests for bootstrap confidence intervals and paired comparisons."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    BootstrapCI,
    bootstrap_mean_ci,
    epochwise_cis,
    paired_bootstrap_pvalue,
)


def rng():
    return np.random.default_rng(17)


class TestBootstrapCI:
    def test_contains_true_mean_for_large_sample(self):
        errors = rng().exponential(2.0, size=2000)
        ci = bootstrap_mean_ci(errors, rng=rng())
        assert ci.low <= errors.mean() <= ci.high
        assert 2.0 in ci or abs(ci.mean - 2.0) < 0.3

    def test_interval_ordering(self):
        ci = bootstrap_mean_ci(rng().normal(5, 1, 100), rng=rng())
        assert ci.low <= ci.mean <= ci.high

    def test_degenerate_sample_collapses(self):
        ci = bootstrap_mean_ci(np.full(50, 3.0), rng=rng())
        assert ci.low == ci.high == ci.mean == 3.0

    def test_narrower_with_more_data(self):
        small = bootstrap_mean_ci(rng().normal(0, 1, 20), rng=rng())
        large = bootstrap_mean_ci(rng().normal(0, 1, 2000), rng=rng())
        assert (large.high - large.low) < (small.high - small.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0]), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([1.0]), n_boot=0)

    @given(st.floats(0.5, 0.99))
    @settings(max_examples=10, deadline=None)
    def test_property_wider_at_higher_confidence(self, confidence):
        errors = np.random.default_rng(3).normal(0, 1, 200)
        narrow = bootstrap_mean_ci(
            errors, confidence=0.5, rng=np.random.default_rng(1)
        )
        wide = bootstrap_mean_ci(
            errors, confidence=max(confidence, 0.51), rng=np.random.default_rng(1)
        )
        assert (wide.high - wide.low) >= (narrow.high - narrow.low) - 1e-12

    def test_str_rendering(self):
        text = str(BootstrapCI(mean=1.0, low=0.8, high=1.2, confidence=0.95))
        assert "95%" in text


class TestPairedBootstrap:
    def test_clear_winner_small_pvalue(self):
        r = rng()
        b = r.exponential(2.0, 500)
        a = b * 0.5  # paired: A is half of B on every sample
        assert paired_bootstrap_pvalue(a, b, rng=r) < 0.01

    def test_identical_distributions_large_pvalue(self):
        r = rng()
        a = r.normal(5, 1, 500)
        p = paired_bootstrap_pvalue(a, a + r.normal(0, 0.01, 500), rng=r)
        assert p > 0.05

    def test_reversed_comparison(self):
        r = rng()
        b = r.exponential(2.0, 500)
        a = b * 2.0
        assert paired_bootstrap_pvalue(a, b, rng=r) > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue(np.array([]), np.array([]))


class TestEpochwiseCIs:
    def test_one_ci_per_epoch(self):
        per_epoch = [rng().exponential(1.0, 50) for _ in range(4)]
        cis = epochwise_cis(per_epoch, rng=rng())
        assert len(cis) == 4
        for ci, errs in zip(cis, per_epoch):
            assert ci.mean == pytest.approx(errs.mean())
