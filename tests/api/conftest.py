"""Fixtures for the public-surface tests: one tiny served deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import LocalizerSpec, ServeSpec


@pytest.fixture(scope="module")
def knn_spec():
    return LocalizerSpec(framework="KNN", suite_name="office", fast=True)


@pytest.fixture(scope="module")
def query_rows(tiny_suite):
    """A pool of real test-epoch scans to use as request payloads."""
    return np.vstack([ds.rssi for ds in tiny_suite.test_epochs])[:48]


@pytest.fixture(scope="module")
def background_server(knn_spec, tiny_suite):
    """A real LocalizationServer on an ephemeral port, KNN on tiny_suite."""
    spec = ServeSpec(localizer=knn_spec, port=0, batch_window_ms=1.0)
    server = spec.build(tiny_suite)
    handle = server.start_background()
    yield server
    handle.shutdown()
