"""Deprecation-shim equivalence: the legacy entry points still work,
warn, and return bit-identical results to the spec-driven path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexSpec, LocalizerSpec
from repro.baselines.registry import build_localizer, make_localizer


class TestMakeLocalizerShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="LocalizerSpec"):
            make_localizer("KNN")

    def test_build_localizer_does_not_warn(self, recwarn):
        build_localizer("KNN")
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_invalid_index_still_rejected(self):
        from repro.index import IndexConfig

        with (
            pytest.warns(DeprecationWarning),
            pytest.raises(ValueError, match="no reference radio map"),
        ):
            make_localizer("GIFT", index=IndexConfig(kind="kmeans"))

    @pytest.mark.parametrize("name", ["KNN", "LT-KNN", "GIFT"])
    def test_predictions_bit_identical_to_spec_path(self, name, tiny_suite):
        """make_localizer(...) == LocalizerSpec(...).build() end to end."""
        with pytest.warns(DeprecationWarning):
            legacy = make_localizer(name, suite_name=tiny_suite.name, fast=True)
        modern = LocalizerSpec(
            framework=name, suite_name=tiny_suite.name, fast=True
        ).build()
        assert type(legacy) is type(modern)
        legacy.fit(tiny_suite.train, tiny_suite.floorplan,
                   rng=np.random.default_rng([0, 0]))
        modern.fit(tiny_suite.train, tiny_suite.floorplan,
                   rng=np.random.default_rng([0, 0]))
        queries = tiny_suite.test_epochs[0].rssi[:12]
        np.testing.assert_array_equal(
            legacy.predict(queries), modern.predict(queries)
        )

    def test_sharded_equivalence(self, tiny_suite):
        """The index kwarg maps onto IndexSpec bit-identically."""
        from repro.index import IndexConfig

        config = IndexConfig(kind="region", n_shards=4, n_probe=2)
        with pytest.warns(DeprecationWarning):
            legacy = make_localizer("KNN", index=config)
        modern = LocalizerSpec(
            framework="KNN", index=IndexSpec.from_config(config)
        ).build()
        legacy.fit(tiny_suite.train, tiny_suite.floorplan,
                   rng=np.random.default_rng([0, 0]))
        modern.fit(tiny_suite.train, tiny_suite.floorplan,
                   rng=np.random.default_rng([0, 0]))
        queries = tiny_suite.test_epochs[0].rssi[:12]
        np.testing.assert_array_equal(
            legacy.predict(queries), modern.predict(queries)
        )
