"""ReproClient behaviour: typed errors, 429-aware retry, keep-alive."""

from __future__ import annotations

import pytest

from repro.api import (
    ReproAPIError,
    ReproClient,
    ReproConnectionError,
    ReproOverloadError,
)
from repro.serve import JsonHttpServer, RequestError
from repro.serve.protocol import error_payload


class ScriptedServer(JsonHttpServer):
    """Answers ``POST /localize`` from a fixed script of responses.

    Each script entry is ``(status, payload_dict)`` or an exception to
    raise; the last entry repeats once the script is exhausted.
    ``connections`` counts accepted TCP connections (keep-alive probe).
    """

    def __init__(self, script) -> None:
        super().__init__(port=0)
        self.script = list(script)
        self.hits = 0
        self.connections = 0

    async def _handle(self, reader, writer):
        self.connections += 1
        await super()._handle(reader, writer)

    async def _route(self, request):
        request.json()  # negotiate api_version like a real endpoint
        self.hits += 1
        step = self.script.pop(0) if len(self.script) > 1 else self.script[0]
        if isinstance(step, Exception):
            raise step
        status, payload = step
        if status == 429:
            body = error_payload(
                "admission queue full", status=429, retryable=True,
            )
            body.update(payload)
            return 429, body
        if status == 503:
            body = error_payload(
                "fleet worker crashed; slot respawning — retry",
                status=503, retryable=True,
            )
            body.update(payload)
            return 503, body
        return status, payload


@pytest.fixture()
def scripted():
    """Factory: start a scripted server, yield (server, client), clean up."""
    handles = []

    def start(script, **client_kwargs):
        server = ScriptedServer(script)
        handle = server.start_background()
        client = ReproClient(port=handle.port, **client_kwargs)
        handles.append((handle, client))
        return server, client

    yield start
    for handle, client in handles:
        client.close()
        handle.shutdown()


OK = (200, {"location": [1.5, 2.5]})


class TestRetryOn429:
    def test_retries_until_success(self, scripted):
        server, client = scripted(
            [(429, {"retry_after_ms": 1}), (429, {"retry_after_ms": 1}), OK],
            max_retries=3,
        )
        result = client.localize([-50.0])
        assert result.location.tolist() == [1.5, 2.5]
        assert client.retries == 2
        assert server.hits == 3

    def test_gives_up_after_max_retries(self, scripted):
        server, client = scripted(
            [(429, {"retry_after_ms": 1})], max_retries=2
        )
        with pytest.raises(ReproOverloadError) as excinfo:
            client.localize([-50.0])
        assert excinfo.value.status == 429
        assert excinfo.value.retryable is True
        assert excinfo.value.retry_after_ms == 1
        assert server.hits == 3  # initial try + 2 retries

    def test_max_retries_zero_fails_immediately(self, scripted):
        server, client = scripted(
            [(429, {"retry_after_ms": 1})], max_retries=0
        )
        with pytest.raises(ReproOverloadError):
            client.localize([-50.0])
        assert server.hits == 1
        assert client.retries == 0

    def test_overload_is_an_api_error(self, scripted):
        _, client = scripted([(429, {"retry_after_ms": 1})], max_retries=0)
        with pytest.raises(ReproAPIError):
            client.localize([-50.0])


class TestRetryOn503:
    """A retryable 503 (fleet worker respawning) retries like a 429."""

    def test_retries_until_the_slot_respawns(self, scripted):
        server, client = scripted(
            [(503, {"retry_after_ms": 1}), OK], max_retries=2
        )
        result = client.localize([-50.0])
        assert result.location.tolist() == [1.5, 2.5]
        assert client.retries == 1
        assert server.hits == 2

    def test_gives_up_retryable_after_budget(self, scripted):
        server, client = scripted(
            [(503, {"retry_after_ms": 1})], max_retries=2
        )
        with pytest.raises(ReproAPIError) as excinfo:
            client.localize([-50.0])
        assert excinfo.value.status == 503
        assert excinfo.value.retryable is True
        assert excinfo.value.code == "unavailable"
        assert server.hits == 3  # initial try + 2 retries

    def test_mixed_429_then_503_then_ok(self, scripted):
        server, client = scripted(
            [(429, {"retry_after_ms": 1}), (503, {"retry_after_ms": 1}), OK],
            max_retries=3,
        )
        assert client.localize([-50.0]).location.tolist() == [1.5, 2.5]
        assert server.hits == 3


class TestTypedErrors:
    def test_structured_error_surfaces_typed(self, scripted):
        _, client = scripted(
            [RequestError("scan too wide", code="bad_request")]
        )
        with pytest.raises(ReproAPIError) as excinfo:
            client.localize([-50.0])
        err = excinfo.value
        assert err.status == 400
        assert err.code == "bad_request"
        assert "scan too wide" in err.message
        assert err.retryable is False

    def test_unsupported_api_version_code(self, scripted):
        _, client = scripted([OK])
        client.api_version = 999  # simulate a from-the-future client
        with pytest.raises(ReproAPIError) as excinfo:
            client.localize([-50.0])
        assert excinfo.value.code == "unsupported_api_version"

    def test_404_maps_to_not_found(self, scripted):
        _, client = scripted(
            [RequestError("unknown endpoint", status=404)]
        )
        with pytest.raises(ReproAPIError) as excinfo:
            client.localize([-50.0])
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_connection_error_when_nothing_listens(self):
        client = ReproClient(port=1, max_retries=0, timeout=2.0)
        with pytest.raises(ReproConnectionError):
            client.healthz()


class TestTransport:
    def test_keep_alive_reuses_one_connection(self, scripted):
        server, client = scripted([OK])
        for _ in range(5):
            client.localize([-50.0])
        assert server.hits == 5
        assert server.connections == 1

    def test_close_reopens_on_next_request(self, scripted):
        server, client = scripted([OK])
        client.localize([-50.0])
        client.close()
        client.localize([-50.0])
        assert server.connections == 2

    def test_context_manager_closes(self, scripted):
        server, client = scripted([OK])
        with client:
            client.localize([-50.0])
        assert client._conn is None


class EchoObsServer(JsonHttpServer):
    """Echoes the request's obs fields back so client plumbing is visible."""

    async def _route(self, request):
        payload = request.json()
        return 200, {
            "location": [1.0, 2.0],
            "trace": {
                "request_id": payload.get("request_id"),
                "echo_trace": payload.get("trace"),
            },
        }


class TestObservability:
    @pytest.fixture()
    def echo(self):
        server = EchoObsServer(port=0)
        handle = server.start_background()
        client = ReproClient(port=handle.port)
        yield server, client
        client.close()
        handle.shutdown()

    def test_trace_and_request_id_sent_and_surfaced(self, echo):
        _, client = echo
        result = client.localize([-50.0], trace=True, request_id="cli-7")
        assert result.trace == {"request_id": "cli-7", "echo_trace": True}

    def test_no_trace_by_default(self, echo):
        _, client = echo
        result = client.localize([-50.0])
        assert result.trace == {"request_id": None, "echo_trace": None}

    def test_typed_errors_carry_request_id(self, scripted):
        _, client = scripted(
            [RequestError("scan too wide", code="bad_request")]
        )
        with pytest.raises(ReproAPIError) as excinfo:
            client.localize([-50.0], request_id="boom-1")
        err = excinfo.value
        assert err.request_id == "boom-1"
        assert "request_id=boom-1" in str(err)

    def test_minted_request_id_on_errors(self, scripted):
        _, client = scripted(
            [RequestError("scan too wide", code="bad_request")]
        )
        with pytest.raises(ReproAPIError) as excinfo:
            client.localize([-50.0])
        # The server mints one when the client doesn't pin it.
        assert isinstance(excinfo.value.request_id, str)
        assert excinfo.value.request_id

    def test_metrics_text_scrapes_prometheus(self, echo):
        _, client = echo
        client.localize([-50.0])
        text = client.metrics_text()
        from repro.obs import parse_prometheus_text

        families = parse_prometheus_text(text)
        assert "repro_http_requests_total" in families


class TestFromUrl:
    @pytest.mark.parametrize(
        "url, host, port",
        [
            ("http://127.0.0.1:8123", "127.0.0.1", 8123),
            ("127.0.0.1:8123", "127.0.0.1", 8123),
            ("http://localhost:9000/", "localhost", 9000),
            ("http://example.test", "example.test", 8000),
        ],
    )
    def test_parsing(self, url, host, port):
        client = ReproClient.from_url(url)
        assert (client.host, client.port) == (host, port)

    def test_https_rejected_not_downgraded(self):
        with pytest.raises(ValueError, match="https is not supported"):
            ReproClient.from_url("https://lab.example.com:8443")

    def test_url_path_rejected(self):
        with pytest.raises(ValueError, match="paths are not supported"):
            ReproClient.from_url("http://host:8000/api")

    def test_invalid_retries_rejected(self):
        with pytest.raises(ValueError):
            ReproClient(max_retries=-1)
