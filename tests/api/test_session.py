"""LocalizationSession: one facade, two backends, identical answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import LocalizationSession, LocalizerSpec


@pytest.fixture(scope="module")
def local_session(knn_spec, tiny_suite):
    return LocalizationSession.local(knn_spec, tiny_suite).fit()


@pytest.fixture(scope="module")
def remote_session(background_server):
    session = LocalizationSession.remote(
        f"http://127.0.0.1:{background_server.port}"
    ).fit()
    yield session
    session.close()


class TestLocalBackend:
    def test_localize_single_scan(self, local_session, query_rows):
        coords = local_session.localize(query_rows[0])
        assert coords.shape == (2,)

    def test_stats_shape(self, local_session):
        stats = local_session.stats()
        assert stats["backend"] == "local"
        assert stats["framework"] == "KNN"
        assert stats["n_aps"] > 0

    def test_fit_is_idempotent(self, knn_spec, tiny_suite):
        session = LocalizationSession.local(knn_spec, tiny_suite)
        session.fit()
        entry = session.entry
        session.fit()
        assert session.entry is entry
        assert session.store.fits == 1

    def test_scan_normalization_matches_protocol(self, local_session, tiny_suite):
        # Out-of-band readings clip exactly as the HTTP layer clips.
        hot = np.full(tiny_suite.n_aps, -104.0)
        clipped = np.full(tiny_suite.n_aps, -100.0)
        np.testing.assert_array_equal(
            local_session.localize(hot), local_session.localize(clipped)
        )

    def test_sequential_framework_supported(self, tiny_suite):
        spec = LocalizerSpec(framework="GIFT", suite_name=tiny_suite.name, fast=True)
        with LocalizationSession.local(spec, tiny_suite) as session:
            coords = session.localize_batch(tiny_suite.test_epochs[0].rssi[:4])
            assert coords.shape == (4, 2)


class TestRemoteBackend:
    def test_stats_carry_server_health(self, remote_session):
        stats = remote_session.stats()
        assert stats["backend"] == "remote"
        assert stats["status"] == "ok"
        assert stats["api_version"] >= 1

    def test_factory_validation(self):
        with pytest.raises(ValueError, match="url or a client"):
            LocalizationSession.remote()


class TestLocalRemoteBitIdentity:
    """The acceptance property: backends answer bit-identically."""

    def test_single_scan(self, local_session, remote_session, query_rows):
        np.testing.assert_array_equal(
            local_session.localize(query_rows[0]),
            remote_session.localize(query_rows[0]),
        )

    def test_batch(self, local_session, remote_session, query_rows):
        rows = query_rows[:24]
        np.testing.assert_array_equal(
            local_session.localize_batch(rows),
            remote_session.localize_batch(rows),
        )

    def test_out_of_band_scans(self, local_session, remote_session, tiny_suite):
        hot = np.full((3, tiny_suite.n_aps), -104.0)
        np.testing.assert_array_equal(
            local_session.localize_batch(hot),
            remote_session.localize_batch(hot),
        )
