"""Spec round-trip, canonicalization and fingerprint-subsumption tests.

The load-bearing property is *subsumption*: the new spec surface must
address exactly the artifacts the legacy plumbing addressed —
``IndexSpec.fingerprint() == IndexConfig.tag()``,
``LocalizerSpec.model_key(suite) == ModelStore.key_for(...)`` and
``LocalizerSpec.task_key(...) == EvalTask.cache_key(...)`` — so caches
and model stores written before `repro.api` existed keep hitting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import FleetSpec, IndexSpec, LocalizerSpec, ServeSpec, engine_index
from repro.baselines.registry import ALL_FRAMEWORKS
from repro.index import INDEX_KINDS, IndexConfig

index_specs = st.builds(
    IndexSpec,
    kind=st.sampled_from(INDEX_KINDS),
    n_shards=st.integers(min_value=1, max_value=64),
    n_probe=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)

localizer_specs = st.builds(
    LocalizerSpec,
    framework=st.sampled_from(("STONE", "KNN", "LT-KNN")),
    suite_name=st.one_of(st.none(), st.sampled_from(("office", "basement", "uji"))),
    fast=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.one_of(st.none(), index_specs),
)


class TestIndexSpec:
    @given(spec=index_specs)
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, spec):
        assert IndexSpec.from_dict(spec.to_dict()) == spec

    @given(spec=index_specs)
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_is_the_legacy_tag(self, spec):
        assert spec.fingerprint() == spec.to_config().tag()

    def test_from_config_round_trip(self):
        config = IndexConfig(kind="kmeans", n_shards=8, n_probe=2, seed=3)
        assert IndexSpec.from_config(config).to_config() == config
        assert IndexSpec.from_config(None) is None

    def test_validation_delegates_to_index_config(self):
        with pytest.raises(ValueError):
            IndexSpec(kind="voronoi")
        with pytest.raises(ValueError):
            IndexSpec(n_shards=0)

    def test_engine_index_normalizes_exhaustive_to_none(self):
        assert engine_index(None) is None
        assert engine_index(IndexSpec()) is None
        sharded = IndexSpec(kind="region", n_shards=4)
        assert engine_index(sharded) == sharded.to_config()


class TestLocalizerSpec:
    @given(spec=localizer_specs)
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, spec):
        clone = LocalizerSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_aliases_canonicalize(self):
        assert LocalizerSpec(framework="ltknn").framework == "LT-KNN"
        assert (
            LocalizerSpec(framework="ltknn").fingerprint()
            == LocalizerSpec(framework="LT-KNN").fingerprint()
        )

    def test_unknown_framework_rejected(self):
        with pytest.raises(KeyError):
            LocalizerSpec(framework="DeepMagic")

    def test_exhaustive_index_equals_no_index(self):
        bare = LocalizerSpec(framework="KNN")
        explicit = LocalizerSpec(framework="KNN", index=IndexSpec())
        assert bare.fingerprint() == explicit.fingerprint()
        assert bare.index_tag == explicit.index_tag == "exhaustive"

    def test_sharded_index_changes_fingerprint(self):
        bare = LocalizerSpec(framework="KNN")
        sharded = LocalizerSpec(
            framework="KNN", index=IndexSpec(kind="region", n_shards=4)
        )
        assert bare.fingerprint() != sharded.fingerprint()

    def test_index_on_unshardable_framework_rejected_at_construction(self):
        with pytest.raises(ValueError, match="no reference radio map"):
            LocalizerSpec(framework="GIFT", index=IndexSpec(kind="kmeans"))
        # Exhaustive is not sharding; it stays allowed.
        LocalizerSpec(framework="GIFT", index=IndexSpec())

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            LocalizerSpec.from_dict({"framework": "KNN", "epochs": 3})

    @pytest.mark.parametrize("name", ALL_FRAMEWORKS)
    def test_build_constructs_every_framework(self, name):
        localizer = LocalizerSpec(framework=name, fast=True).build()
        assert localizer.name == name


class TestFingerprintSubsumption:
    """Spec-addressed artifacts == legacy-addressed artifacts."""

    def test_model_key_matches_model_store(self, tiny_suite):
        from repro.serve import ModelStore

        store = ModelStore()
        for index in (None, IndexSpec(kind="region", n_shards=4)):
            spec = LocalizerSpec(
                framework="KNN", suite_name=tiny_suite.name,
                fast=True, seed=3, index=index,
            )
            legacy = store.key_for(
                "KNN", tiny_suite, seed=3, fast=True,
                index=engine_index(index),
            )
            assert spec.model_key(tiny_suite) == legacy
            assert spec.model_key(tiny_suite).digest == legacy.digest

    def test_spec_fit_hits_legacy_persisted_artifact(self, tiny_suite, tmp_path):
        """A model persisted pre-spec warm-loads through the spec path."""
        from repro.serve import ModelStore

        legacy_store = ModelStore(tmp_path)
        legacy_store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert legacy_store.fits == 1

        from repro.api import LocalizationSession

        spec = LocalizerSpec(framework="KNN", suite_name=tiny_suite.name, fast=True)
        session = LocalizationSession.local(spec, tiny_suite, model_dir=tmp_path)
        assert session.entry.source == "disk"  # loaded, not refitted
        assert session.store.fits == 0

    def test_task_key_matches_eval_task(self, tiny_suite):
        from repro.eval.engine import EvalTask, suite_fingerprint

        suite_hash = suite_fingerprint(tiny_suite)
        index = IndexConfig(kind="kmeans", n_shards=4, n_probe=2)
        task = EvalTask(
            framework="KNN", suite_name=tiny_suite.name,
            seed=5, seed_index=2, fast=True, index=index,
        )
        spec_key = task.spec().task_key(suite_hash, seed_index=2)
        assert spec_key == task.cache_key(suite_hash)

    def test_eval_task_spec_round_trip(self):
        from repro.eval.engine import EvalTask

        task = EvalTask(
            framework="ltknn", suite_name="office",
            seed=1, seed_index=0, fast=True,
        )
        spec = task.spec()
        assert spec.framework == "LT-KNN"
        assert spec.suite_name == "office"
        assert spec.index is None


class TestServeSpec:
    def test_dict_round_trip(self):
        spec = ServeSpec(
            localizer=LocalizerSpec(framework="KNN", suite_name="office"),
            port=9000,
            batch_window_ms=1.5,
            chunk_size=128,
        )
        assert ServeSpec.from_dict(spec.to_dict()) == spec
        assert ServeSpec.from_dict(spec.to_dict()).fingerprint() == spec.fingerprint()

    def test_validation(self):
        knn = LocalizerSpec(framework="KNN")
        with pytest.raises(ValueError):
            ServeSpec(localizer=knn, batch_window_ms=-1)
        with pytest.raises(ValueError):
            ServeSpec(localizer=knn, max_batch=0)
        with pytest.raises(ValueError):
            ServeSpec(localizer=knn, chunk_size=0)

    def test_build_serves_a_warm_entry(self, tiny_suite):
        spec = ServeSpec(
            localizer=LocalizerSpec(framework="KNN", fast=True), port=0
        )
        server = spec.build(tiny_suite)
        assert server.entry.key.framework == "KNN"
        assert server.store.fits == 1
        server.dispatcher.close()

    def test_obs_knobs_only_fingerprint_when_set(self):
        knn = LocalizerSpec(framework="KNN", suite_name="office")
        plain = ServeSpec(localizer=knn)
        # Defaults must keep pre-obs fingerprints stable.
        assert plain.fingerprint() == ServeSpec(
            localizer=knn, log_json=False, slow_ms=None
        ).fingerprint()
        assert ServeSpec(localizer=knn, log_json=True).fingerprint() != (
            plain.fingerprint()
        )
        assert ServeSpec(localizer=knn, slow_ms=5.0).fingerprint() != (
            plain.fingerprint()
        )
        with pytest.raises(ValueError):
            ServeSpec(localizer=knn, slow_ms=-1.0)


class TestFleetSpec:
    def test_string_round_trip(self):
        spec = FleetSpec.from_string("HQ:2,LAB:3:kmeans", fast=True)
        assert spec.buildings_string == "HQ:2,LAB:3:kmeans"
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_with_index(self):
        spec = FleetSpec.from_string(
            "HQ:2", index=IndexSpec(kind="region", n_shards=4), months=2
        )
        clone = FleetSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_alias_framework_canonicalizes(self):
        assert FleetSpec.from_string("HQ:2", framework="ltknn").framework == "LT-KNN"

    def test_empty_buildings_rejected(self):
        with pytest.raises(ValueError, match="at least one building"):
            FleetSpec(buildings=())

    def test_buildings_as_dicts_accepted(self):
        spec = FleetSpec.from_dict(
            {"buildings": [{"name": "HQ", "n_floors": 2}]}
        )
        assert spec.buildings_string == "HQ:2"

    def test_obs_knobs_only_fingerprint_when_set(self):
        plain = FleetSpec.from_string("HQ:2")
        assert plain.fingerprint() == FleetSpec.from_string(
            "HQ:2", log_json=False, slow_ms=None
        ).fingerprint()
        assert FleetSpec.from_string("HQ:2", log_json=True).fingerprint() != (
            plain.fingerprint()
        )
        clone = FleetSpec.from_dict(
            FleetSpec.from_string("HQ:2", slow_ms=2.5).to_dict()
        )
        assert clone.slow_ms == 2.5
        assert clone.fingerprint() != plain.fingerprint()
