"""Tests for repro.geometry.point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    as_point,
    as_points,
    centroid,
    distances_to,
    euclidean,
    interpolate_path,
    pairwise_distances,
    path_length,
)

coord = st.floats(-100, 100, allow_nan=False, width=64)


class TestCoercion:
    def test_as_point_from_list(self):
        np.testing.assert_array_equal(as_point([1.0, 2.0]), [1.0, 2.0])

    def test_as_point_rejects_3d(self):
        with pytest.raises(ValueError):
            as_point([1.0, 2.0, 3.0])

    def test_as_points_promotes_single(self):
        assert as_points([1.0, 2.0]).shape == (1, 2)

    def test_as_points_rejects_bad_width(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((3, 3)))


class TestDistances:
    def test_euclidean_345(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    @given(st.tuples(coord, coord), st.tuples(coord, coord))
    @settings(max_examples=50, deadline=None)
    def test_property_symmetry(self, a, b):
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(
        st.tuples(coord, coord),
        st.tuples(coord, coord),
        st.tuples(coord, coord),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9

    def test_pairwise_shape_and_values(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        d = pairwise_distances(a, b)
        assert d.shape == (2, 1)
        assert d[0, 0] == pytest.approx(1.0)
        assert d[1, 0] == pytest.approx(np.sqrt(2))

    def test_distances_to(self):
        d = distances_to([0, 0], [[3, 4], [6, 8]])
        np.testing.assert_allclose(d, [5.0, 10.0])

    def test_centroid(self):
        c = centroid([[0, 0], [2, 0], [1, 3]])
        np.testing.assert_allclose(c, [1.0, 1.0])


class TestPaths:
    def test_path_length_l_shape(self):
        assert path_length([[0, 0], [3, 0], [3, 4]]) == pytest.approx(7.0)

    def test_path_length_single_point(self):
        assert path_length([[1, 1]]) == 0.0

    def test_interpolate_spacing(self):
        pts = interpolate_path([[0, 0], [10, 0]], spacing=1.0)
        assert pts.shape == (11, 2)
        np.testing.assert_allclose(np.diff(pts[:, 0]), 1.0)

    def test_interpolate_covers_corner(self):
        pts = interpolate_path([[0, 0], [2, 0], [2, 2]], spacing=1.0)
        assert pts.shape[0] == 5
        np.testing.assert_allclose(pts[2], [2.0, 0.0])
        np.testing.assert_allclose(pts[-1], [2.0, 2.0])

    def test_interpolate_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError):
            interpolate_path([[0, 0], [1, 0]], spacing=0.0)

    @given(st.floats(0.3, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_property_consecutive_spacing_constant(self, spacing):
        pts = interpolate_path([[0, 0], [7.3, 0], [7.3, 5.1]], spacing)
        gaps = np.sqrt((np.diff(pts, axis=0) ** 2).sum(axis=1))
        # all gaps equal the requested spacing (the polyline is unbent
        # except at the corner, where the gap can only shrink)
        assert (gaps <= spacing + 1e-9).all()
        assert (gaps[:-1] >= spacing * 0.5).all()
