"""Tests for walls, floorplans and the parametric builders."""

import numpy as np
import pytest

from repro.geometry import (
    MATERIAL_LOSS_DB,
    Floorplan,
    Wall,
    WallSet,
    build_basement_path,
    build_corridor_floorplan,
    build_grid_floorplan,
    build_office_path,
    build_uji_library_floor,
    count_wall_crossings,
    segments_intersect,
    wall_attenuation_db,
)


class TestSegmentIntersection:
    def test_crossing_segments(self):
        assert segments_intersect([0, 0], [2, 2], [0, 2], [2, 0])

    def test_parallel_segments(self):
        assert not segments_intersect([0, 0], [1, 0], [0, 1], [1, 1])

    def test_disjoint_collinear(self):
        assert not segments_intersect([0, 0], [1, 0], [2, 0], [3, 0])

    def test_touching_endpoint(self):
        assert segments_intersect([0, 0], [1, 1], [1, 1], [2, 0])

    def test_t_junction(self):
        assert segments_intersect([0, 0], [2, 0], [1, -1], [1, 0])


class TestWalls:
    def test_material_validation(self):
        with pytest.raises(ValueError, match="unknown material"):
            Wall((0, 0), (1, 0), "adamantium")

    def test_degenerate_wall_rejected(self):
        with pytest.raises(ValueError):
            Wall((1, 1), (1, 1))

    def test_loss_lookup(self):
        assert Wall((0, 0), (1, 0), "metal").loss_db == MATERIAL_LOSS_DB["metal"]

    def test_wall_length(self):
        assert Wall((0, 0), (3, 4)).length == pytest.approx(5.0)

    def test_crossing_count(self):
        walls = [
            Wall((1, -1), (1, 1), "drywall"),
            Wall((2, -1), (2, 1), "concrete"),
            Wall((5, -1), (5, 1), "metal"),  # beyond the ray
        ]
        assert count_wall_crossings([0, 0], [3, 0], walls) == 2

    def test_attenuation_sums_crossed_losses(self):
        walls = [
            Wall((1, -1), (1, 1), "drywall"),
            Wall((2, -1), (2, 1), "concrete"),
        ]
        expected = MATERIAL_LOSS_DB["drywall"] + MATERIAL_LOSS_DB["concrete"]
        assert wall_attenuation_db([0, 0], [3, 0], walls) == pytest.approx(expected)

    def test_wallset_cache_consistency(self):
        ws = WallSet([Wall((1, -1), (1, 1), "brick")])
        first = ws.attenuation_db([0, 0], [2, 0])
        second = ws.attenuation_db([0, 0], [2, 0])  # cached path
        assert first == second == MATERIAL_LOSS_DB["brick"]

    def test_wallset_cache_invalidation_on_add(self):
        ws = WallSet([])
        assert ws.attenuation_db([0, 0], [2, 0]) == 0.0
        ws.add(Wall((1, -1), (1, 1), "metal"))
        assert ws.attenuation_db([0, 0], [2, 0]) == MATERIAL_LOSS_DB["metal"]


class TestFloorplan:
    def _fp(self):
        rps = np.array([[1.0, 1.0], [3.0, 1.0], [1.0, 3.0]])
        return Floorplan("t", 5.0, 5.0, rps)

    def test_out_of_bounds_rp_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Floorplan("bad", 2.0, 2.0, np.array([[3.0, 1.0]]))

    def test_empty_rps_rejected(self):
        with pytest.raises(ValueError):
            Floorplan("bad", 2.0, 2.0, np.zeros((0, 2)))

    def test_distance_matrix_symmetric_zero_diag(self):
        fp = self._fp()
        d = fp.rp_distance_matrix()
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)
        assert d[0, 1] == pytest.approx(2.0)

    def test_nearest_rp(self):
        fp = self._fp()
        assert fp.nearest_rp([2.8, 1.2]) == 1

    def test_neighbors_within(self):
        fp = self._fp()
        near = fp.neighbors_within(0, 2.1)
        assert set(near.tolist()) == {1, 2}
        assert fp.neighbors_within(0, 1.0).size == 0

    def test_describe_mentions_counts(self):
        text = self._fp().describe()
        assert "3 RPs" in text


class TestBuilders:
    def test_grid_floorplan_layout(self):
        fp = build_grid_floorplan(width=10, height=8, rp_spacing=2.0, margin=1.0)
        assert fp.n_reference_points == 5 * 4
        assert fp.rp_spacing == 2.0

    def test_grid_margin_validation(self):
        with pytest.raises(ValueError):
            build_grid_floorplan(width=4, height=4, margin=2.0)

    def test_office_path_is_48m(self):
        fp = build_office_path()
        # RPs every 1 m along a 48 m path -> 49 RPs.
        assert fp.n_reference_points == 49
        assert fp.name == "office"

    def test_basement_path_is_61m(self):
        fp = build_basement_path()
        assert fp.n_reference_points == 62

    def test_rp_spacing_along_paths(self):
        for fp in (build_office_path(), build_basement_path()):
            d = fp.rp_distance_matrix()
            # consecutive RPs along the polyline are <= 1 m apart
            consecutive = np.array([d[i, i + 1] for i in range(fp.n_reference_points - 1)])
            assert consecutive.max() <= 1.0 + 1e-9

    def test_uji_floor_is_open_grid(self):
        fp = build_uji_library_floor()
        assert fp.n_reference_points > 40
        # open hall: far fewer walls than the corridors relative to area
        office = build_office_path()
        assert len(fp.walls) < len(office.walls)

    def test_corridor_walls_flank_path(self):
        waypoints = np.array([[2.0, 2.0], [10.0, 2.0]])
        fp = build_corridor_floorplan(
            "c", waypoints, width=14, height=8, corridor_halfwidth=1.0
        )
        # A ray from the corridor center to beyond the side walls crosses them.
        atten = fp.attenuation_db([6.0, 2.0], [6.0, 7.5])
        assert atten > 0

    def test_custom_rp_spacing(self):
        fp = build_office_path(rp_spacing=2.0)
        assert fp.n_reference_points == 25
