"""Partitioner unit tests: shard structure, boundaries, degeneracies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import build_grid_floorplan
from repro.index import (
    IndexConfig,
    build_index,
    kmeans_partition,
    region_partition,
)
from repro.index.sharded import ExhaustiveIndex, ShardedRadioMap


def _assert_partition(shards, n_rows):
    """Every row in exactly one shard; each shard sorted and non-empty."""
    all_rows = np.concatenate(shards) if shards else np.array([], dtype=np.int64)
    assert np.array_equal(np.sort(all_rows), np.arange(n_rows))
    for rows in shards:
        assert rows.size > 0
        assert np.array_equal(rows, np.sort(rows))


class TestRegionPartition:
    def test_partitions_every_row_exactly_once(self):
        rng = np.random.default_rng(0)
        locations = rng.uniform((0, 0), (40, 30), size=(200, 2))
        shards = region_partition(locations, 12)
        _assert_partition(shards, 200)
        assert 1 < len(shards) <= 12

    def test_uses_floorplan_bounds(self):
        fp = build_grid_floorplan("t", width=20.0, height=10.0, rp_spacing=2.0)
        # All points huddle in one corner of the floorplan: with
        # floorplan bounds they land in few cells; with bbox bounds the
        # same points spread over the whole grid.
        rng = np.random.default_rng(1)
        locations = rng.uniform((0, 0), (2.0, 1.0), size=(120, 2))
        with_fp = region_partition(locations, 16, floorplan=fp)
        without_fp = region_partition(locations, 16)
        assert len(with_fp) < len(without_fp)
        _assert_partition(with_fp, 120)
        _assert_partition(without_fp, 120)

    def test_boundary_points_assigned_exactly_once(self):
        # Points exactly on interior cell edges and on the outer
        # boundary of the space (the clamp path).
        locations = np.array(
            [[0.0, 0.0], [5.0, 5.0], [10.0, 10.0], [5.0, 0.0], [0.0, 5.0],
             [10.0, 0.0], [0.0, 10.0], [2.5, 2.5], [7.5, 7.5]]
        )
        shards = region_partition(locations, 4)
        _assert_partition(shards, locations.shape[0])

    def test_empty_input(self):
        assert region_partition(np.empty((0, 2)), 4) == []

    def test_singleton_shards_are_legal(self):
        # Fewer points than requested shards: every non-empty cell is a
        # singleton, empty cells are dropped.
        locations = np.array([[0.5, 0.5], [9.5, 9.5]])
        shards = region_partition(locations, 16)
        _assert_partition(shards, 2)
        assert all(rows.size == 1 for rows in shards)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            region_partition(np.zeros((3, 3)), 4)
        with pytest.raises(ValueError):
            region_partition(np.zeros((3, 2)), 0)


class TestKMeansPartition:
    def test_partitions_every_row_exactly_once(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(150, 16))
        shards = kmeans_partition(vectors, 8, seed=0)
        _assert_partition(shards, 150)
        assert 1 < len(shards) <= 8

    def test_deterministic_for_fixed_seed(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(80, 8))
        a = kmeans_partition(vectors, 6, seed=5)
        b = kmeans_partition(vectors, 6, seed=5)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra, rb)

    def test_separated_clusters_recovered(self):
        # Two far-apart blobs must not share a shard.
        rng = np.random.default_rng(4)
        blob_a = rng.normal(0.0, 0.1, size=(30, 4))
        blob_b = rng.normal(50.0, 0.1, size=(30, 4))
        vectors = np.vstack([blob_a, blob_b])
        shards = kmeans_partition(vectors, 2, seed=0)
        assert len(shards) == 2
        for rows in shards:
            assert set(rows) <= set(range(30)) or set(rows) <= set(range(30, 60))

    def test_identical_points_collapse_without_error(self):
        vectors = np.ones((20, 5))
        shards = kmeans_partition(vectors, 4, seed=0)
        _assert_partition(shards, 20)

    def test_empty_input(self):
        assert kmeans_partition(np.empty((0, 8)), 4) == []


class TestBuildIndex:
    def test_exhaustive_config_builds_exhaustive_index(self):
        vectors = np.random.default_rng(0).normal(size=(30, 4))
        locations = np.zeros((30, 2))
        idx = build_index(None, vectors, locations)
        assert isinstance(idx, ExhaustiveIndex)
        idx = build_index(IndexConfig(), vectors, locations)
        assert isinstance(idx, ExhaustiveIndex)
        assert np.array_equal(idx.rows_for([0]), np.arange(30))

    def test_degenerate_partition_falls_back_to_exhaustive(self):
        # All reference points identical: one cluster -> exhaustive.
        vectors = np.ones((10, 4))
        locations = np.ones((10, 2))
        cfg = IndexConfig(kind="kmeans", n_shards=4, n_probe=1)
        assert isinstance(build_index(cfg, vectors, locations), ExhaustiveIndex)

    def test_sharded_index_probe_shapes_and_bounds(self):
        rng = np.random.default_rng(5)
        vectors = rng.normal(size=(100, 8))
        locations = rng.uniform(size=(100, 2)) * 20
        cfg = IndexConfig(kind="kmeans", n_shards=8, n_probe=3)
        idx = build_index(cfg, vectors, locations)
        assert isinstance(idx, ShardedRadioMap)
        probed = idx.probe(vectors[:7])
        assert probed.shape == (7, 3)
        assert (probed >= 0).all() and (probed < idx.n_shards).all()
        # rows ascend within each probe row (canonical grouping key)
        assert (np.diff(probed, axis=1) > 0).all()
        primary = idx.primary_shard(vectors[:7])
        # the nearest shard is always among the probed ones
        assert all(primary[i] in probed[i] for i in range(7))

    def test_rows_for_full_coverage_is_identity_order(self):
        rng = np.random.default_rng(6)
        vectors = rng.normal(size=(50, 4))
        cfg = IndexConfig(kind="kmeans", n_shards=5, n_probe=5)
        idx = build_index(cfg, vectors, rng.uniform(size=(50, 2)))
        assert np.array_equal(
            idx.rows_for(range(idx.n_shards)), np.arange(50)
        )

    def test_describe_reports_shard_stats(self):
        rng = np.random.default_rng(7)
        vectors = rng.normal(size=(60, 8))
        cfg = IndexConfig(kind="kmeans", n_shards=6, n_probe=2)
        idx = build_index(cfg, vectors, rng.uniform(size=(60, 2)))
        desc = idx.describe()
        assert desc["kind"] == "kmeans"
        assert desc["n_rows"] == 60
        assert desc["rows_per_shard"]["min"] >= 1


class TestIndexConfig:
    def test_tags_are_canonical(self):
        assert IndexConfig().tag() == "exhaustive"
        assert (
            IndexConfig(kind="kmeans", n_shards=8, n_probe=2, seed=3).tag()
            == "kmeans:s8:p2:r3"
        )

    def test_tags_normalize_behavioral_equivalence(self):
        # The region partitioner never reads the seed, so region tags
        # omit it: different seeds address the same artifact.
        assert (
            IndexConfig(kind="region", n_shards=8, n_probe=2, seed=0).tag()
            == IndexConfig(kind="region", n_shards=8, n_probe=2, seed=9).tag()
            == "region:s8:p2"
        )
        # n_probe is clamped to n_shards by the index, so over-probing
        # configs share the full-probe tag.
        assert (
            IndexConfig(kind="kmeans", n_shards=8, n_probe=8).tag()
            == IndexConfig(kind="kmeans", n_shards=8, n_probe=32).tag()
            == "kmeans:s8:p8:r0"
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexConfig(kind="nope")
        with pytest.raises(ValueError):
            IndexConfig(kind="kmeans", n_shards=0)
        with pytest.raises(ValueError):
            IndexConfig(kind="kmeans", n_probe=0)
