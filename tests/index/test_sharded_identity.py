"""Bit-identity and accuracy properties of the sharded KNN path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import KNNLocalizer, LTKNNLocalizer
from repro.core.knn_head import KNNHead
from repro.index import IndexConfig


def _random_reference(rng, n_rows, n_dims):
    vectors = rng.uniform(-90.0, -30.0, size=(n_rows, n_dims))
    locations = rng.uniform(0.0, 50.0, size=(n_rows, 2))
    rp_indices = rng.integers(0, max(2, n_rows // 3), size=n_rows)
    return vectors, rp_indices, locations


class TestFullProbeBitIdentity:
    """n_probe >= n_shards must equal exhaustive search bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        n_rows=st.integers(min_value=5, max_value=120),
        n_dims=st.integers(min_value=2, max_value=24),
        k=st.integers(min_value=1, max_value=6),
        n_shards=st.integers(min_value=2, max_value=12),
        kind=st.sampled_from(["region", "kmeans"]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_full_probe_equals_exhaustive(
        self, n_rows, n_dims, k, n_shards, kind, seed
    ):
        rng = np.random.default_rng(seed)
        vectors, rp_indices, locations = _random_reference(rng, n_rows, n_dims)
        queries = rng.uniform(-95.0, -25.0, size=(17, n_dims))

        plain = KNNHead(k=k).fit(vectors, rp_indices, locations)
        sharded = KNNHead(
            k=k,
            index=IndexConfig(
                kind=kind, n_shards=n_shards, n_probe=n_shards, seed=seed
            ),
        ).fit(vectors, rp_indices, locations)

        dist_a, idx_a = plain.kneighbors(queries)
        dist_b, idx_b = sharded.kneighbors(queries)
        assert np.array_equal(idx_a, idx_b)
        assert np.array_equal(dist_a, dist_b)
        assert np.array_equal(
            plain.predict_location(queries), sharded.predict_location(queries)
        )
        assert np.array_equal(
            plain.predict_rp(queries), sharded.predict_rp(queries)
        )

    def test_partial_probe_never_returns_short_neighbour_lists(self):
        # Tiny shards + k larger than any single shard: the per-group
        # fallback must widen to the full reference set, not truncate.
        rng = np.random.default_rng(0)
        vectors, rp_indices, locations = _random_reference(rng, 30, 8)
        head = KNNHead(
            k=10, index=IndexConfig(kind="kmeans", n_shards=15, n_probe=1)
        ).fit(vectors, rp_indices, locations)
        dist, idx = head.kneighbors(vectors[:9])
        assert idx.shape == (9, 10)
        assert len(set(map(tuple, idx))) >= 1  # well-formed rows
        assert (dist >= 0).all()

    def test_partial_probe_is_deterministic(self):
        rng = np.random.default_rng(1)
        vectors, rp_indices, locations = _random_reference(rng, 90, 12)
        queries = rng.uniform(-95.0, -25.0, size=(40, 12))
        cfg = IndexConfig(kind="kmeans", n_shards=9, n_probe=2, seed=4)
        a = KNNHead(k=3, index=cfg).fit(vectors, rp_indices, locations)
        b = KNNHead(k=3, index=cfg).fit(vectors, rp_indices, locations)
        assert np.array_equal(
            a.predict_location(queries), b.predict_location(queries)
        )

    def test_chunked_sharded_search_matches_unchunked(self):
        # The in-group chunking is a memory bound, never a value change.
        rng = np.random.default_rng(2)
        vectors, rp_indices, locations = _random_reference(rng, 100, 10)
        queries = rng.uniform(-95.0, -25.0, size=(64, 10))
        cfg = IndexConfig(kind="region", n_shards=6, n_probe=2)
        whole = KNNHead(k=3, index=cfg).fit(vectors, rp_indices, locations)
        chunked = KNNHead(k=3, chunk_size=7, index=cfg).fit(
            vectors, rp_indices, locations
        )
        assert np.array_equal(
            whole.predict_location(queries), chunked.predict_location(queries)
        )


class TestLocalizerIntegration:
    @pytest.mark.parametrize("cls", [KNNLocalizer, LTKNNLocalizer])
    def test_full_probe_localizer_matches_unsharded(self, cls, tiny_suite):
        rng = np.random.default_rng(0)
        queries = np.vstack([ds.rssi for ds in tiny_suite.test_epochs])[:80]
        plain = cls().fit(tiny_suite.train, tiny_suite.floorplan, rng=rng)
        sharded = cls(
            index=IndexConfig(kind="region", n_shards=8, n_probe=8)
        ).fit(tiny_suite.train, tiny_suite.floorplan, rng=rng)
        assert np.array_equal(plain.predict(queries), sharded.predict(queries))

    def test_partial_probe_error_stays_close(self, tiny_suite):
        # Sharding trades a bounded amount of accuracy; on the tiny
        # suite the mean error shift must stay small (< 10 cm).
        from repro.eval import evaluate_localizer

        plain = evaluate_localizer(
            KNNLocalizer(), tiny_suite, rng=np.random.default_rng(0)
        )
        sharded = evaluate_localizer(
            KNNLocalizer(index=IndexConfig(kind="kmeans", n_shards=8, n_probe=2)),
            tiny_suite,
            rng=np.random.default_rng(0),
        )
        assert abs(sharded.overall_mean() - plain.overall_mean()) < 0.1

    def test_shard_routes_cover_batch(self, tiny_suite):
        loc = KNNLocalizer(
            index=IndexConfig(kind="kmeans", n_shards=6, n_probe=2)
        ).fit(tiny_suite.train, tiny_suite.floorplan)
        queries = tiny_suite.test_epochs[0].rssi[:25]
        routes = loc.shard_routes(queries)
        desc = loc.index_describe()
        assert routes is not None and routes.shape == (25,)
        assert (routes >= 0).all() and (routes < desc["n_shards"]).all()

    def test_unsharded_localizer_routes_none(self, tiny_suite):
        loc = KNNLocalizer().fit(tiny_suite.train, tiny_suite.floorplan)
        assert loc.shard_routes(tiny_suite.test_epochs[0].rssi[:4]) is None
        assert loc.index_describe()["kind"] == "exhaustive"
