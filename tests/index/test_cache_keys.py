"""Artifact identity must include the index configuration (schema v2).

The regression these tests pin: before the v2 schema bump, a sharded
fit and an exhaustive fit of the same suite would have hashed to the
same ResultCache/ModelStore key — a warm cache could then silently
serve approximate (probed) results to an exhaustive request, or vice
versa.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import compare_frameworks
from repro.eval.engine import (
    CACHE_SCHEMA_VERSION,
    EvalTask,
    suite_fingerprint,
    task_fingerprint,
)
from repro.index import IndexConfig
from repro.serve import ModelStore
from repro.serve.store import STORE_SCHEMA_VERSION


@pytest.fixture(scope="module")
def sharded_config():
    return IndexConfig(kind="kmeans", n_shards=8, n_probe=2)


class TestSchemaTags:
    def test_schema_versions_bumped_for_index_keys(self):
        assert CACHE_SCHEMA_VERSION >= 2
        assert STORE_SCHEMA_VERSION >= 2

    def test_task_fingerprint_separates_index_configs(self, sharded_config):
        base = task_fingerprint("KNN", "datahash", seed=0, fast=True)
        sharded = task_fingerprint(
            "KNN", "datahash", seed=0, fast=True, index=sharded_config
        )
        assert base != sharded
        # None and the explicit exhaustive config address the same artifact.
        assert base == task_fingerprint(
            "KNN", "datahash", seed=0, fast=True, index=IndexConfig()
        )
        # Probe count changes values, so it changes the key.
        assert sharded != task_fingerprint(
            "KNN", "datahash", seed=0, fast=True,
            index=IndexConfig(kind="kmeans", n_shards=8, n_probe=4),
        )


class TestResultCacheKeys:
    def test_eval_task_keys_never_collide(self, tiny_suite, sharded_config):
        suite_hash = suite_fingerprint(tiny_suite)
        kwargs = dict(
            framework="KNN", suite_name=tiny_suite.name,
            seed=0, seed_index=0, fast=True,
        )
        exhaustive = EvalTask(**kwargs)
        sharded = EvalTask(**kwargs, index=sharded_config)
        assert exhaustive.cache_key(suite_hash) != sharded.cache_key(suite_hash)

    def test_sharded_run_does_not_poison_exhaustive_cache(
        self, tiny_suite, sharded_config, tmp_path
    ):
        # Warm the cache with a sharded (approximate) trace, then ask
        # for the exhaustive one: it must be recomputed, not served
        # from the sharded entry.
        sharded = compare_frameworks(
            tiny_suite, ["KNN"], fast=True,
            cache_dir=tmp_path, index=sharded_config,
        ).results["KNN"]
        exhaustive = compare_frameworks(
            tiny_suite, ["KNN"], fast=True, cache_dir=tmp_path
        ).results["KNN"]
        uncached = compare_frameworks(
            tiny_suite, ["KNN"], fast=True
        ).results["KNN"]
        assert np.array_equal(exhaustive.mean_errors(), uncached.mean_errors())
        # ...and the sharded trace itself differs somewhere (probing is
        # approximate on this suite) or at minimum was cached separately.
        assert len(list(tmp_path.glob("*.pkl"))) == 2
        del sharded


class TestModelStoreKeys:
    def test_sharded_and_exhaustive_fits_never_collide(
        self, tiny_suite, sharded_config, tmp_path
    ):
        store = ModelStore(tmp_path)
        plain = store.get_or_fit("KNN", tiny_suite, fast=True)
        sharded = store.get_or_fit(
            "KNN", tiny_suite, fast=True, index=sharded_config
        )
        assert plain.key.digest != sharded.key.digest
        assert store.fits == 2
        assert plain.localizer is not sharded.localizer
        # Both persisted side by side...
        assert len(list(tmp_path.glob("*.pkl"))) == 2
        # ...and each warm-loads back under its own key only.
        fresh = ModelStore(tmp_path)
        again = fresh.get_or_fit(
            "KNN", tiny_suite, fast=True, index=sharded_config
        )
        assert again.source == "disk"
        assert again.localizer.index_describe()["kind"] == "kmeans"
        plain_again = fresh.get_or_fit("KNN", tiny_suite, fast=True)
        assert plain_again.source == "disk"
        assert plain_again.localizer.index_describe()["kind"] == "exhaustive"

    def test_explicit_exhaustive_config_shares_the_unsharded_key(
        self, tiny_suite
    ):
        store = ModelStore()
        a = store.get_or_fit("KNN", tiny_suite, fast=True)
        b = store.get_or_fit("KNN", tiny_suite, fast=True, index=IndexConfig())
        assert a.key.digest == b.key.digest
        assert store.fits == 1

    def test_describe_surfaces_shard_stats(self, tiny_suite, sharded_config):
        store = ModelStore()
        entry = store.get_or_fit(
            "KNN", tiny_suite, fast=True, index=sharded_config
        )
        info = entry.describe()["index"]
        assert info["kind"] == "kmeans"
        assert info["n_probe"] == 2
        assert info["rows_per_shard"]["min"] >= 1
