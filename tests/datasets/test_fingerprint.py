"""Tests for fingerprint containers, IO, and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    FingerprintDataset,
    LongitudinalSuite,
    ap_churn_fraction,
    compute_stats,
    dataset_from_csv,
    dataset_to_csv,
    observed_visibility_matrix,
    suite_summary_table,
)

from ..conftest import make_synthetic_dataset


def _ds(n=12, aps=6, seed=0):
    rng = np.random.default_rng(seed)
    return FingerprintDataset(
        rssi=rng.uniform(-100, 0, size=(n, aps)),
        rp_indices=np.arange(n) % 4,
        locations=rng.uniform(0, 10, size=(n, 2)),
        times_hours=np.linspace(0, 5, n),
        epochs=np.arange(n) % 3,
    )


class TestValidation:
    def test_accepts_valid(self):
        ds = _ds()
        assert ds.n_samples == 12
        assert ds.n_aps == 6

    def test_rejects_positive_rssi(self):
        with pytest.raises(ValueError):
            FingerprintDataset(
                rssi=np.array([[5.0]]),
                rp_indices=np.array([0]),
                locations=np.array([[0.0, 0.0]]),
                times_hours=np.array([0.0]),
                epochs=np.array([0]),
            )

    def test_rejects_below_floor(self):
        with pytest.raises(ValueError):
            FingerprintDataset(
                rssi=np.array([[-150.0]]),
                rp_indices=np.array([0]),
                locations=np.array([[0.0, 0.0]]),
                times_hours=np.array([0.0]),
                epochs=np.array([0]),
            )

    def test_rejects_misaligned_rows(self):
        with pytest.raises(ValueError):
            FingerprintDataset(
                rssi=np.zeros((3, 2)) - 50,
                rp_indices=np.array([0, 1]),
                locations=np.zeros((3, 2)),
                times_hours=np.zeros(3),
                epochs=np.zeros(3, dtype=int),
            )


class TestSelection:
    def test_filter_epoch(self):
        ds = _ds()
        sub = ds.filter_epoch(1)
        assert (sub.epochs == 1).all()

    def test_select_by_mask(self):
        ds = _ds()
        sub = ds.select(ds.rp_indices == 2)
        assert (sub.rp_indices == 2).all()

    def test_merge(self):
        a, b = _ds(6), _ds(4, seed=1)
        merged = a.merge(b)
        assert merged.n_samples == 10

    def test_merge_ap_mismatch(self):
        with pytest.raises(ValueError):
            _ds(4, aps=6).merge(_ds(4, aps=7))

    def test_shuffled_preserves_rows(self):
        ds = _ds()
        sh = ds.shuffled(np.random.default_rng(0))
        assert sorted(sh.times_hours.tolist()) == sorted(ds.times_hours.tolist())

    @given(st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_subsample_fpr_bounds(self, fpr):
        ds = make_synthetic_dataset(n_rps=5, fpr=6, n_aps=8)
        sub = ds.subsample_fpr(fpr, np.random.default_rng(0))
        counts = sub.fingerprints_per_rp()
        assert set(counts) == set(ds.fingerprints_per_rp())
        assert all(c == min(fpr, 6) for c in counts.values())

    def test_subsample_invalid(self):
        with pytest.raises(ValueError):
            _ds().subsample_fpr(0, np.random.default_rng(0))


class TestObservedMasks:
    def test_observed_mask(self):
        ds = FingerprintDataset(
            rssi=np.array([[-100.0, -50.0], [-100.0, -100.0]]),
            rp_indices=np.array([0, 1]),
            locations=np.zeros((2, 2)),
            times_hours=np.zeros(2),
            epochs=np.zeros(2, dtype=int),
        )
        np.testing.assert_array_equal(
            ds.observed_mask(), [[False, True], [False, False]]
        )
        np.testing.assert_array_equal(ds.visible_ap_union(), [1])


class TestPersistence:
    def test_npz_roundtrip(self, tmp_path):
        ds = _ds()
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = FingerprintDataset.load(path)
        np.testing.assert_array_equal(loaded.rssi, ds.rssi)
        np.testing.assert_array_equal(loaded.epochs, ds.epochs)

    def test_csv_roundtrip(self, tmp_path):
        ds = _ds()
        path = tmp_path / "ds.csv"
        dataset_to_csv(ds, path)
        loaded = dataset_from_csv(path)
        np.testing.assert_allclose(loaded.rssi, np.round(ds.rssi, 1), atol=0.051)
        np.testing.assert_array_equal(loaded.rp_indices, ds.rp_indices)
        np.testing.assert_allclose(loaded.locations, ds.locations, atol=1e-3)

    def test_csv_header_validation(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            dataset_from_csv(path)


class TestStatsAndSuite:
    def test_compute_stats(self):
        ds = make_synthetic_dataset(n_rps=4, fpr=3, n_aps=8)
        stats = compute_stats(ds)
        assert stats.n_samples == 12
        assert stats.n_rps == 4
        assert stats.fpr_min == stats.fpr_max == 3
        assert -100 <= stats.median_rssi_dbm <= 0

    def test_suite_construction_and_summary(self, tiny_suite):
        assert tiny_suite.n_epochs == 6
        assert tiny_suite.train.n_samples > 0
        table = suite_summary_table(tiny_suite)
        assert "train" in table
        assert "CI:5" not in table or True  # labels present
        assert tiny_suite.describe().startswith("suite")

    def test_suite_label_mismatch_rejected(self, tiny_suite):
        with pytest.raises(ValueError):
            LongitudinalSuite(
                name="x",
                floorplan=tiny_suite.floorplan,
                train=tiny_suite.train,
                test_epochs=tiny_suite.test_epochs,
                epoch_labels=["just-one"],
            )

    def test_visibility_matrix_shape(self, tiny_suite):
        matrix = observed_visibility_matrix(tiny_suite)
        assert matrix.shape == (tiny_suite.n_epochs, tiny_suite.n_aps)
        assert matrix.any()

    def test_churn_fractions_bounded(self, tiny_suite):
        churn = ap_churn_fraction(tiny_suite)
        assert churn.shape == (tiny_suite.n_epochs,)
        assert (churn >= 0).all() and (churn <= 1).all()
