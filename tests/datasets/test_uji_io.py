"""Tests for the real-UJI-corpus loader (synthetic on-disk fixtures)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.datasets import (
    load_uji_longterm,
    load_uji_month,
    read_crd_csv,
    read_rss_csv,
)
from repro.radio.access_point import NO_SIGNAL_DBM


def write_month(
    root: Path,
    month: str,
    *,
    n_train: int = 6,
    n_test: int = 4,
    n_aps: int = 5,
    floor: int = 3,
    seed: int = 0,
) -> None:
    """Create a corpus-format month folder with plausible numbers."""
    rng = np.random.default_rng(seed)
    d = root / month
    d.mkdir(parents=True, exist_ok=True)
    for split, n in (("trn", n_train), ("tst", n_test)):
        rss = rng.integers(-95, -30, size=(n, n_aps)).astype(float)
        rss[rng.random((n, n_aps)) < 0.3] = 100  # not-detected sentinel
        coords = np.column_stack(
            [
                rng.choice([0.0, 2.0, 4.0], size=n),
                rng.choice([0.0, 2.0], size=n),
                np.full(n, floor),
            ]
        )
        _write_csv(d / f"{split}{month}rss.csv", rss)
        _write_csv(d / f"{split}{month}crd.csv", coords)


def _write_csv(path: Path, rows: np.ndarray) -> None:
    with open(path, "w") as fh:
        for row in rows:
            fh.write(",".join(f"{v:g}" for v in row) + "\n")


class TestCsvParsers:
    def test_rss_sentinel_mapped(self, tmp_path):
        _write_csv(tmp_path / "r.csv", np.array([[100.0, -60.0, -95.0]]))
        rssi = read_rss_csv(tmp_path / "r.csv")
        assert rssi[0, 0] == NO_SIGNAL_DBM
        assert rssi[0, 1] == -60.0

    def test_rss_clipped_to_valid_range(self, tmp_path):
        _write_csv(tmp_path / "r.csv", np.array([[-120.0, 5.0]]))
        rssi = read_rss_csv(tmp_path / "r.csv")
        assert rssi[0, 0] == NO_SIGNAL_DBM  # below the floor -> floor
        assert rssi[0, 1] == 0.0  # implausibly strong -> 0 dBm cap

    def test_crd_with_floor_column(self, tmp_path):
        _write_csv(tmp_path / "c.csv", np.array([[1.0, 2.0, 3.0]]))
        loc, floors = read_crd_csv(tmp_path / "c.csv")
        assert loc.tolist() == [[1.0, 2.0]]
        assert floors.tolist() == [3]

    def test_crd_without_floor_defaults_zero(self, tmp_path):
        _write_csv(tmp_path / "c.csv", np.array([[1.0, 2.0]]))
        _, floors = read_crd_csv(tmp_path / "c.csv")
        assert floors.tolist() == [0]

    def test_ragged_rows_rejected(self, tmp_path):
        (tmp_path / "bad.csv").write_text("1,2,3\n1,2\n")
        with pytest.raises(ValueError, match="ragged"):
            read_rss_csv(tmp_path / "bad.csv")

    def test_non_numeric_rejected(self, tmp_path):
        (tmp_path / "bad.csv").write_text("1,x,3\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_rss_csv(tmp_path / "bad.csv")

    def test_empty_rejected(self, tmp_path):
        (tmp_path / "bad.csv").write_text("\n\n")
        with pytest.raises(ValueError, match="empty"):
            read_rss_csv(tmp_path / "bad.csv")


class TestLoadMonth:
    def test_roundtrip(self, tmp_path):
        write_month(tmp_path, "01")
        rssi, loc, floors = load_uji_month(tmp_path / "01", split="trn")
        assert rssi.shape == (6, 5)
        assert loc.shape == (6, 2)
        assert (floors == 3).all()

    def test_missing_files_reported(self, tmp_path):
        (tmp_path / "02").mkdir()
        with pytest.raises(FileNotFoundError):
            load_uji_month(tmp_path / "02")

    def test_bad_split_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_uji_month(tmp_path, split="val")

    def test_row_count_mismatch_rejected(self, tmp_path):
        write_month(tmp_path, "03")
        # Truncate the coordinate file.
        crd = tmp_path / "03" / "trn03crd.csv"
        lines = crd.read_text().splitlines()
        crd.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="scans vs"):
            load_uji_month(tmp_path / "03", split="trn")


class TestLoadLongterm:
    def test_suite_assembly(self, tmp_path):
        for i, month in enumerate(("01", "02", "03")):
            write_month(tmp_path, month, seed=i)
        suite = load_uji_longterm(tmp_path, floor=3)
        assert suite.n_epochs == 3
        assert suite.epoch_labels == ["month 01", "month 02", "month 03"]
        assert suite.train.n_samples == 6
        # RPs snapped from the 3x2 coordinate lattice.
        assert suite.floorplan.n_reference_points <= 6
        # Every scan got a valid RP from the training lattice.
        for ds in [suite.train] + suite.test_epochs:
            assert ds.rp_indices.max() < suite.floorplan.n_reference_points

    def test_floor_filter(self, tmp_path):
        write_month(tmp_path, "01", floor=3)
        with pytest.raises(ValueError, match="floor"):
            load_uji_longterm(tmp_path, floor=5)

    def test_months_subset(self, tmp_path):
        for month in ("01", "02"):
            write_month(tmp_path, month)
        suite = load_uji_longterm(tmp_path, months=["01"])
        assert suite.n_epochs == 1

    def test_empty_root_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_uji_longterm(tmp_path)

    def test_evaluation_runs_on_loaded_suite(self, tmp_path):
        # The loaded suite must drive the standard harness end to end.
        from repro.baselines import KNNLocalizer
        from repro.eval import evaluate_localizer

        for i, month in enumerate(("01", "02")):
            write_month(
                tmp_path, month, n_train=12, n_test=6, n_aps=8, seed=10 + i
            )
        suite = load_uji_longterm(tmp_path)
        result = evaluate_localizer(
            KNNLocalizer(), suite, rng=np.random.default_rng(0)
        )
        assert len(result.epochs) == 2
        assert np.isfinite(result.overall_mean())
