"""Tests for the longitudinal suite generators (the paper's protocols)."""

import numpy as np
import pytest

from repro.datasets import (
    SuiteConfig,
    build_environment,
    generate_path_suite,
    generate_uji_suite,
)
from repro.radio import SimTime


class TestSuiteConfig:
    def test_defaults(self):
        config = SuiteConfig()
        assert config.fpr == 6  # paper: 6 fingerprints per RP per CI
        assert config.train_fpr <= config.fpr

    def test_validation(self):
        with pytest.raises(ValueError):
            SuiteConfig(train_fpr=9, fpr=6)
        with pytest.raises(ValueError):
            SuiteConfig(n_aps=0)


class TestBuildEnvironment:
    def test_kinds(self):
        for kind in ("office", "basement", "uji"):
            env = build_environment(kind, seed=0, n_aps=12)
            assert env.n_aps == 12
            assert env.schedule is not None

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            build_environment("spaceship", seed=0)

    def test_determinism_across_instances(self):
        a = build_environment("office", seed=3, n_aps=10)
        b = build_environment("office", seed=3, n_aps=10)
        t = SimTime(0.0)
        ra = a.scan_at_rp(0, t, np.random.default_rng(1), epoch=0)
        rb = b.scan_at_rp(0, t, np.random.default_rng(1), epoch=0)
        np.testing.assert_array_equal(ra, rb)

    def test_different_seeds_differ(self):
        a = build_environment("office", seed=3, n_aps=10)
        b = build_environment("office", seed=4, n_aps=10)
        t = SimTime(0.0)
        ra = a.scan_at_rp(0, t, np.random.default_rng(1), epoch=0)
        rb = b.scan_at_rp(0, t, np.random.default_rng(1), epoch=0)
        assert not np.array_equal(ra, rb)


class TestPathSuite:
    def test_protocol_shape(self, tiny_suite):
        # train: train_fpr per RP from CI:0; epoch 0 tests: the held-out rest
        config_fpr, train_fpr = 4, 3
        n_rp = tiny_suite.floorplan.n_reference_points
        assert tiny_suite.train.n_samples == n_rp * train_fpr
        assert tiny_suite.test_epochs[0].n_samples == n_rp * (config_fpr - train_fpr)
        for ds in tiny_suite.test_epochs[1:]:
            assert ds.n_samples == n_rp * config_fpr

    def test_train_is_morning_of_day_zero(self, tiny_suite):
        assert (tiny_suite.train.epochs == 0).all()
        assert (tiny_suite.train.times_hours < 1.0).all()

    def test_labels(self, tiny_suite):
        assert tiny_suite.epoch_labels[0] == "CI:0"
        assert tiny_suite.epoch_labels[-1] == f"CI:{tiny_suite.n_epochs - 1}"

    def test_train_and_heldout_disjoint(self, tiny_suite):
        """No CI:0 fingerprint appears in both train and test."""
        train_keys = {
            (float(t), int(r), tuple(np.round(row, 6)))
            for t, r, row in zip(
                tiny_suite.train.times_hours,
                tiny_suite.train.rp_indices,
                tiny_suite.train.rssi,
            )
        }
        test0 = tiny_suite.test_epochs[0]
        test_keys = {
            (float(t), int(r), tuple(np.round(row, 6)))
            for t, r, row in zip(
                test0.times_hours, test0.rp_indices, test0.rssi
            )
        }
        assert not train_keys & test_keys

    def test_invalid_kind(self):
        with pytest.raises(KeyError):
            generate_path_suite("mall", seed=0)

    def test_reproducible(self):
        a = generate_path_suite(
            "office", seed=5, config=SuiteConfig(n_aps=10, fpr=2, train_fpr=1), n_cis=3
        )
        b = generate_path_suite(
            "office", seed=5, config=SuiteConfig(n_aps=10, fpr=2, train_fpr=1), n_cis=3
        )
        np.testing.assert_array_equal(a.train.rssi, b.train.rssi)
        np.testing.assert_array_equal(
            a.test_epochs[2].rssi, b.test_epochs[2].rssi
        )


@pytest.mark.slow
class TestUJISuite:
    def test_protocol_shape(self):
        suite = generate_uji_suite(
            seed=1, n_aps=20, train_fpr=4, test_fpr=2, n_months=3
        )
        n_rp = suite.floorplan.n_reference_points
        assert suite.train.n_samples == n_rp * 4
        assert suite.n_epochs == 3
        for ds in suite.test_epochs:
            assert ds.n_samples == n_rp * 2
        assert suite.epoch_labels[0] == "month 1"

    def test_train_fpr_capped_at_nine(self):
        with pytest.raises(ValueError):
            generate_uji_suite(train_fpr=10)
