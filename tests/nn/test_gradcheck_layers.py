"""Finite-difference gradient checks for every layer's backward pass.

These are the core correctness tests of the ``repro.nn`` substrate: for
each layer, the analytic input gradient (and parameter gradients where
applicable) must match a central-difference approximation.
"""

import numpy as np
import pytest

from repro.nn import (
    ELU,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    L2Normalize,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    check_layer_input_grad,
    check_layer_param_grads,
)

TOL = 5e-3


def _rng():
    return np.random.default_rng(7)


def _x2d(n=4, f=6):
    return _rng().normal(size=(n, f)).astype(np.float32)


def _x4d(n=2, c=2, h=6, w=6):
    return _rng().normal(size=(n, c, h, w)).astype(np.float32)


class TestActivationGradients:
    @pytest.mark.parametrize(
        "layer",
        [LeakyReLU(0.1), Sigmoid(), Tanh(), ELU(0.7)],
        ids=lambda layer: layer.__class__.__name__,
    )
    def test_input_gradients(self, layer):
        assert check_layer_input_grad(layer, _x2d()) < TOL

    def test_softmax_input_gradient(self):
        # Softmax outputs are tiny relative to the float32 forward noise,
        # so the finite-difference comparison needs a looser tolerance.
        assert check_layer_input_grad(Softmax(), _x2d()) < 2e-2

    def test_relu_gradient_away_from_kink(self):
        # ReLU is non-differentiable at 0; keep inputs away from it.
        x = _x2d()
        x[np.abs(x) < 0.1] = 0.5
        assert check_layer_input_grad(ReLU(), x) < TOL


class TestDenseGradients:
    def test_input_gradient(self):
        layer = Dense(6, 4, rng=_rng())
        assert check_layer_input_grad(layer, _x2d()) < TOL

    def test_param_gradients(self):
        layer = Dense(6, 4, rng=_rng())
        errors = check_layer_param_grads(layer, _x2d())
        assert errors["W"] < TOL
        assert errors["b"] < TOL

    def test_no_bias_variant(self):
        layer = Dense(6, 4, use_bias=False, rng=_rng())
        errors = check_layer_param_grads(layer, _x2d())
        assert set(errors) == {"W"}
        assert errors["W"] < TOL


class TestConvGradients:
    def test_input_gradient_valid(self):
        layer = Conv2D(2, 3, (2, 2), rng=_rng())
        assert check_layer_input_grad(layer, _x4d()) < TOL

    def test_param_gradients(self):
        layer = Conv2D(2, 3, (2, 2), rng=_rng())
        errors = check_layer_param_grads(layer, _x4d())
        assert errors["W"] < TOL
        assert errors["b"] < TOL

    def test_strided(self):
        layer = Conv2D(2, 3, (3, 3), stride=2, rng=_rng())
        assert check_layer_input_grad(layer, _x4d(h=7, w=7)) < TOL

    def test_same_padding(self):
        layer = Conv2D(2, 3, (3, 3), padding="same", rng=_rng())
        assert check_layer_input_grad(layer, _x4d()) < TOL

    def test_rectangular_kernel(self):
        layer = Conv2D(1, 2, (2, 3), rng=_rng())
        assert check_layer_input_grad(layer, _x4d(c=1)) < TOL


class TestPoolingGradients:
    def test_maxpool(self):
        # Spread values so the argmax is stable under the FD epsilon.
        x = (_rng().permutation(2 * 2 * 6 * 6).reshape(2, 2, 6, 6) * 0.1).astype(
            np.float32
        )
        assert check_layer_input_grad(MaxPool2D(2), x) < TOL

    def test_avgpool(self):
        assert check_layer_input_grad(AvgPool2D(2), _x4d()) < TOL

    def test_avgpool_strided(self):
        assert check_layer_input_grad(AvgPool2D(3, stride=1), _x4d()) < TOL

    def test_global_avgpool(self):
        assert check_layer_input_grad(GlobalAvgPool2D(), _x4d()) < TOL


class TestNormalizationGradients:
    def test_l2_normalize(self):
        assert check_layer_input_grad(L2Normalize(), _x2d()) < TOL

    def test_batchnorm_inference_mode(self):
        layer = BatchNorm(6)
        layer.running_mean = _rng().normal(size=6).astype(np.float32)
        layer.running_var = (np.abs(_rng().normal(size=6)) + 0.5).astype(np.float32)
        assert check_layer_input_grad(layer, _x2d()) < TOL

    def test_batchnorm_training_mode_gradient(self):
        # Training-mode BN must be checked against the batch-stat forward.
        layer = BatchNorm(4)
        # Independent streams: with dy == x the true gradient nearly
        # vanishes (BN output is invariant along the batch's own scale
        # direction) and the FD measurement is pure float32 noise.
        x = np.random.default_rng(7).normal(size=(8, 4)).astype(np.float64)
        dy = np.random.default_rng(8).normal(size=(8, 4)).astype(np.float32)

        def objective(x64):
            out, _ = layer.forward(x64.astype(np.float32), training=True)
            return float((out.astype(np.float64) * dy).sum())

        from repro.nn import numerical_gradient, relative_error

        num = numerical_gradient(objective, x)
        _, cache = layer.forward(x.astype(np.float32), training=True)
        analytic, _ = layer.backward(dy, cache)
        assert relative_error(num, analytic) < 1e-2

    def test_batchnorm_param_gradients(self):
        layer = BatchNorm(6)
        layer.running_var = np.full(6, 2.0, dtype=np.float32)
        errors = check_layer_param_grads(layer, _x2d())
        assert errors["gamma"] < TOL
        assert errors["beta"] < TOL


class TestReshapeGradients:
    def test_flatten(self):
        assert check_layer_input_grad(Flatten(), _x4d()) < TOL

    def test_reshape(self):
        assert check_layer_input_grad(Reshape((4, 9)), _x2d(n=3, f=36)) < TOL
