"""Failure-injection tests for model persistence and optimizer state."""

import json

import numpy as np
import pytest

from repro.nn import Adam, Dense, ReLU, Sequential


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])


class TestPersistenceFailures:
    def test_load_unknown_layer_class(self, tmp_path):
        model = _model()
        path = tmp_path / "m.npz"
        model.save(path)
        # Corrupt the architecture blob with a bogus layer class.
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arch = json.loads(bytes(arrays["__architecture__"]).decode())
        arch[0]["class"] = "QuantumLayer"
        arrays["__architecture__"] = np.frombuffer(
            json.dumps(arch).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="unknown layer class"):
            Sequential.load(path)

    def test_save_creates_parent_dirs(self, tmp_path):
        model = _model()
        path = tmp_path / "deep" / "nested" / "m.npz"
        model.save(path)
        assert path.exists()

    def test_loaded_model_trains_further(self, tmp_path):
        """A restored model must be optimizable, not just inferable."""
        model = _model()
        path = tmp_path / "m.npz"
        model.save(path)
        restored = Sequential.load(path)
        x = np.random.default_rng(1).normal(size=(8, 4)).astype(np.float32)
        y, caches = restored.forward(x, training=True)
        _, grads = restored.backward(np.ones_like(y), caches)
        before = restored.parameters()["0.W"].copy()
        Adam(0.1).step(restored.parameters(), grads)
        assert not np.allclose(before, restored.parameters()["0.W"])


class TestOptimizerStateIsolation:
    def test_separate_optimizers_do_not_share_state(self):
        p1 = {"w": np.ones(3, dtype=np.float32)}
        p2 = {"w": np.ones(3, dtype=np.float32)}
        g = {"w": np.ones(3, dtype=np.float32)}
        o1, o2 = Adam(0.1), Adam(0.1)
        o1.step(p1, g)
        o1.step(p1, g)
        o2.step(p2, g)
        # o2 is one step behind: parameters must differ
        assert not np.allclose(p1["w"], p2["w"])

    def test_iterations_counter(self):
        opt = Adam(0.1)
        p = {"w": np.ones(2, dtype=np.float32)}
        g = {"w": np.ones(2, dtype=np.float32)}
        for expected in range(1, 4):
            opt.step(p, g)
            assert opt.iterations == expected
