"""Tests for repro.nn.losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    BatchHardTripletLoss,
    ContrastiveLoss,
    MSELoss,
    SoftmaxCrossEntropy,
    TripletLoss,
    check_loss_grad,
    pairwise_squared_distances,
)

TOL = 5e-3


def rng():
    return np.random.default_rng(11)


def _emb(n=6, d=4, scale=1.0, seed=11):
    return (np.random.default_rng(seed).normal(size=(n, d)) * scale).astype(
        np.float32
    )


class TestTripletLoss:
    def test_zero_when_well_separated(self):
        a = np.array([[1.0, 0.0]], np.float32)
        p = np.array([[1.0, 0.05]], np.float32)
        n = np.array([[-1.0, 0.0]], np.float32)
        assert TripletLoss(margin=0.2).value(a, p, n) == 0.0

    def test_positive_when_violated(self):
        a = np.array([[1.0, 0.0]], np.float32)
        p = np.array([[-1.0, 0.0]], np.float32)  # positive far away
        n = np.array([[1.0, 0.1]], np.float32)  # negative close
        assert TripletLoss(margin=0.2).value(a, p, n) > 0.0

    def test_margin_value_at_equal_distances(self):
        a = np.array([[0.0, 0.0]], np.float32)
        p = np.array([[1.0, 0.0]], np.float32)
        n = np.array([[0.0, 1.0]], np.float32)
        assert TripletLoss(margin=0.3).value(a, p, n) == pytest.approx(0.3)

    def test_gradients_match_numerical(self):
        loss = TripletLoss(0.5)
        a, p, n = _emb(seed=1), _emb(seed=2), _emb(seed=3)
        for which in range(3):
            def value(x, which=which):
                args = [a, p, n]
                args[which] = x
                return loss.value(*args)

            def grad(x, which=which):
                args = [a, p, n]
                args[which] = x
                return loss.grad(*args)[which]

            err = check_loss_grad(value, grad, [a, p, n][which])
            assert err < TOL, f"branch {which} gradient mismatch: {err}"

    def test_active_fraction_bounds(self):
        loss = TripletLoss(0.2)
        a, p, n = _emb(seed=1), _emb(seed=2), _emb(seed=3)
        frac = loss.active_fraction(a, p, n)
        assert 0.0 <= frac <= 1.0

    def test_inactive_triplets_get_zero_gradient(self):
        a = np.array([[1.0, 0.0]], np.float32)
        p = np.array([[1.0, 0.0]], np.float32)
        n = np.array([[-1.0, 0.0]], np.float32)
        da, dp, dn = TripletLoss(0.1).grad(a, p, n)
        assert (da == 0).all() and (dp == 0).all() and (dn == 0).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TripletLoss().value(_emb(4), _emb(4), _emb(5))

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            TripletLoss(-0.1)

    @given(
        arrays(np.float32, (4, 3), elements=st.floats(-2, 2, width=32)),
        arrays(np.float32, (4, 3), elements=st.floats(-2, 2, width=32)),
        arrays(np.float32, (4, 3), elements=st.floats(-2, 2, width=32)),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_loss_nonnegative(self, a, p, n):
        assert TripletLoss(0.2).value(a, p, n) >= 0.0

    @given(st.floats(0.0, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_property_loss_monotone_in_margin(self, margin):
        a, p, n = _emb(seed=4), _emb(seed=5), _emb(seed=6)
        small = TripletLoss(0.0).value(a, p, n)
        large = TripletLoss(margin).value(a, p, n)
        assert large >= small


class TestContrastiveLoss:
    def test_similar_pair_penalizes_distance(self):
        x1 = np.array([[0.0, 0.0]], np.float32)
        x2 = np.array([[3.0, 4.0]], np.float32)
        loss = ContrastiveLoss(margin=1.0)
        assert loss.value(x1, x2, np.array([1.0])) == pytest.approx(25.0, rel=1e-4)

    def test_dissimilar_pair_beyond_margin_is_free(self):
        x1 = np.array([[0.0, 0.0]], np.float32)
        x2 = np.array([[5.0, 0.0]], np.float32)
        loss = ContrastiveLoss(margin=1.0)
        assert loss.value(x1, x2, np.array([0.0])) == pytest.approx(0.0, abs=1e-6)

    def test_dissimilar_pair_inside_margin_penalized(self):
        x1 = np.array([[0.0, 0.0]], np.float32)
        x2 = np.array([[0.5, 0.0]], np.float32)
        loss = ContrastiveLoss(margin=1.0)
        assert loss.value(x1, x2, np.array([0.0])) == pytest.approx(0.25, rel=1e-3)

    def test_gradient_matches_numerical(self):
        loss = ContrastiveLoss(1.0)
        x1, x2 = _emb(seed=7), _emb(seed=8)
        y = (np.arange(6) % 2).astype(np.float32)
        err = check_loss_grad(
            lambda x: loss.value(x, x2, y),
            lambda x: loss.grad(x, x2, y)[0],
            x1,
            eps=1e-2,
        )
        assert err < TOL

    def test_grad_antisymmetry(self):
        loss = ContrastiveLoss(1.0)
        x1, x2 = _emb(seed=7), _emb(seed=8)
        y = np.ones(6, np.float32)
        g1, g2 = loss.grad(x1, x2, y)
        np.testing.assert_allclose(g1, -g2, rtol=1e-5)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], np.float32)
        labels = np.array([0, 1])
        assert SoftmaxCrossEntropy().value(logits, labels) < 1e-4

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((3, 5), np.float32)
        labels = np.array([0, 2, 4])
        assert SoftmaxCrossEntropy().value(logits, labels) == pytest.approx(
            np.log(5), rel=1e-4
        )

    def test_gradient_matches_numerical(self):
        loss = SoftmaxCrossEntropy()
        logits = _emb(5, 4, seed=9)
        labels = np.array([0, 1, 2, 3, 0])
        err = check_loss_grad(
            lambda x: loss.value(x, labels),
            lambda x: loss.grad(x, labels),
            logits,
            eps=1e-2,
        )
        assert err < TOL

    def test_gradient_rows_sum_to_zero(self):
        logits = _emb(5, 4, seed=9)
        grad = SoftmaxCrossEntropy().grad(logits, np.array([0, 1, 2, 3, 0]))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_label_smoothing_softens_loss(self):
        logits = np.array([[8.0, -8.0]], np.float32)
        labels = np.array([0])
        plain = SoftmaxCrossEntropy().value(logits, labels)
        smoothed = SoftmaxCrossEntropy(0.2).value(logits, labels)
        assert smoothed > plain

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().value(np.zeros((2, 3), np.float32), np.array([0, 3]))

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]], np.float32)
        acc = SoftmaxCrossEntropy().accuracy(logits, np.array([0, 1, 1]))
        assert acc == pytest.approx(2 / 3)


class TestMSELoss:
    def test_zero_for_identical(self):
        x = _emb(seed=10)
        assert MSELoss().value(x, x) == 0.0

    def test_known_value(self):
        pred = np.array([[1.0, 2.0]], np.float32)
        target = np.array([[0.0, 0.0]], np.float32)
        assert MSELoss().value(pred, target) == pytest.approx(2.5)

    def test_gradient_matches_numerical(self):
        target = _emb(seed=12)
        pred = _emb(seed=13)
        loss = MSELoss()
        err = check_loss_grad(
            lambda x: loss.value(x, target),
            lambda x: loss.grad(x, target),
            pred,
            eps=1e-2,
        )
        assert err < TOL


class TestPairwiseDistances:
    def test_symmetry_and_zero_diagonal(self):
        d2 = pairwise_squared_distances(_emb(seed=14))
        np.testing.assert_allclose(d2, d2.T, atol=1e-5)
        np.testing.assert_allclose(np.diag(d2), 0.0, atol=1e-5)

    def test_matches_direct_computation(self):
        x = _emb(5, 3, seed=15)
        d2 = pairwise_squared_distances(x)
        direct = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, direct, atol=1e-4)

    @given(arrays(np.float32, (5, 3), elements=st.floats(-5, 5, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_property_nonnegative(self, x):
        assert (pairwise_squared_distances(x) >= 0).all()


class TestBatchHardTripletLoss:
    def _labeled_batch(self):
        emb = _emb(8, 4, seed=16)
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        return emb, labels

    def test_value_nonnegative(self):
        emb, labels = self._labeled_batch()
        assert BatchHardTripletLoss(0.2).value(emb, labels) >= 0.0

    def test_gradient_matches_numerical(self):
        emb, labels = self._labeled_batch()
        loss = BatchHardTripletLoss(0.5)
        err = check_loss_grad(
            lambda x: loss.value(x, labels),
            lambda x: loss.grad(x, labels),
            emb,
            eps=1e-2,
        )
        assert err < TOL

    def test_requires_positives_and_negatives(self):
        emb = _emb(4, 3, seed=17)
        with pytest.raises(ValueError, match="positive"):
            BatchHardTripletLoss().value(emb, np.array([0, 1, 2, 3]))
