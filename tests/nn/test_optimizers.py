"""Tests for repro.nn.optimizers and schedules."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    AdaGrad,
    Adam,
    AdamW,
    Momentum,
    RMSProp,
    clip_grads_by_norm,
    get_optimizer,
)
from repro.nn import schedules


def _params(value=1.0):
    return {"w": np.full((3,), value, dtype=np.float32)}


def _grads(value=0.5):
    return {"w": np.full((3,), value, dtype=np.float32)}


class TestSGD:
    def test_single_step(self):
        params = _params(1.0)
        SGD(lr=0.1).step(params, _grads(0.5))
        np.testing.assert_allclose(params["w"], 0.95)

    def test_weight_decay_coupled(self):
        params = _params(1.0)
        SGD(lr=0.1, weight_decay=0.1).step(params, _grads(0.0))
        np.testing.assert_allclose(params["w"], 1.0 - 0.1 * 0.1, rtol=1e-6)

    def test_missing_grad_raises(self):
        with pytest.raises(KeyError):
            SGD(lr=0.1).step(_params(), {})

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1).step(_params(), {"w": np.zeros((4,), np.float32)})

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)


class TestMomentum:
    def test_velocity_accumulates(self):
        params = _params(0.0)
        opt = Momentum(lr=0.1, momentum=0.9)
        opt.step(params, _grads(1.0))
        first = params["w"].copy()
        opt.step(params, _grads(1.0))
        second_step = params["w"] - first
        # Second step is larger in magnitude thanks to velocity.
        assert float(np.abs(second_step).mean()) > float(np.abs(first).mean())

    def test_nesterov_variant_differs(self):
        p1, p2 = _params(0.0), _params(0.0)
        Momentum(lr=0.1, momentum=0.9).step(p1, _grads(1.0))
        Momentum(lr=0.1, momentum=0.9, nesterov=True).step(p2, _grads(1.0))
        assert not np.allclose(p1["w"], p2["w"])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        """With bias correction, |first update| ~= lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            params = _params(0.0)
            Adam(lr=0.01).step(params, _grads(scale))
            np.testing.assert_allclose(np.abs(params["w"]), 0.01, rtol=1e-3)

    def test_converges_on_quadratic(self):
        w = {"w": np.array([5.0, -3.0], dtype=np.float32)}
        opt = Adam(lr=0.1)
        for _ in range(500):
            opt.step(w, {"w": 2.0 * w["w"]})
        assert float(np.abs(w["w"]).max()) < 1e-2

    def test_adamw_decay_decoupled_from_moments(self):
        # With zero gradient, AdamW still decays weights; Adam's coupled
        # decay feeds through the moment estimates instead.
        params = _params(1.0)
        AdamW(lr=0.1, weight_decay=0.5).step(params, _grads(0.0))
        np.testing.assert_allclose(params["w"], 1.0 - 0.1 * 0.5 * 1.0, rtol=1e-5)

    def test_state_keys_after_step(self):
        opt = Adam()
        opt.step(_params(), _grads())
        assert list(opt.state_keys()) == ["w"]


class TestRMSPropAdaGrad:
    def test_rmsprop_converges_on_quadratic(self):
        w = {"w": np.array([4.0], dtype=np.float32)}
        opt = RMSProp(lr=0.05)
        for _ in range(400):
            opt.step(w, {"w": 2.0 * w["w"]})
        assert abs(float(w["w"][0])) < 0.05

    def test_adagrad_learning_rate_shrinks(self):
        params = _params(0.0)
        opt = AdaGrad(lr=0.5)
        opt.step(params, _grads(1.0))
        first = abs(float(params["w"][0]))
        prev = params["w"].copy()
        opt.step(params, _grads(1.0))
        second = abs(float(params["w"][0] - prev[0]))
        assert second < first


class TestFactoryAndClipping:
    def test_get_optimizer_by_name(self):
        assert isinstance(get_optimizer("adam", 1e-3), Adam)
        assert isinstance(get_optimizer("SGD", 0.1), SGD)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_optimizer("lion")

    def test_clip_noop_below_threshold(self):
        grads = {"a": np.array([0.3, 0.4], np.float32)}
        clipped, norm = clip_grads_by_norm(grads, 1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_array_equal(clipped["a"], grads["a"])

    def test_clip_rescales_to_max_norm(self):
        grads = {"a": np.array([3.0, 4.0], np.float32)}
        clipped, norm = clip_grads_by_norm(grads, 1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt((clipped["a"] ** 2).sum())
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_clip_spans_multiple_tensors(self):
        grads = {
            "a": np.array([3.0], np.float32),
            "b": np.array([4.0], np.float32),
        }
        clipped, norm = clip_grads_by_norm(grads, 1.0)
        assert norm == pytest.approx(5.0)
        got = np.sqrt(sum(float((g**2).sum()) for g in clipped.values()))
        assert got == pytest.approx(1.0, rel=1e-5)


class TestSchedules:
    def test_constant(self):
        sched = schedules.constant(0.1)
        assert sched(0) == sched(100) == 0.1

    def test_step_decay(self):
        sched = schedules.step_decay(1.0, drop=0.5, every=10)
        assert sched(0) == 1.0
        assert sched(10) == 0.5
        assert sched(25) == 0.25

    def test_exponential(self):
        sched = schedules.exponential_decay(1.0, gamma=0.9)
        assert sched(2) == pytest.approx(0.81)

    def test_cosine_endpoints(self):
        sched = schedules.cosine_decay(1.0, total_epochs=10, min_lr=0.1)
        assert sched(0) == pytest.approx(1.0)
        assert sched(10) == pytest.approx(0.1)
        assert 0.1 < sched(5) < 1.0

    def test_warmup_ramps(self):
        base = schedules.constant(1.0)
        sched = schedules.warmup(base, warmup_epochs=10, start_factor=0.1)
        assert sched(0) == pytest.approx(0.1)
        assert sched(5) == pytest.approx(0.55)
        assert sched(10) == 1.0

    def test_piecewise(self):
        sched = schedules.piecewise([5, 10], [1.0, 0.1, 0.01])
        assert sched(0) == 1.0
        assert sched(7) == 0.1
        assert sched(50) == 0.01

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            schedules.piecewise([5], [1.0])
        with pytest.raises(ValueError):
            schedules.piecewise([10, 5], [1.0, 0.5, 0.1])
