"""Tests for Sequential, Trainer, and the Siamese shared-weight property."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    Dense,
    Dropout,
    EarlyStopping,
    Flatten,
    L2Normalize,
    MSELoss,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Trainer,
    TripletLoss,
    iterate_minibatches,
    schedules,
)


def rng():
    return np.random.default_rng(5)


def small_mlp(in_f=4, out_f=3, seed=5):
    r = np.random.default_rng(seed)
    return Sequential(
        [Dense(in_f, 8, rng=r), ReLU(), Dense(8, out_f, rng=r)]
    )


class TestSequential:
    def test_parameter_keys_are_indexed(self):
        model = small_mlp()
        keys = set(model.parameters())
        assert keys == {"0.W", "0.b", "2.W", "2.b"}

    def test_n_params(self):
        model = small_mlp()
        assert model.n_params() == 4 * 8 + 8 + 8 * 3 + 3

    def test_forward_backward_shapes(self):
        model = small_mlp()
        x = rng().normal(size=(6, 4)).astype(np.float32)
        y, caches = model.forward(x)
        assert y.shape == (6, 3)
        dx, grads = model.backward(np.ones_like(y), caches)
        assert dx.shape == x.shape
        assert set(grads) == set(model.parameters())

    def test_predict_batched_equals_single(self):
        model = small_mlp()
        x = rng().normal(size=(500, 4)).astype(np.float32)
        np.testing.assert_allclose(
            model.predict(x, batch_size=64), model.predict(x, batch_size=1000),
            rtol=1e-5,
        )

    def test_output_shape_propagation(self):
        model = Sequential(
            [
                Conv2D(1, 4, (2, 2), rng=rng()),
                ReLU(),
                Flatten(),
                Dense(4 * 4 * 4, 7, rng=rng()),
            ]
        )
        assert model.output_shape((1, 5, 5)) == (7,)

    def test_summary_mentions_total(self):
        text = small_mlp().summary((4,))
        assert "total params" in text

    def test_cache_count_mismatch_raises(self):
        model = small_mlp()
        with pytest.raises(ValueError):
            model.backward(np.zeros((1, 3), np.float32), [None])

    def test_set_parameters_strict(self):
        model = small_mlp()
        with pytest.raises(KeyError):
            model.set_parameters({"0.W": np.zeros((4, 8), np.float32)})

    def test_save_load_roundtrip(self, tmp_path):
        model = Sequential(
            [
                Conv2D(1, 3, (2, 2), rng=rng()),
                ReLU(),
                Flatten(),
                Dense(3 * 3 * 3, 5, rng=rng()),
                L2Normalize(),
            ]
        )
        x = rng().normal(size=(4, 1, 4, 4)).astype(np.float32)
        expected = model.predict(x)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = Sequential.load(path)
        np.testing.assert_allclose(loaded.predict(x), expected, rtol=1e-6)

    def test_add_rejects_non_layer(self):
        with pytest.raises(TypeError):
            Sequential().add("not a layer")


class TestSharedWeightTripletBackward:
    """The property Siamese training relies on: multiple forwards through
    one weight set, then multiple backwards with gradient accumulation,
    must equal the sum of independent per-branch gradients."""

    def test_accumulated_equals_sum_of_branches(self):
        model = small_mlp(out_f=4)
        loss = TripletLoss(0.5)
        xa = rng().normal(size=(5, 4)).astype(np.float32)
        xp = xa + 0.1
        xn = -xa
        ea, ca = model.forward(xa)
        ep, cp = model.forward(xp)
        en, cn = model.forward(xn)
        da, dp, dn = loss.grad(ea, ep, en)
        total = model.zero_grads()
        for dy, cache in ((da, ca), (dp, cp), (dn, cn)):
            _, g = model.backward(dy, cache)
            model.accumulate_grads(total, g)
        # Independent recomputation branch by branch.
        for key in total:
            parts = []
            for dy, x in ((da, xa), (dp, xp), (dn, xn)):
                _, caches = model.forward(x)
                _, g = model.backward(dy, caches)
                parts.append(g[key])
            np.testing.assert_allclose(
                total[key], sum(parts), rtol=1e-4, atol=1e-6
            )

    def test_caches_are_independent_across_forwards(self):
        # A dropout layer must not share masks between branch forwards.
        model = Sequential([Dense(4, 4, rng=rng()), Dropout(0.5)])
        r = rng()
        x = np.ones((64, 4), np.float32)
        y1, c1 = model.forward(x, training=True, rng=r)
        y2, c2 = model.forward(x, training=True, rng=r)
        assert not np.allclose(y1, y2)  # different masks drawn
        dx1, _ = model.backward(np.ones_like(y1), c1)
        dx2, _ = model.backward(np.ones_like(y2), c2)
        assert not np.allclose(dx1, dx2)


class TestTrainer:
    def test_learns_linear_regression(self):
        r = rng()
        x = r.normal(size=(256, 3)).astype(np.float32)
        true_w = np.array([[1.0], [-2.0], [0.5]], np.float32)
        y = x @ true_w
        model = Sequential([Dense(3, 1, rng=r)])
        trainer = Trainer(model, MSELoss(), Adam(0.05))
        history = trainer.fit(x, y, epochs=60, batch_size=32, rng=r)
        assert history.loss[-1] < 1e-3
        np.testing.assert_allclose(model.parameters()["0.W"], true_w, atol=0.05)

    def test_learns_classification(self):
        r = rng()
        x = r.normal(size=(300, 2)).astype(np.float32)
        labels = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = Sequential([Dense(2, 16, rng=r), ReLU(), Dense(16, 2, rng=r)])
        loss = SoftmaxCrossEntropy()
        trainer = Trainer(model, loss, Adam(0.01))
        trainer.fit(x, labels, epochs=40, batch_size=32, rng=r)
        acc = loss.accuracy(model.predict(x), labels)
        assert acc > 0.95

    def test_validation_curve_recorded(self):
        r = rng()
        x = r.normal(size=(64, 3)).astype(np.float32)
        y = x.sum(axis=1, keepdims=True)
        model = Sequential([Dense(3, 1, rng=r)])
        trainer = Trainer(model, MSELoss(), Adam(0.01))
        history = trainer.fit(
            x, y, epochs=5, batch_size=16, rng=r, validation=(x, y)
        )
        assert len(history.val_loss) == 5
        assert history.best_val_loss == min(history.val_loss)

    def test_schedule_sets_lr(self):
        r = rng()
        x = r.normal(size=(32, 2)).astype(np.float32)
        y = x[:, :1]
        model = Sequential([Dense(2, 1, rng=r)])
        opt = Adam(1.0)
        trainer = Trainer(
            model, MSELoss(), opt, schedule=schedules.step_decay(0.1, drop=0.5, every=1)
        )
        history = trainer.fit(x, y, epochs=3, batch_size=16, rng=r)
        np.testing.assert_allclose(history.lr, [0.1, 0.05, 0.025])

    def test_early_stopping_halts(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)  # stale 1
        assert stopper.update(1.0)  # stale 2 -> stop

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.0)
        assert not stopper.update(0.5)
        assert not stopper.update(0.6)

    def test_mismatched_xy_rejected(self):
        model = small_mlp()
        trainer = Trainer(model, MSELoss(), Adam())
        with pytest.raises(ValueError):
            trainer.fit(
                np.zeros((4, 4), np.float32), np.zeros((5, 3)), epochs=1
            )


class TestMinibatches:
    def test_covers_all_indices(self):
        batches = list(iterate_minibatches(10, 3, rng()))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == list(range(10))

    def test_drop_last(self):
        batches = list(iterate_minibatches(10, 3, rng(), drop_last=True))
        assert all(b.shape[0] == 3 for b in batches)
        assert len(batches) == 3

    def test_no_shuffle_is_ordered(self):
        batches = list(iterate_minibatches(6, 2, rng(), shuffle=False))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(6))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0, rng()))
