"""Behavioral tests for layers (beyond gradient correctness)."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GaussianDropout,
    GaussianNoise,
    L2Normalize,
    MaxPool2D,
    ReLU,
    Reshape,
    Softmax,
)
from repro.nn.layers.conv import conv_output_hw, im2col, resolve_padding


def rng():
    return np.random.default_rng(3)


class TestConvMechanics:
    def test_known_convolution_value(self):
        """Hand-checked 2x2 convolution on a 3x3 input."""
        layer = Conv2D(1, 1, (2, 2), rng=rng())
        layer.params["W"][...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], np.float32)
        layer.params["b"][...] = 0.5
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        y, _ = layer.forward(x)
        # top-left window [[0,1],[3,4]] -> 0*1+1*2+3*3+4*4 = 27, +bias
        assert y.shape == (1, 1, 2, 2)
        assert y[0, 0, 0, 0] == pytest.approx(27.5)
        assert y[0, 0, 1, 1] == pytest.approx(4 + 10 + 21 + 32 + 0.5)

    def test_output_shape_helper(self):
        assert conv_output_hw((10, 10), (2, 2), (1, 1), (0, 0)) == (9, 9)
        assert conv_output_hw((10, 10), (3, 3), (2, 2), (1, 1)) == (5, 5)

    def test_collapsed_output_raises(self):
        with pytest.raises(ValueError, match="collapses"):
            conv_output_hw((2, 2), (3, 3), (1, 1), (0, 0))

    def test_im2col_patch_content(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, (oh, ow) = im2col(x, (2, 2), (1, 1), (0, 0))
        assert (oh, ow) == (3, 3)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[-1], [10, 11, 14, 15])

    def test_padding_resolution(self):
        assert resolve_padding("valid", (2, 2), (1, 1)) == (0, 0)
        assert resolve_padding("same", (3, 3), (1, 1)) == (1, 1)
        assert resolve_padding(2, (3, 3), (1, 1)) == (2, 2)
        with pytest.raises(ValueError):
            resolve_padding("weird", (2, 2), (1, 1))

    def test_bad_input_channel_count(self):
        layer = Conv2D(3, 4, (2, 2), rng=rng())
        with pytest.raises(ValueError, match="expected"):
            layer.forward(np.zeros((1, 2, 5, 5), np.float32))

    def test_same_padding_preserves_hw(self):
        layer = Conv2D(1, 2, (3, 3), padding="same", rng=rng())
        y, _ = layer.forward(np.zeros((1, 1, 7, 7), np.float32))
        assert y.shape == (1, 2, 7, 7)


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5)
        x = rng().normal(size=(10, 20)).astype(np.float32)
        y, _ = layer.forward(x, training=False)
        np.testing.assert_array_equal(x, y)

    def test_training_zeroes_and_rescales(self):
        layer = Dropout(0.5)
        x = np.ones((200, 100), np.float32)
        y, _ = layer.forward(x, training=True, rng=rng())
        kept = y > 0
        assert 0.4 < kept.mean() < 0.6
        np.testing.assert_allclose(y[kept], 2.0, rtol=1e-6)

    def test_training_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            Dropout(0.5).forward(np.ones((2, 2), np.float32), training=True)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_rate_is_identity_even_training(self):
        x = rng().normal(size=(4, 4)).astype(np.float32)
        y, _ = Dropout(0.0).forward(x, training=True, rng=rng())
        np.testing.assert_array_equal(x, y)


class TestNoiseLayers:
    def test_gaussian_noise_inference_identity(self):
        x = rng().normal(size=(5, 5)).astype(np.float32)
        y, _ = GaussianNoise(0.3).forward(x, training=False)
        np.testing.assert_array_equal(x, y)

    def test_gaussian_noise_training_statistics(self):
        x = np.zeros((500, 100), np.float32)
        y, _ = GaussianNoise(0.1).forward(x, training=True, rng=rng())
        assert abs(float(y.std()) - 0.1) < 0.01
        assert abs(float(y.mean())) < 0.01

    def test_gaussian_dropout_mean_preserving(self):
        x = np.ones((500, 100), np.float32)
        y, _ = GaussianDropout(0.2).forward(x, training=True, rng=rng())
        assert abs(float(y.mean()) - 1.0) < 0.01

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)


class TestL2Normalize:
    def test_unit_norm_output(self):
        x = rng().normal(size=(8, 5)).astype(np.float32) * 10
        y, _ = L2Normalize().forward(x)
        np.testing.assert_allclose(np.linalg.norm(y, axis=1), 1.0, rtol=1e-5)

    def test_direction_preserved(self):
        x = np.array([[3.0, 4.0]], np.float32)
        y, _ = L2Normalize().forward(x)
        np.testing.assert_allclose(y, [[0.6, 0.8]], rtol=1e-6)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            L2Normalize().forward(np.zeros((2, 3, 4), np.float32))


class TestBatchNormBehavior:
    def test_training_normalizes_batch(self):
        layer = BatchNorm(10)
        x = (rng().normal(size=(64, 10)) * 5 + 3).astype(np.float32)
        y, _ = layer.forward(x, training=True)
        assert np.abs(y.mean(axis=0)).max() < 1e-4
        assert np.abs(y.std(axis=0) - 1.0).max() < 1e-2

    def test_running_stats_converge(self):
        layer = BatchNorm(4, momentum=0.5)
        x = (rng().normal(size=(256, 4)) * 2 + 1).astype(np.float32)
        for _ in range(20):
            layer.forward(x, training=True)
        # Tolerances cover the sampling error of the batch statistics
        # themselves (256 samples -> var estimate sd ~ 0.35).
        assert np.abs(layer.running_mean - 1.0).max() < 0.3
        assert np.abs(layer.running_var - 4.0).max() < 1.0

    def test_4d_channel_stats(self):
        layer = BatchNorm(3)
        x = rng().normal(size=(8, 3, 5, 5)).astype(np.float32)
        y, _ = layer.forward(x, training=True)
        assert y.shape == x.shape
        assert np.abs(y.mean(axis=(0, 2, 3))).max() < 1e-4

    def test_wrong_feature_count(self):
        with pytest.raises(ValueError):
            BatchNorm(5).forward(np.zeros((2, 4), np.float32))


class TestPoolingAndReshape:
    def test_maxpool_selects_maximum(self):
        x = np.array(
            [[[[1.0, 2.0], [3.0, 9.0]]]], np.float32
        )
        y, _ = MaxPool2D(2).forward(x)
        assert y.item() == 9.0

    def test_flatten_roundtrip_through_backward(self):
        layer = Flatten()
        x = rng().normal(size=(3, 2, 4, 4)).astype(np.float32)
        y, cache = layer.forward(x)
        assert y.shape == (3, 32)
        dx, _ = layer.backward(y, cache)
        np.testing.assert_array_equal(dx, x)

    def test_reshape_validates_size(self):
        with pytest.raises(ValueError):
            Reshape((5, 5)).forward(np.zeros((2, 24), np.float32))

    def test_softmax_rows_sum_to_one(self):
        y, _ = Softmax().forward(rng().normal(size=(6, 9)).astype(np.float32) * 30)
        np.testing.assert_allclose(y.sum(axis=1), 1.0, rtol=1e-5)
        assert (y >= 0).all()


class TestDenseBehavior:
    def test_linear_map_applied(self):
        layer = Dense(2, 2, rng=rng())
        layer.params["W"][...] = np.array([[1, 0], [0, 2]], np.float32)
        layer.params["b"][...] = np.array([0.5, -0.5], np.float32)
        y, _ = layer.forward(np.array([[2.0, 3.0]], np.float32))
        np.testing.assert_allclose(y, [[2.5, 5.5]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dense(3, 2, rng=rng()).forward(np.zeros((1, 4), np.float32))

    def test_relu_zeroes_negatives(self):
        y, _ = ReLU().forward(np.array([[-1.0, 2.0, 0.0]], np.float32))
        np.testing.assert_array_equal(y, [[0.0, 2.0, 0.0]])
