"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn import initializers as init


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestBasicInitializers:
    def test_zeros(self, rng):
        arr = init.zeros((3, 4), rng)
        assert arr.shape == (3, 4)
        assert arr.dtype == np.float32
        assert (arr == 0).all()

    def test_ones(self, rng):
        arr = init.ones((5,), rng)
        assert (arr == 1).all()

    def test_normal_std(self, rng):
        arr = init.normal((200, 200), rng, std=0.05)
        assert abs(float(arr.std()) - 0.05) < 0.005

    def test_uniform_limits(self, rng):
        arr = init.uniform((100, 100), rng, limit=0.2)
        assert float(arr.min()) >= -0.2
        assert float(arr.max()) <= 0.2


class TestFanBasedInitializers:
    def test_he_normal_std_matches_fan_in(self, rng):
        fan_in = 400
        arr = init.he_normal((fan_in, 300), rng)
        expected = np.sqrt(2.0 / fan_in)
        assert abs(float(arr.std()) - expected) / expected < 0.05

    def test_glorot_uniform_limit(self, rng):
        arr = init.glorot_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert float(np.abs(arr).max()) <= limit + 1e-6

    def test_conv_kernel_fans(self):
        fan_in, fan_out = init._fan_in_out((64, 32, 2, 2))
        assert fan_in == 32 * 4
        assert fan_out == 64 * 4

    def test_dense_fans(self):
        assert init._fan_in_out((10, 20)) == (10, 20)

    def test_vector_fans(self):
        assert init._fan_in_out((7,)) == (7, 7)

    def test_lecun_normal_std(self, rng):
        arr = init.lecun_normal((500, 100), rng)
        expected = np.sqrt(1.0 / 500)
        assert abs(float(arr.std()) - expected) / expected < 0.05

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            init._fan_in_out(())


class TestRegistry:
    def test_get_by_name(self):
        assert init.get_initializer("he_normal") is init.he_normal

    def test_xavier_alias(self):
        assert init.get_initializer("xavier_uniform") is init.glorot_uniform

    def test_callable_passthrough(self):
        fn = lambda shape, rng: np.zeros(shape, dtype=np.float32)  # noqa: E731
        assert init.get_initializer(fn) is fn

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="he_normal"):
            init.get_initializer("not_an_init")

    def test_available_list_sorted(self):
        names = init.available_initializers()
        assert names == sorted(names)
        assert "glorot_uniform" in names

    def test_all_registered_produce_correct_shape(self, rng):
        for name in init.available_initializers():
            arr = init.get_initializer(name)((4, 6), rng)
            assert arr.shape == (4, 6)
            assert arr.dtype == np.float32

    def test_determinism_under_seed(self):
        a = init.he_normal((5, 5), np.random.default_rng(42))
        b = init.he_normal((5, 5), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
