"""FleetRegistry: topology, shared warm store, per-slot index, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetRegistry, parse_fleet_spec
from repro.multifloor import floor_suite


class TestTopology:
    def test_ap_blocks_are_contiguous(self, fleet_registry):
        buildings = fleet_registry.buildings
        assert buildings[0].ap_start == 0
        for prev, cur in zip(buildings, buildings[1:]):
            assert cur.ap_start == prev.ap_stop
        assert fleet_registry.n_aps == buildings[-1].ap_stop

    def test_slot_count_and_order(self, fleet_registry):
        slots = fleet_registry.slots()
        assert fleet_registry.n_slots == len(slots) == 4
        assert [s.slot.label for s in slots] == [
            "HQ/f0", "HQ/f1", "LAB/f0", "LAB/f1",
        ]

    def test_lookup(self, fleet_registry):
        slot = fleet_registry.slot("LAB", 1)
        assert slot.slot.building == "LAB" and slot.slot.floor == 1
        with pytest.raises(KeyError, match="no floor 7"):
            fleet_registry.slot("LAB", 7)
        with pytest.raises(KeyError, match="unknown building"):
            fleet_registry.slot("ANNEX", 0)

    def test_describe_is_json_ready(self, fleet_registry):
        import json

        payload = fleet_registry.describe()
        assert json.loads(json.dumps(payload))["n_slots"] == 4
        assert len(payload["buildings"]) == 2


class TestPerSlotIndex:
    def test_spec_index_kind_applies_per_building(self, fleet_registry):
        for floor in (0, 1):
            hq = fleet_registry.slot("HQ", floor).entry.localizer.index_describe()
            lab = fleet_registry.slot("LAB", floor).entry.localizer.index_describe()
            assert hq is None or hq.get("kind") == "exhaustive"
            assert lab["kind"] == "kmeans"

    def test_index_is_part_of_model_identity(self, fleet_registry):
        digests = {s.entry.key.digest for s in fleet_registry.slots()}
        assert len(digests) == 4  # four distinct fitted artifacts

    def test_spec_kind_override_keeps_fleet_wide_shard_tuning(self):
        # "HQ:2:region" with a fleet-wide kmeans config overrides only
        # the *kind*; the user's n_shards/n_probe tuning must survive.
        from repro.index import IndexConfig

        registry = FleetRegistry.from_specs(
            parse_fleet_spec("A:2:region"),
            framework="KNN",
            seed=0,
            fast=True,
            index=IndexConfig(kind="kmeans", n_shards=8, n_probe=3),
            months=2,
            aps_per_floor=10,
        )
        for slot in registry.slots():
            assert slot.index.kind == "region"
            assert slot.index.n_shards == 8
            assert slot.index.n_probe == 3


class TestSharedStore:
    def test_all_slots_share_one_store(self, fleet_registry):
        store_digests = {e.key.digest for e in fleet_registry.store.entries()}
        slot_digests = {s.entry.key.digest for s in fleet_registry.slots()}
        assert slot_digests <= store_digests

    def test_duplicate_building_rejected(self, fleet_registry):
        suite = fleet_registry.building("HQ").suite
        with pytest.raises(ValueError, match="already registered"):
            fleet_registry.add_building("HQ", suite)

    def test_same_content_is_warm_not_refit(self, fleet_registry):
        # Re-adding identical content under a new name reuses the warm
        # fitted models (content-addressed store, not name-addressed).
        fits_before = fleet_registry.store.fits
        registry2 = FleetRegistry(store=fleet_registry.store)
        registry2.add_building(
            "HQ-COPY", fleet_registry.building("HQ").suite,
            framework="KNN", seed=0, fast=True,
        )
        assert fleet_registry.store.fits == fits_before


class TestPersistence:
    def test_restart_warm_loads_every_slot(self, tmp_path):
        spec = parse_fleet_spec("A:2")
        kwargs = dict(
            framework="KNN", seed=3, fast=True, months=2, aps_per_floor=10
        )
        first = FleetRegistry.from_specs(
            spec, model_dir=tmp_path / "models", **kwargs
        )
        assert all(s.entry.source == "fitted" for s in first.slots())
        second = FleetRegistry.from_specs(
            spec, model_dir=tmp_path / "models", **kwargs
        )
        assert all(s.entry.source == "disk" for s in second.slots())
        for a, b in zip(first.slots(), second.slots()):
            assert a.entry.key.digest == b.entry.key.digest


class TestFloorSuite:
    def test_slot_suite_matches_building_floor(self, fleet_registry):
        deployment = fleet_registry.building("HQ")
        for floor in deployment.floors:
            suite = floor_suite(deployment.suite, floor)
            sliced = deployment.suite.train.floor_slice(floor)
            np.testing.assert_array_equal(suite.train.rssi, sliced.rssi)
            # Floorplan-local contiguous labels, building-wide AP columns.
            assert int(suite.train.rp_indices.min()) == 0
            assert (
                int(suite.train.rp_indices.max())
                < suite.floorplan.n_reference_points
            )
            assert suite.n_aps == deployment.suite.train.n_aps
            assert suite.metadata["floor"] == floor

    def test_test_epochs_use_train_offset(self, fleet_registry):
        deployment = fleet_registry.building("LAB")
        suite = floor_suite(deployment.suite, 1)
        for ds in suite.test_epochs:
            assert int(ds.rp_indices.min()) >= 0
            assert int(ds.rp_indices.max()) < suite.floorplan.n_reference_points

    def test_empty_epoch_slice_survives_with_pinned_offset(self, fleet_registry):
        # A test month with zero scans on a floor must remap to an
        # empty dataset, not crash slot construction (real corpora have
        # unevenly surveyed months).
        from repro.multifloor import floor_local_dataset

        deployment = fleet_registry.building("HQ")
        ds = deployment.suite.test_epochs[0]
        only_f0 = ds.select(ds.floor_indices == 0)
        floorplan = deployment.suite.building.floor(1)
        empty = floor_local_dataset(only_f0, 1, floorplan, rp_offset=66)
        assert empty.n_samples == 0
        assert empty.n_aps == ds.n_aps
        with pytest.raises(ValueError, match="rp_offset"):
            floor_local_dataset(only_f0, 1, floorplan)
