"""ScanRouter: the oracle bit-identity property, accuracy, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.access_point import NO_SIGNAL_DBM

from .conftest import direct_slot_predictions


class TestOracleBitIdentity:
    """Acceptance bar: forced-oracle routing == direct slot queries."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_forced_routing_is_bit_identical_to_direct(
        self, data, fleet_registry, fleet_router, fleet_traffic
    ):
        scans, true_b, true_f, _ = fleet_traffic
        rows = data.draw(
            st.lists(
                st.integers(0, scans.shape[0] - 1),
                min_size=1,
                max_size=32,
            )
        )
        rows = np.asarray(rows)
        subset = scans[rows]
        decision = fleet_router.decide(true_b[rows], true_f[rows])
        routed, _ = fleet_router.predict(subset, decision=decision)
        direct = direct_slot_predictions(
            fleet_registry, subset, true_b[rows], true_f[rows]
        )
        np.testing.assert_array_equal(routed, direct)

    def test_hierarchical_routing_matches_its_own_decision(
        self, fleet_registry, fleet_router, fleet_traffic
    ):
        # Whatever the router decides, the grouped batch answers must be
        # bit-identical to querying each *decided* slot directly.
        scans = fleet_traffic[0]
        routed, decision = fleet_router.predict(scans)
        direct = direct_slot_predictions(
            fleet_registry, scans, decision.building_idx, decision.floors
        )
        np.testing.assert_array_equal(routed, direct)


class TestRoutingAccuracy:
    def test_epoch0_routing_is_accurate(self, fleet_router, fleet_traffic):
        scans, true_b, true_f, _ = fleet_traffic
        decision = fleet_router.route(scans)
        assert (decision.building_idx == true_b).mean() == 1.0
        assert ((decision.floors == true_f) & (decision.building_idx == true_b)).mean() > 0.9

    def test_decisions_are_deterministic(self, fleet_router, fleet_traffic):
        scans = fleet_traffic[0][:64]
        a = fleet_router.route(scans)
        b = fleet_router.route(scans)
        np.testing.assert_array_equal(a.building_idx, b.building_idx)
        np.testing.assert_array_equal(a.floors, b.floors)


class TestForcing:
    def test_decide_flags_forced(self, fleet_router, fleet_traffic):
        _, true_b, true_f, _ = fleet_traffic
        assert fleet_router.decide(true_b[:4], true_f[:4]).forced
        assert not fleet_router.route(fleet_traffic[0][:4]).forced

    def test_decide_rejects_unknown_slots(self, fleet_router, fleet_traffic):
        _, true_b, true_f, _ = fleet_traffic
        with pytest.raises(ValueError, match="no fitted floor"):
            fleet_router.decide(true_b[:2], np.array([9, 9]))
        with pytest.raises(ValueError, match="building index"):
            fleet_router.decide(np.array([5, 5]), true_f[:2])

    def test_decide_slot_pins_every_row(self, fleet_registry, fleet_router):
        decision = fleet_router.decide_slot("LAB", 1, n_rows=3)
        assert decision.forced
        assert set(decision.floors.tolist()) == {1}
        labels = [s.label for s in decision.slot_ids(fleet_registry)]
        assert labels == ["LAB/f1"] * 3
        with pytest.raises(KeyError):
            fleet_router.decide_slot("LAB", 9, n_rows=1)

    def test_route_building_classifies_floor_only(
        self, fleet_router, fleet_traffic
    ):
        scans, true_b, true_f, _ = fleet_traffic
        rows = np.flatnonzero(true_b == 1)[:16]
        decision = fleet_router.route_building(scans[rows], "LAB")
        assert decision.forced
        assert set(decision.building_idx.tolist()) == {1}
        assert (decision.floors == true_f[rows]).mean() > 0.9


class TestEdgeCases:
    def test_all_silent_scan_routes_deterministically(
        self, fleet_registry, fleet_router
    ):
        silent = np.full((1, fleet_registry.n_aps), NO_SIGNAL_DBM)
        decision = fleet_router.route(silent)
        assert decision.building_idx[0] == 0  # block-order tie-break
        assert int(decision.floors[0]) in fleet_registry.buildings[0].floors
        coords, _ = fleet_router.predict(silent)
        assert coords.shape == (1, 2) and np.isfinite(coords).all()

    def test_wrong_width_rejected(self, fleet_router):
        with pytest.raises(ValueError, match="fleet-wide"):
            fleet_router.check_scans(np.zeros((2, 3)))

    def test_single_row_vector_accepted(self, fleet_registry, fleet_router):
        row = np.full(fleet_registry.n_aps, NO_SIGNAL_DBM)
        assert fleet_router.check_scans(row).shape == (1, fleet_registry.n_aps)

    def test_stale_decision_size_rejected(self, fleet_router, fleet_traffic):
        scans, true_b, true_f, _ = fleet_traffic
        decision = fleet_router.decide(true_b[:3], true_f[:3])
        with pytest.raises(ValueError, match="decision covers"):
            fleet_router.predict(scans[:5], decision=decision)

    def test_empty_batch_rejected_cleanly(self, fleet_registry, fleet_router):
        with pytest.raises(ValueError, match="at least one scan row"):
            fleet_router.route(np.empty((0, fleet_registry.n_aps)))

    def test_hand_built_decision_with_unfitted_slot_rejected(
        self, fleet_router, fleet_traffic
    ):
        # A decision naming a slot the fleet doesn't serve must raise,
        # never return unwritten coordinate memory for the dropped rows.
        from repro.fleet import RoutingDecision

        decision = RoutingDecision(
            building_idx=np.array([0, 0]), floors=np.array([0, 99])
        )
        with pytest.raises(ValueError, match="outside the fleet"):
            fleet_router.predict(fleet_traffic[0][:2], decision=decision)
