"""FleetServer HTTP: routing fields, forced slots, /fleet, 429 overload."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.fleet import FleetDispatcher, FleetServer

from .conftest import direct_slot_predictions


@pytest.fixture(scope="module")
def server(fleet_registry):
    dispatcher = FleetDispatcher(fleet_registry, batch_window_ms=1.0)
    srv = FleetServer(fleet_registry, dispatcher, port=0)
    handle = srv.start_background()
    yield srv
    handle.shutdown()


def _request(server, method, path, payload=None, raw_body=None):
    # Wire protocol v1 requires api_version in every body; these tests
    # exercise routing semantics, so declare it unless a case overrides.
    if payload is not None and "api_version" not in payload:
        payload = {"api_version": 1, **payload}
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, json.loads(data)


class TestFleetEndpoint:
    def test_topology(self, server, fleet_registry):
        status, body = _request(server, "GET", "/fleet")
        assert status == 200
        assert body["n_buildings"] == 2
        assert body["n_slots"] == 4
        assert [b["building"] for b in body["buildings"]] == ["HQ", "LAB"]
        assert body["buildings"][0]["ap_range"][0] == 0
        assert body["dispatch"]["admission"]["max_pending_rows"] > 0

    def test_wrong_method(self, server):
        status, body = _request(server, "POST", "/fleet", payload={})
        assert status == 405


class TestHealthz:
    def test_fleet_mode_health(self, server):
        status, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["mode"] == "fleet"
        assert body["n_slots"] == 4
        assert "admission" in body and "fleet" in body


class TestModels:
    def test_per_slot_shard_and_routing_stats(self, server, fleet_traffic):
        # Drive one routed batch first so the counters are non-trivial.
        scans = fleet_traffic[0]
        status, _ = _request(
            server, "POST", "/localize_batch",
            payload={"rssi": scans[:8].tolist()},
        )
        assert status == 200
        status, body = _request(server, "GET", "/models")
        assert status == 200
        assert len(body["models"]) == 4
        assert set(body["slots"]) == {"HQ/f0", "HQ/f1", "LAB/f0", "LAB/f1"}
        routed_rows = sum(
            s["routing"]["rows"] for s in body["slots"].values()
        )
        assert routed_rows >= 8
        # LAB slots serve a kmeans-sharded radio map; the shard stats
        # must surface through the store's model descriptions.
        lab = [m for m in body["models"] if "kmeans" in str(m.get("index"))]
        assert len(lab) == 2


class TestLocalize:
    def test_single_scan_routing_fields(self, server, fleet_traffic):
        scans, true_b, true_f, _ = fleet_traffic
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": scans[0].tolist()}
        )
        assert status == 200
        assert body["routing"]["building"] in ("HQ", "LAB")
        assert isinstance(body["routing"]["floor"], int)
        assert body["routing"]["forced"] is False

    def test_forced_batch_bit_identical_to_direct(
        self, server, fleet_registry, fleet_traffic
    ):
        """The oracle-over-HTTP acceptance check, per slot."""
        scans, true_b, true_f, _ = fleet_traffic
        for j, deployment in enumerate(fleet_registry.buildings):
            for floor in deployment.floors:
                rows = np.flatnonzero((true_b == j) & (true_f == floor))[:6]
                status, body = _request(
                    server,
                    "POST",
                    "/localize_batch",
                    payload={
                        "rssi": scans[rows].tolist(),
                        "building": deployment.name,
                        "floor": int(floor),
                    },
                )
                assert status == 200
                assert all(
                    r == {"building": deployment.name, "floor": floor,
                          "forced": True}
                    for r in body["routing"]
                )
                direct = direct_slot_predictions(
                    fleet_registry, scans[rows], true_b[rows], true_f[rows]
                )
                np.testing.assert_array_equal(
                    np.asarray(body["locations"]), direct
                )

    def test_building_only_pin_classifies_floor(
        self, server, fleet_traffic
    ):
        scans, true_b, true_f, _ = fleet_traffic
        rows = np.flatnonzero(true_b == 1)[:4]
        status, body = _request(
            server,
            "POST",
            "/localize_batch",
            payload={"rssi": scans[rows].tolist(), "building": "LAB"},
        )
        assert status == 200
        assert all(r["building"] == "LAB" and r["forced"] for r in body["routing"])


class TestClientErrors:
    def test_unknown_building(self, server, fleet_traffic):
        status, body = _request(
            server, "POST", "/localize",
            payload={"rssi": fleet_traffic[0][0].tolist(), "building": "ANNEX"},
        )
        assert status == 400
        assert "unknown building" in body["error"]["message"]

    def test_unknown_floor(self, server, fleet_traffic):
        status, body = _request(
            server, "POST", "/localize",
            payload={
                "rssi": fleet_traffic[0][0].tolist(),
                "building": "HQ",
                "floor": 9,
            },
        )
        assert status == 400
        assert "no floor 9" in body["error"]["message"]

    def test_floor_without_building(self, server, fleet_traffic):
        status, body = _request(
            server, "POST", "/localize",
            payload={"rssi": fleet_traffic[0][0].tolist(), "floor": 0},
        )
        assert status == 400
        assert "requires" in body["error"]["message"]

    def test_wrong_scan_width(self, server):
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": [-50.0, -60.0]}
        )
        assert status == 400


class TestBackpressureOverHTTP:
    def test_429_with_retry_hint(self, fleet_registry, fleet_traffic):
        import threading
        import time

        # A long batch window holds the first request's rows in flight
        # (max_batch 256 >> 8 rows, so the flush waits the full window),
        # making the overload deterministic for the second request.
        dispatcher = FleetDispatcher(
            fleet_registry, batch_window_ms=500.0, max_pending_rows=8
        )
        srv = FleetServer(fleet_registry, dispatcher, port=0)
        handle = srv.start_background()
        try:
            first: dict = {}

            def occupy():
                first["result"] = _request(
                    srv,
                    "POST",
                    "/localize_batch",
                    payload={"rssi": fleet_traffic[0][:8].tolist()},
                )

            thread = threading.Thread(target=occupy)
            thread.start()
            deadline = time.monotonic() + 5.0
            while dispatcher.pending_rows < 8:  # first request admitted
                assert time.monotonic() < deadline, "first request never queued"
                time.sleep(0.01)
            status, body = _request(
                srv,
                "POST",
                "/localize_batch",
                payload={"rssi": fleet_traffic[0][8:10].tolist()},
            )
            assert status == 429
            assert body["max_pending_rows"] == 8
            assert body["retry_after_ms"] > 0
            thread.join(timeout=10)
            # The occupying request completed untouched by the rejection.
            assert first["result"][0] == 200
            # The server keeps answering once the queue drains.
            status, body = _request(
                srv, "POST", "/localize",
                payload={"rssi": fleet_traffic[0][0].tolist()},
            )
            assert status == 200
        finally:
            handle.shutdown()

    def test_unservable_batch_is_400(self, fleet_registry, fleet_traffic):
        dispatcher = FleetDispatcher(fleet_registry, max_pending_rows=2)
        srv = FleetServer(fleet_registry, dispatcher, port=0)
        handle = srv.start_background()
        try:
            status, body = _request(
                srv,
                "POST",
                "/localize_batch",
                payload={"rssi": fleet_traffic[0][:5].tolist()},
            )
            assert status == 400
            assert "never be admitted" in body["error"]["message"]
        finally:
            handle.shutdown()
