"""Multi-process fleet execution: bit-identity, crashes, rebalance, shm.

The contracts pinned here are the tentpole's acceptance bar:

* answers from a :class:`WorkerPool`-backed dispatcher are
  **bit-identical** to the in-process dispatcher (hypothesis property
  over forced-slot routing + full routed traffic);
* a worker killed mid-batch is retried or fails with the *retryable*
  :class:`WorkerCrashedError` — never a hang — and its replacement
  respawns warm;
* rebalance under sustained load drops zero requests and keeps the
  ``pending_rows`` admission invariant;
* every shared-memory segment is released on shutdown (no leaked
  ``/dev/shm`` entries — audited from a subprocess).
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import FleetDispatcher, WorkerCrashedError
from repro.fleet.worker import WorkerPool

from .conftest import direct_slot_predictions


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def mp_dispatcher(fleet_registry):
    d = FleetDispatcher(fleet_registry, batch_window_ms=1.0, workers=2)
    yield d
    d.close()


def _slot_expected(registry, label, scans_rows):
    """Reference answer for rows forced into one slot, computed directly."""
    building, floor = label.split("/f")
    deployment = next(b for b in registry.buildings if b.name == building)
    localizer = deployment.slots[int(floor)].entry.localizer
    return localizer.predict_batched(deployment.block(scans_rows))


class TestBitIdentity:
    def test_executor_mode(self, mp_dispatcher):
        desc = mp_dispatcher.describe()["executor"]
        assert desc["mode"] == "multi-process"
        assert len(desc["workers"]) == 2
        assert desc["shared_segments"] > 0

    @given(
        building=st.integers(min_value=0, max_value=1),
        floor=st.integers(min_value=0, max_value=1),
        picks=st.lists(
            st.integers(min_value=0, max_value=59), min_size=1, max_size=10
        ),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_forced_slot_routing_matches_direct(
        self, mp_dispatcher, fleet_registry, fleet_traffic, building, floor, picks
    ):
        """The pinned property: any rows forced into any slot answer with
        exactly the bytes that slot's localizer produces in-process."""
        scans = fleet_traffic[0]
        rows = scans[np.asarray(picks)]
        deployment = fleet_registry.buildings[building]
        coords, decision = run(
            mp_dispatcher.localize(
                rows, building=deployment.name, floor=floor
            )
        )
        assert decision.forced
        expected = _slot_expected(
            fleet_registry, f"{deployment.name}/f{floor}", rows
        )
        np.testing.assert_array_equal(coords, expected)

    def test_routed_traffic_identical_to_in_process(
        self, mp_dispatcher, fleet_registry, fleet_traffic
    ):
        scans = fleet_traffic[0][:48]
        sp = FleetDispatcher(fleet_registry, batch_window_ms=1.0)
        try:
            mp_coords, mp_decision = run(mp_dispatcher.localize(scans))
            sp_coords, sp_decision = run(sp.localize(scans))
        finally:
            sp.close()
        np.testing.assert_array_equal(
            mp_decision.building_idx, sp_decision.building_idx
        )
        np.testing.assert_array_equal(mp_decision.floors, sp_decision.floors)
        np.testing.assert_array_equal(mp_coords, sp_coords)

    def test_concurrent_coalesced_requests_identical(
        self, mp_dispatcher, fleet_registry, fleet_traffic
    ):
        scans = fleet_traffic[0][:32]

        async def go():
            chunks = [scans[i : i + 4] for i in range(0, 32, 4)]
            return await asyncio.gather(
                *(mp_dispatcher.localize(c) for c in chunks)
            )

        results = run(go())
        coords = np.vstack([c for c, _ in results])
        b = np.concatenate([d.building_idx for _, d in results])
        f = np.concatenate([d.floors for _, d in results])
        direct = direct_slot_predictions(fleet_registry, scans, b, f)
        np.testing.assert_array_equal(coords, direct)

    def test_spawn_start_method_identical(self, fleet_registry, fleet_traffic):
        # One worker keeps the re-import cost of spawn bounded; the
        # point is payload picklability + placement determinism, which
        # don't depend on worker count.
        scans = fleet_traffic[0][:12]
        d = FleetDispatcher(
            fleet_registry, batch_window_ms=1.0, workers=1,
            start_method="spawn",
        )
        try:
            assert d.describe()["executor"]["start_method"] == "spawn"
            coords, decision = run(d.localize(scans))
        finally:
            d.close()
        direct = direct_slot_predictions(
            fleet_registry, scans, decision.building_idx, decision.floors
        )
        np.testing.assert_array_equal(coords, direct)


class TestCrashRestart:
    @pytest.fixture()
    def dispatcher(self, fleet_registry):
        d = FleetDispatcher(fleet_registry, batch_window_ms=1.0, workers=2)
        yield d
        d.close()

    def test_worker_killed_mid_batch_never_hangs(
        self, dispatcher, fleet_registry, fleet_traffic
    ):
        """SIGKILL racing an in-flight batch: the request is either
        retried transparently (bit-identical answer) or fails with the
        retryable 503 error — and the pool serves again right after."""
        pool = dispatcher.executor
        label = "HQ/f0"
        victim = pool._workers[pool._owner[label]]
        scans = fleet_traffic[0]
        rows = scans[:40]

        async def go():
            task = asyncio.ensure_future(
                dispatcher.localize(rows, building="HQ", floor=0)
            )
            await asyncio.sleep(0.002)
            os.kill(victim.pid, signal.SIGKILL)
            return await asyncio.wait_for(task, timeout=60.0)

        try:
            coords, _ = run(go())
            np.testing.assert_array_equal(
                coords, _slot_expected(fleet_registry, label, rows)
            )
        except WorkerCrashedError as exc:
            assert "retry" in str(exc)  # the 503 contract: retryable
        # The admission reservation was released either way...
        assert dispatcher.pending_rows == 0
        # ...and the respawned worker answers, warm, bit-identically.
        coords, _ = run(
            asyncio.wait_for(
                dispatcher.localize(rows[:6], building="HQ", floor=0),
                timeout=60.0,
            )
        )
        np.testing.assert_array_equal(
            coords, _slot_expected(fleet_registry, label, rows[:6])
        )
        stats = {w["worker"]: w for w in pool.worker_stats()}
        assert stats[victim.id]["restarts"] >= 1
        assert stats[victim.id]["alive"]

    def test_kill_between_requests_is_invisible(
        self, dispatcher, fleet_registry, fleet_traffic
    ):
        pool = dispatcher.executor
        label = "LAB/f1"
        victim = pool._workers[pool._owner[label]]
        os.kill(victim.pid, signal.SIGKILL)
        victim.process.join(timeout=10.0)
        rows = fleet_traffic[0][:8]
        coords, _ = run(
            asyncio.wait_for(
                dispatcher.localize(rows, building="LAB", floor=1),
                timeout=60.0,
            )
        )
        np.testing.assert_array_equal(
            coords, _slot_expected(fleet_registry, label, rows)
        )


class TestRebalance:
    @pytest.fixture()
    def dispatcher(self, fleet_registry):
        d = FleetDispatcher(fleet_registry, batch_window_ms=1.0, workers=2)
        yield d
        d.close()

    def test_grow_and_shrink_under_sustained_load(
        self, dispatcher, fleet_registry, fleet_traffic
    ):
        """Zero dropped requests across 2 -> 3 -> 1 while traffic flows;
        every answer stays bit-identical and pending_rows stays sane."""
        scans = fleet_traffic[0]
        failures: list[BaseException] = []
        checked = {"n": 0}
        pending_seen: list[int] = []

        async def load(stop: asyncio.Event):
            k = 0
            while not stop.is_set():
                chunk = scans[(k * 8) % 56 : (k * 8) % 56 + 8]
                k += 1
                try:
                    coords, decision = await dispatcher.localize(chunk)
                except BaseException as exc:  # noqa: BLE001 - audit all
                    failures.append(exc)
                    continue
                direct = direct_slot_predictions(
                    fleet_registry, chunk,
                    decision.building_idx, decision.floors,
                )
                np.testing.assert_array_equal(coords, direct)
                checked["n"] += 1
                pending_seen.append(dispatcher.pending_rows)

        async def go():
            stop = asyncio.Event()
            loaders = [asyncio.ensure_future(load(stop)) for _ in range(3)]
            await asyncio.sleep(0.05)
            grown = await dispatcher.set_workers(3)
            await asyncio.sleep(0.05)
            shrunk = await dispatcher.set_workers(1)
            await asyncio.sleep(0.05)
            stop.set()
            await asyncio.gather(*loaders)
            return grown, shrunk

        grown, shrunk = run(asyncio.wait_for(go(), timeout=120.0))
        assert not failures
        assert checked["n"] > 0
        assert grown["workers"] == 3 and 2 in grown["spawned_workers"]
        assert shrunk["workers"] == 1
        assert sorted(shrunk["retired_workers"]) == [1, 2]
        assert dispatcher.workers == 1
        assert dispatcher.pending_rows == 0
        assert all(
            0 <= p <= dispatcher.max_pending_rows for p in pending_seen
        )
        # The surviving worker owns the whole fleet, warm.
        stats = dispatcher.executor.worker_stats()
        assert [w["worker"] for w in stats] == [0]
        assert sorted(stats[0]["slots"]) == sorted(
            s.slot.label for s in fleet_registry.slots()
        )

    def test_resize_moves_only_consistent_hash_arcs(self, dispatcher):
        summary = run(dispatcher.set_workers(3))
        labels = {s for s in dispatcher.executor._owner}
        moved = set(summary["moved_slots"])
        assert moved <= labels
        # Growth never shuffles slots between survivors.
        for label in moved:
            assert dispatcher.executor._owner[label] == 2

    def test_set_workers_requires_worker_pool(self, fleet_registry):
        d = FleetDispatcher(fleet_registry)
        try:
            with pytest.raises(RuntimeError, match="multi-process"):
                run(d.set_workers(2))
        finally:
            d.close()


class TestExecutorSeam:
    def test_unknown_slot_rejected(self, mp_dispatcher):
        with pytest.raises(KeyError, match="unknown slot"):
            run(
                mp_dispatcher.executor.submit(
                    "NOWHERE/f0", np.zeros((1, 4))
                )
            )

    def test_closed_pool_rejects(self, fleet_registry):
        pool = WorkerPool(fleet_registry, workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            run(pool.submit("HQ/f0", np.zeros((1, 4))))

    def test_slot_stats_shape(self, mp_dispatcher, fleet_traffic):
        run(mp_dispatcher.localize(fleet_traffic[0][:8]))
        stats = mp_dispatcher.slot_stats()
        assert set(stats) == {"HQ/f0", "HQ/f1", "LAB/f0", "LAB/f1"}
        for entry in stats.values():
            assert entry["dispatcher"]["worker"] in (0, 1)
            assert entry["dispatcher"]["errors"] == 0
        total = sum(e["dispatcher"]["rows"] for e in stats.values())
        assert total >= 8

    def test_workers_validation(self, fleet_registry):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(fleet_registry, workers=0)
        with pytest.raises(ValueError, match="workers"):
            FleetDispatcher(fleet_registry, workers=-1)


class TestSharedMemoryLifecycle:
    def test_segments_exist_while_open_and_vanish_on_close(self):
        """Audited from a subprocess so no session fixture can mask a
        leak: after close(), zero repro-shm-* entries remain."""
        import json
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        code = """
import glob, json
from repro.fleet import FleetDispatcher, parse_fleet_spec
from repro.fleet.registry import FleetRegistry

def segments():
    return set(glob.glob("/dev/shm/repro-shm-*"))

before = segments()
registry = FleetRegistry.from_specs(
    parse_fleet_spec("HQ:2"), framework="KNN", seed=0, fast=True,
    months=2, aps_per_floor=8,
)
dispatcher = FleetDispatcher(registry, batch_window_ms=1.0, workers=2)
while_open = segments() - before
dispatcher.close()
leaked = segments() - before
print(json.dumps({
    "while_open": len(while_open), "leaked": sorted(leaked),
}))
"""
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": src},
            timeout=300,
        )
        report = json.loads(out.stdout.strip().splitlines()[-1])
        assert report["while_open"] > 0
        assert report["leaked"] == []

    def test_close_after_crash_still_unlinks_everything(
        self, fleet_registry, fleet_traffic
    ):
        import glob

        before = set(glob.glob("/dev/shm/repro-shm-*"))
        d = FleetDispatcher(fleet_registry, batch_window_ms=1.0, workers=2)
        pool = d.executor
        created = set(glob.glob("/dev/shm/repro-shm-*")) - before
        assert created
        victim = pool._workers[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.process.join(timeout=10.0)
        # Wait for the respawn so close() races nothing.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            current = pool._workers.get(0)
            if current is not None and current is not victim and (
                current.process.is_alive()
            ):
                break
            time.sleep(0.01)
        run(d.localize(fleet_traffic[0][:4]))
        d.close()
        assert set(glob.glob("/dev/shm/repro-shm-*")) & created == set()
