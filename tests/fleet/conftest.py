"""Fleet-layer fixtures: a small two-building fleet, warm and fitted."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetRegistry, ScanRouter, parse_fleet_spec
from repro.fleet.experiment import fleet_epoch_traffic


@pytest.fixture(scope="session")
def fleet_registry():
    """Two buildings x two floors; LAB's radio maps are kmeans-sharded."""
    return FleetRegistry.from_specs(
        parse_fleet_spec("HQ:2,LAB:2:kmeans"),
        framework="KNN",
        seed=0,
        fast=True,
        months=2,
        aps_per_floor=12,
    )


@pytest.fixture(scope="session")
def fleet_router(fleet_registry):
    return ScanRouter(fleet_registry)


@pytest.fixture(scope="session")
def fleet_traffic(fleet_registry):
    """Epoch-0 mixed traffic: (scans, true_building_idx, true_floors, xy)."""
    return fleet_epoch_traffic(fleet_registry, 0)


def direct_slot_predictions(registry, scans, building_idx, floors):
    """Reference answers: query each target slot's localizer directly."""
    coords = np.empty((scans.shape[0], 2), dtype=np.float64)
    for j, deployment in enumerate(registry.buildings):
        for floor in deployment.floors:
            rows = np.flatnonzero((building_idx == j) & (floors == floor))
            if rows.shape[0]:
                localizer = deployment.slots[floor].entry.localizer
                coords[rows] = localizer.predict_batched(
                    deployment.block(scans[rows])
                )
    return coords
