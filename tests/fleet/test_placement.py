"""Consistent-hash slot placement: determinism, balance, minimal moves."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.placement import VNODES, PlacementMove, SlotPlacement


def _labels(n_buildings: int = 40, floors: int = 5) -> list[str]:
    return [
        f"B{b}/f{f}" for b in range(n_buildings) for f in range(floors)
    ]


class TestDeterminism:
    def test_same_topology_same_placement(self):
        labels = _labels()
        a, b = SlotPlacement(4), SlotPlacement(4)
        assert [a.worker_for(s) for s in labels] == [
            b.worker_for(s) for s in labels
        ]

    def test_placement_is_hash_seed_independent(self):
        # The ring must use SHA-256, never Python's per-process seeded
        # hash() — front-end and spawned workers agree without talking.
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        code = (
            "from repro.fleet.placement import SlotPlacement;"
            "p = SlotPlacement(3);"
            "print([p.worker_for(f'B{i}/f0') for i in range(20)])"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": src, "PYTHONHASHSEED": seed},
            ).stdout
            for seed in ("0", "1", "12345")
        }
        assert len(outs) == 1

    def test_assign_covers_every_worker_and_slot(self):
        labels = _labels()
        assignment = SlotPlacement(6).assign(labels)
        assert set(assignment) == set(range(6))
        assert sorted(s for slots in assignment.values() for s in slots) == (
            sorted(labels)
        )


class TestBalance:
    def test_slots_spread_within_a_few_percent(self):
        labels = _labels(100, 10)  # 1000 slots
        counts = [
            len(v) for v in SlotPlacement(4).assign(labels).values()
        ]
        mean = sum(counts) / len(counts)
        assert all(abs(c - mean) / mean < 0.35 for c in counts)

    def test_single_worker_owns_everything(self):
        labels = _labels()
        placement = SlotPlacement(1)
        assert all(placement.worker_for(s) == 0 for s in labels)


class TestMinimalMovement:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_growth_moves_about_one_in_n_plus_one(self, n):
        labels = _labels(60, 5)  # 300 slots
        moves = SlotPlacement(n).moves_to(SlotPlacement(n + 1), labels)
        expected = len(labels) / (n + 1)
        # Generous band: consistent hashing guarantees *only* arc-claimed
        # slots move; naive modulo would move ~n/(n+1) of them.
        assert len(moves) < 2.5 * expected
        assert all(m.target == n for m in moves)  # only onto the new worker

    def test_shrink_only_evacuates_the_retired_worker(self):
        labels = _labels(60, 5)
        big, small = SlotPlacement(5), SlotPlacement(4)
        moves = big.moves_to(small, labels)
        assert all(m.source == 4 for m in moves)
        survivors_kept = [
            s for s in labels if big.worker_for(s) != 4
        ]
        assert all(
            small.worker_for(s) == big.worker_for(s) for s in survivors_kept
        )

    def test_moves_are_exact_diff(self):
        labels = _labels()
        a, b = SlotPlacement(3), SlotPlacement(7)
        moves = {m.slot: m for m in a.moves_to(b, labels)}
        for label in labels:
            src, dst = a.worker_for(label), b.worker_for(label)
            if src == dst:
                assert label not in moves
            else:
                assert moves[label] == PlacementMove(label, src, dst)


class TestProperties:
    @given(
        label=st.text(min_size=1, max_size=30),
        n=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_worker_for_in_range_for_any_label(self, label, n):
        assert 0 <= SlotPlacement(n, vnodes=8).worker_for(label) < n

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotPlacement(0)
        with pytest.raises(ValueError):
            SlotPlacement(2, vnodes=0)

    def test_describe(self):
        desc = SlotPlacement(3).describe()
        assert desc == {
            "strategy": "consistent-hash",
            "n_workers": 3,
            "vnodes": VNODES,
        }
