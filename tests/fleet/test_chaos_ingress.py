"""Hostile-ingress sweep: the chaos corpus against a live FleetServer.

Every :func:`repro.synth.chaos.chaos_corpus` case replays over a real
socket and must get exactly the promised reaction: the right status
code, the structured v1 error envelope (the only shape since the
legacy string form was retired), and the
right keep-alive behavior — connections survive payload-level errors
but close after framing errors and 413s, verified by a follow-up
``/healthz`` on the *same* socket (the desync detector). A half-sent
request that hangs up must be reaped silently with the server staying
healthy.
"""

from __future__ import annotations

import socket

import pytest

from repro.fleet import FleetDispatcher, FleetServer
from repro.synth.chaos import (
    chaos_corpus,
    dropped_keepalive_bytes,
    replay_case,
    replay_corpus,
)


@pytest.fixture(scope="module")
def chaos_server(fleet_registry):
    dispatcher = FleetDispatcher(fleet_registry, batch_window_ms=1.0)
    srv = FleetServer(fleet_registry, dispatcher, port=0)
    handle = srv.start_background()
    yield srv
    handle.shutdown()


@pytest.fixture(scope="module")
def corpus(fleet_registry):
    return chaos_corpus(
        fleet_registry.n_aps, building=fleet_registry.buildings[0].name
    )


@pytest.fixture(scope="module")
def outcomes(chaos_server, corpus):
    results = replay_corpus("127.0.0.1", chaos_server.port, corpus)
    return dict(zip((c.name for c in corpus), results))


class TestStatusContract:
    def test_every_case_gets_its_promised_status(self, corpus, outcomes):
        mismatches = {
            case.name: (case.expect_status, outcomes[case.name].status)
            for case in corpus
            if outcomes[case.name].status != case.expect_status
        }
        assert not mismatches

    def test_nothing_ever_crashes_the_connection_unanswered(self, outcomes):
        # Status 0 would mean the server hung up without responding.
        assert all(outcome.status != 0 for outcome in outcomes.values())


class TestKeepAliveContract:
    def test_connection_survival_matches_contract(self, corpus, outcomes):
        """Keep-alive survives payload errors, dies after framing ones."""
        mismatches = {
            case.name: outcomes[case.name].connection_reused
            for case in corpus
            if outcomes[case.name].connection_reused != (not case.expect_close)
        }
        assert not mismatches

    def test_dropped_keepalive_reaped_silently(
        self, chaos_server, fleet_registry, corpus
    ):
        # Half-send a request, hang up mid-body; the server must reap
        # the connection without desyncing and keep serving others.
        for _ in range(3):
            with socket.create_connection(
                ("127.0.0.1", chaos_server.port), timeout=10.0
            ) as sock:
                sock.sendall(dropped_keepalive_bytes(fleet_registry.n_aps))
        probe = replay_case(
            "127.0.0.1",
            chaos_server.port,
            next(c for c in corpus if c.name == "wrong-width"),
        )
        assert probe.status == 400
        assert probe.connection_reused


class TestErrorEnvelopes:
    def test_every_json_error_is_the_structured_envelope(self, corpus, outcomes):
        """One error shape: {"api_version": 1, "error": {...}}."""
        bad = {}
        for case in corpus:
            payload = outcomes[case.name].payload
            if not payload:
                continue  # framing cases may not parse a body
            error = payload.get("error")
            if (
                payload.get("api_version") != 1
                or not isinstance(error, dict)
                or not error.get("code")
                or not error.get("message")
                or not isinstance(error.get("retryable"), bool)
            ):
                bad[case.name] = payload
        assert not bad

    def test_promised_error_codes(self, corpus, outcomes):
        mismatches = {
            case.name: outcomes[case.name].payload
            for case in corpus
            if case.expect_code is not None
            and outcomes[case.name].payload.get("error", {}).get("code")
            != case.expect_code
        }
        assert not mismatches

    def test_missing_api_version_gets_migration_hint(self, outcomes):
        message = outcomes["missing-api-version"].payload["error"]["message"]
        assert "api_version" in message
        assert "legacy" in message

    def test_batch_too_large_is_terminal_not_retryable(self, outcomes):
        # Structurally unservable: must read as a 400-class reject so
        # clients don't retry-loop on it (429 would mean "try again").
        assert outcomes["batch-too-large"].status == 400

    def test_misroutes_name_the_unknown_slot(self, outcomes):
        payload = outcomes["unknown-building-pin"].payload
        assert "nowhere" in payload["error"]["message"]
