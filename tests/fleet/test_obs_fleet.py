"""Fleet observability: merged /metrics, trace spans, worker liveness.

The acceptance path for PR 9: a ``trace: true`` request through a
``workers=2`` fleet returns per-stage spans whose ``request_id`` shows
up in the structured log, while the /metrics scrape merges the worker
processes' own counters into one exposition.
"""

from __future__ import annotations

import http.client
import io
import json

import pytest

from repro import __version__
from repro.fleet import FleetDispatcher, FleetServer
from repro.obs import parse_prometheus_text


def _request(port, method, path, payload=None):
    if payload is not None and "api_version" not in payload:
        payload = {"api_version": 1, **payload}
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request(
        method, path, body=json.dumps(payload) if payload is not None else None
    )
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, data


def _json(port, method, path, payload=None):
    status, data = _request(port, method, path, payload)
    return status, json.loads(data)


class TestInProcessFleetObservability:
    @pytest.fixture(scope="class")
    def server(self, fleet_registry):
        dispatcher = FleetDispatcher(fleet_registry, batch_window_ms=1.0)
        srv = FleetServer(fleet_registry, dispatcher, port=0, log_json=True)
        srv.log._stream = io.StringIO()
        handle = srv.start_background()
        yield srv
        handle.shutdown()

    def test_trace_spans_cover_every_stage(self, server, fleet_traffic):
        scans = fleet_traffic[0]
        status, body = _json(
            server.port, "POST", "/localize",
            {"rssi": scans[0].tolist(), "trace": True},
        )
        assert status == 200
        stages = [span["stage"] for span in body["trace"]["spans"]]
        for stage in ("admission", "routing", "queue", "compute", "scatter"):
            assert stage in stages, f"missing {stage} in {stages}"

    def test_metrics_scrape_has_fleet_families(self, server, fleet_traffic):
        scans = fleet_traffic[0]
        _json(server.port, "POST", "/localize", {"rssi": scans[0].tolist()})
        status, data = _request(server.port, "GET", "/metrics")
        assert status == 200
        families = parse_prometheus_text(data.decode())
        assert "repro_fleet_requests_total" in families
        assert "repro_routing_seconds" in families
        assert "repro_fleet_pending_rows" in families
        assert "repro_batch_compute_seconds" in families

    def test_healthz_reports_in_process_mode(self, server):
        status, body = _json(server.port, "GET", "/healthz")
        assert status == 200
        assert body["version"] == __version__
        assert body["workers"] == {"mode": "in-process"}


class TestWorkerFleetObservability:
    """The PR acceptance criterion, end to end with worker processes."""

    @pytest.fixture(scope="class")
    def server(self, fleet_registry):
        dispatcher = FleetDispatcher(
            fleet_registry, batch_window_ms=1.0, workers=2
        )
        srv = FleetServer(fleet_registry, dispatcher, port=0, log_json=True)
        srv.log._stream = io.StringIO()
        handle = srv.start_background()
        yield srv
        handle.shutdown()

    def test_traced_request_spans_log_and_metrics(self, server, fleet_traffic):
        scans = fleet_traffic[0]
        status, body = _json(
            server.port, "POST", "/localize_batch",
            {
                "rssi": scans[:4].tolist(),
                "trace": True,
                "request_id": "fleet-accept-1",
            },
        )
        assert status == 200
        trace = body["trace"]
        assert trace["request_id"] == "fleet-accept-1"
        stages = [span["stage"] for span in trace["spans"]]
        for stage in ("admission", "routing", "queue", "compute", "scatter"):
            assert stage in stages, f"missing {stage} in {stages}"
        compute = [s for s in trace["spans"] if s["stage"] == "compute"]
        assert all("slot" in span for span in compute)

        # The same request_id appears in the structured JSON log.
        records = [
            json.loads(line)
            for line in server.log._stream.getvalue().splitlines()
        ]
        matched = [
            r for r in records if r.get("request_id") == "fleet-accept-1"
        ]
        assert matched and matched[-1]["status"] == 200
        assert matched[-1]["component"] == "fleet"

        # And the scrape shows worker-side counters merged in.
        status, data = _request(server.port, "GET", "/metrics")
        assert status == 200
        families = parse_prometheus_text(data.decode())
        rows = families["repro_worker_rows_total"]["samples"]
        assert sum(rows.values()) >= 4
        workers = {dict(labels)["worker"] for (_, labels) in rows}
        assert workers  # at least one worker recorded rows
        alive = families["repro_fleet_workers_alive"]["samples"]
        assert list(alive.values()) == [2.0]

    def test_healthz_worker_liveness_summary(self, server):
        status, body = _json(server.port, "GET", "/healthz")
        assert status == 200
        summary = body["workers"]
        assert summary["mode"] == "multi-process"
        assert summary["workers"] == 2
        assert summary["alive"] == 2
        assert summary["restarts"] == 0
