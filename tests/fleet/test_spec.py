"""Building-spec grammar: parsing, round-trips, pointed errors."""

from __future__ import annotations

import pytest

from repro.fleet import BuildingSpec, format_fleet_spec, parse_fleet_spec


class TestParse:
    def test_basic(self):
        specs = parse_fleet_spec("HQ:2,LAB:3")
        assert [(s.name, s.n_floors) for s in specs] == [("HQ", 2), ("LAB", 3)]
        assert all(s.index_kind is None for s in specs)

    def test_index_kind(self):
        specs = parse_fleet_spec("HQ:2:kmeans,LAB:2:region")
        assert [s.index_kind for s in specs] == ["kmeans", "region"]

    def test_whitespace_and_case_tolerance(self):
        specs = parse_fleet_spec("  HQ:2 , LAB:2:KMEANS ")
        assert [s.name for s in specs] == ["HQ", "LAB"]
        assert specs[1].index_kind == "kmeans"

    def test_round_trip(self):
        spec = "HQ:2,LAB:3:kmeans"
        assert format_fleet_spec(parse_fleet_spec(spec)) == spec


class TestErrors:
    @pytest.mark.parametrize("bad", ["", "  ", ","])
    def test_empty(self, bad):
        with pytest.raises(ValueError, match="empty"):
            parse_fleet_spec(bad)

    def test_malformed_token(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_fleet_spec("HQ")

    def test_non_integer_floors(self):
        with pytest.raises(ValueError, match="not an integer"):
            parse_fleet_spec("HQ:two")

    def test_duplicate_building(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_fleet_spec("HQ:2,HQ:3")

    def test_unknown_index_kind(self):
        with pytest.raises(ValueError, match="index kind"):
            parse_fleet_spec("HQ:2:faiss")

    @pytest.mark.parametrize("floors", [0, 1, -3, 999])
    def test_floor_range(self, floors):
        with pytest.raises(ValueError, match="n_floors"):
            parse_fleet_spec(f"HQ:{floors}")

    def test_bad_name(self):
        with pytest.raises(ValueError, match="alphanumeric"):
            BuildingSpec(name="a b", n_floors=2)
