"""FleetDispatcher: coalescing identity, bounded admission, counters."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.fleet import FleetDispatcher, FleetOverloadError

from .conftest import direct_slot_predictions


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def dispatcher(fleet_registry):
    d = FleetDispatcher(fleet_registry, batch_window_ms=1.0)
    yield d
    d.close()


class TestDispatchIdentity:
    def test_concurrent_requests_bit_identical_to_direct(
        self, fleet_registry, dispatcher, fleet_traffic
    ):
        scans = fleet_traffic[0][:48]

        async def go():
            chunks = [scans[i : i + 8] for i in range(0, scans.shape[0], 8)]
            return await asyncio.gather(
                *(dispatcher.localize(c) for c in chunks)
            )

        results = run(go())
        coords = np.vstack([c for c, _ in results])
        decision_b = np.concatenate([d.building_idx for _, d in results])
        decision_f = np.concatenate([d.floors for _, d in results])
        direct = direct_slot_predictions(
            fleet_registry, scans, decision_b, decision_f
        )
        np.testing.assert_array_equal(coords, direct)

    def test_forced_decision_respected(
        self, dispatcher, fleet_registry, fleet_traffic
    ):
        scans, true_b, true_f, _ = fleet_traffic

        async def go():
            decision = dispatcher.router.decide(true_b[:8], true_f[:8])
            return await dispatcher.localize(scans[:8], decision=decision)

        coords, decision = run(go())
        assert decision.forced
        direct = direct_slot_predictions(
            fleet_registry, scans[:8], true_b[:8], true_f[:8]
        )
        np.testing.assert_array_equal(coords, direct)


class TestBackpressure:
    def test_overload_rejects_without_corrupting_inflight(
        self, fleet_registry, fleet_traffic
    ):
        """Acceptance bar: 429-style rejection never touches admitted work."""
        scans = fleet_traffic[0]
        dispatcher = FleetDispatcher(
            fleet_registry, batch_window_ms=1.0, max_pending_rows=12
        )
        chunks = [scans[i * 6 : (i + 1) * 6] for i in range(6)]

        async def go():
            return await asyncio.gather(
                *(dispatcher.localize(c) for c in chunks),
                return_exceptions=True,
            )

        try:
            results = run(go())
            rejected = [r for r in results if isinstance(r, FleetOverloadError)]
            admitted = [r for r in results if not isinstance(r, Exception)]
            assert rejected, "overload never triggered"
            assert admitted, "every request was rejected"
            for result, chunk in zip(results, chunks):
                if isinstance(result, Exception):
                    continue
                coords, decision = result
                direct = direct_slot_predictions(
                    fleet_registry, chunk, decision.building_idx, decision.floors
                )
                np.testing.assert_array_equal(coords, direct)
            assert dispatcher.stats.rejected_requests == len(rejected)
            # The queue drained: admission state is fully released.
            assert dispatcher.pending_rows == 0
        finally:
            dispatcher.close()

    def test_recovers_after_overload(self, fleet_registry, fleet_traffic):
        scans = fleet_traffic[0]
        dispatcher = FleetDispatcher(
            fleet_registry, batch_window_ms=0.0, max_pending_rows=4
        )

        async def go():
            # Two concurrent 3-row requests against a 4-row bound: the
            # second is rejected while the first is in flight...
            results = await asyncio.gather(
                dispatcher.localize(scans[:3]),
                dispatcher.localize(scans[3:6]),
                return_exceptions=True,
            )
            # ...and once the queue drains, the fleet serves again.
            coords, _ = await dispatcher.localize(scans[:3])
            return results, coords

        try:
            results, coords = run(go())
            kinds = [type(r).__name__ for r in results]
            assert kinds.count("FleetOverloadError") == 1
            assert coords.shape == (3, 2)
        finally:
            dispatcher.close()

    def test_unservable_batch_is_a_client_error_not_a_retry(
        self, fleet_registry, fleet_traffic
    ):
        # A single batch larger than the bound can never be admitted;
        # it must fail as a ValueError (HTTP 400), not a retryable 429.
        dispatcher = FleetDispatcher(fleet_registry, max_pending_rows=2)
        try:
            with pytest.raises(ValueError, match="never be admitted"):
                run(dispatcher.localize(fleet_traffic[0][:3]))
            assert dispatcher.stats.requests == 0
            assert dispatcher.stats.rejected_requests == 0
        finally:
            dispatcher.close()


class TestCounters:
    def test_per_slot_rows_sum_to_admitted(self, dispatcher, fleet_traffic):
        scans = fleet_traffic[0][:40]
        run(dispatcher.localize(scans))
        slot_rows = sum(
            c.rows for c in dispatcher.stats.per_slot.values()
        )
        assert slot_rows == 40 == dispatcher.stats.rows
        assert dispatcher.stats.requests == 1

    def test_forced_rows_counted(self, dispatcher, fleet_traffic):
        scans, true_b, true_f, _ = fleet_traffic

        async def go():
            decision = dispatcher.router.decide(true_b[:5], true_f[:5])
            await dispatcher.localize(scans[:5], decision=decision)

        run(go())
        assert dispatcher.stats.forced_requests == 1
        forced = sum(c.forced_rows for c in dispatcher.stats.per_slot.values())
        assert forced == 5

    def test_describe_shape(self, dispatcher):
        payload = dispatcher.describe()
        assert payload["admission"]["pending_rows"] == 0
        assert set(payload["slots"]) == {
            "HQ/f0", "HQ/f1", "LAB/f0", "LAB/f1",
        }


class TestPinnedRouting:
    def test_building_and_floor_pin(self, dispatcher, fleet_registry, fleet_traffic):
        scans, true_b, true_f, _ = fleet_traffic
        rows = np.flatnonzero((true_b == 1) & (true_f == 0))[:5]
        coords, decision = run(
            dispatcher.localize(scans[rows], building="LAB", floor=0)
        )
        assert decision.forced
        direct = direct_slot_predictions(
            fleet_registry, scans[rows], true_b[rows], true_f[rows]
        )
        np.testing.assert_array_equal(coords, direct)

    def test_building_only_pin_classifies_floor(
        self, dispatcher, fleet_traffic
    ):
        scans, true_b, true_f, _ = fleet_traffic
        rows = np.flatnonzero(true_b == 0)[:6]
        _, decision = run(dispatcher.localize(scans[rows], building="HQ"))
        assert decision.forced
        assert (decision.floors == true_f[rows]).mean() > 0.9

    def test_unknown_pin_raises_and_releases_admission(
        self, dispatcher, fleet_traffic
    ):
        with pytest.raises(KeyError):
            run(dispatcher.localize(fleet_traffic[0][:2], building="ANNEX"))
        with pytest.raises(KeyError):
            run(
                dispatcher.localize(
                    fleet_traffic[0][:2], building="HQ", floor=9
                )
            )
        assert dispatcher.pending_rows == 0

    def test_decision_and_building_are_exclusive(
        self, dispatcher, fleet_traffic
    ):
        scans, true_b, true_f, _ = fleet_traffic
        decision = dispatcher.router.decide(true_b[:2], true_f[:2])
        with pytest.raises(ValueError, match="not both"):
            run(
                dispatcher.localize(
                    scans[:2], decision=decision, building="HQ"
                )
            )


class TestDecisionValidation:
    def test_hand_built_decision_with_unfitted_slot_rejected(
        self, dispatcher, fleet_traffic
    ):
        from repro.fleet import RoutingDecision

        decision = RoutingDecision(
            building_idx=np.array([0, 0]), floors=np.array([0, 99])
        )
        with pytest.raises(ValueError, match="outside the fleet"):
            run(dispatcher.localize(fleet_traffic[0][:2], decision=decision))
        # The reservation is released even on the error path.
        assert dispatcher.pending_rows == 0


class TestLifecycle:
    def test_closed_dispatcher_rejects(self, fleet_registry, fleet_traffic):
        dispatcher = FleetDispatcher(fleet_registry)
        dispatcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            run(dispatcher.localize(fleet_traffic[0][:1]))

    def test_bad_bound_rejected(self, fleet_registry):
        with pytest.raises(ValueError, match="max_pending_rows"):
            FleetDispatcher(fleet_registry, max_pending_rows=0)
