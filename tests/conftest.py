"""Shared fixtures: small, fast dataset/environment objects.

Heavy figure-quality runs live in ``benchmarks/``; tests use miniature
suites (few APs, few CIs) that exercise the same code paths in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SuiteConfig, generate_path_suite
from repro.datasets.fingerprint import FingerprintDataset
from repro.geometry import build_grid_floorplan


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_floorplan():
    """A 5x4 grid of RPs in a small open room."""
    return build_grid_floorplan("tiny", width=12.0, height=10.0, rp_spacing=2.0)


@pytest.fixture(scope="session")
def tiny_suite():
    """A miniature office suite: 24 APs, 6 CIs — seconds to generate."""
    return generate_path_suite(
        "office",
        seed=7,
        config=SuiteConfig(n_aps=24, fpr=4, train_fpr=3),
        n_cis=6,
    )


@pytest.fixture(scope="session")
def tiny_train(tiny_suite):
    return tiny_suite.train


def make_synthetic_dataset(
    n_rps: int = 6,
    fpr: int = 3,
    n_aps: int = 12,
    seed: int = 0,
    spacing: float = 2.0,
) -> FingerprintDataset:
    """A hand-rolled dataset with distinct per-RP RSSI signatures.

    Each RP gets a random base fingerprint; samples add small noise. Much
    faster than the radio simulator and fully controllable for unit tests.
    """
    rng = np.random.default_rng(seed)
    base = rng.uniform(-90.0, -30.0, size=(n_rps, n_aps))
    rows = n_rps * fpr
    rssi = np.empty((rows, n_aps))
    rp_idx = np.empty(rows, dtype=np.int64)
    locs = np.empty((rows, 2))
    for rp in range(n_rps):
        for j in range(fpr):
            row = rp * fpr + j
            rssi[row] = np.clip(base[rp] + rng.normal(0, 1.0, n_aps), -100, 0)
            rp_idx[row] = rp
            locs[row] = (rp % 3 * spacing, rp // 3 * spacing)
    return FingerprintDataset(
        rssi=rssi,
        rp_indices=rp_idx,
        locations=locs,
        times_hours=np.zeros(rows),
        epochs=np.zeros(rows, dtype=np.int64),
    )


@pytest.fixture()
def synthetic_dataset():
    return make_synthetic_dataset()
