"""End-to-end integration tests: dataset -> training -> longitudinal eval.

These run the real pipeline on miniature suites — the same code paths the
figure benches use at full scale.
"""

import numpy as np
import pytest

from repro.baselines import KNNLocalizer, LTKNNLocalizer
from repro.core import StoneConfig, StoneLocalizer
from repro.eval import evaluate_localizer, run_fig3
from repro.eval.experiments import run_fig4

FAST_STONE = dict(epochs=6, steps_per_epoch=12, batch_size=32)


class TestStonePipeline:
    def test_stone_full_pipeline_on_tiny_suite(self, tiny_suite):
        stone = StoneLocalizer(StoneConfig(**FAST_STONE, seed=0))
        result = evaluate_localizer(
            stone, tiny_suite, rng=np.random.default_rng(0)
        )
        errors = result.mean_errors()
        assert errors.shape == (tiny_suite.n_epochs,)
        assert np.isfinite(errors).all()
        # even a lightly trained encoder localizes on the path scale
        floor_diag = np.hypot(
            tiny_suite.floorplan.width, tiny_suite.floorplan.height
        )
        assert errors.mean() < floor_diag / 2

    def test_stone_vs_knn_same_protocol(self, tiny_suite):
        rng = np.random.default_rng(1)
        stone_result = evaluate_localizer(
            StoneLocalizer(StoneConfig(**FAST_STONE, seed=1)), tiny_suite, rng=rng
        )
        knn_result = evaluate_localizer(KNNLocalizer(), tiny_suite)
        assert stone_result.labels() == knn_result.labels()
        # KNN is near-perfect on epoch 0 (same-morning held-out scans)
        assert knn_result.mean_errors()[0] < 2.0

    def test_ltknn_adapts_across_epochs(self, tiny_suite):
        lt = LTKNNLocalizer()
        result = evaluate_localizer(lt, tiny_suite)
        assert np.isfinite(result.mean_errors()).all()
        assert result.requires_retraining

    def test_deterministic_end_to_end(self, tiny_suite):
        errs = []
        for _ in range(2):
            stone = StoneLocalizer(StoneConfig(**FAST_STONE, seed=5))
            result = evaluate_localizer(
                stone, tiny_suite, rng=np.random.default_rng(5)
            )
            errs.append(result.mean_errors())
        np.testing.assert_array_equal(errs[0], errs[1])


class TestFigureSmoke:
    def test_fig3_renders(self):
        result = run_fig3(seed=0)
        assert "office" in result.rendered
        assert result.series["office"]["n_rps"] == 49

    @pytest.mark.slow
    def test_fig4_renders(self):
        result = run_fig4(seed=0, kinds=("office",))
        assert "#" in result.rendered
        assert result.series["office"].shape[0] == 16
