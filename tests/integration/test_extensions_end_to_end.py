"""Integration: the extension subsystems composed, end to end.

One miniature deployment drives STONE through compression and tracking
together — the workflow a real on-device deployment would use: train,
quantize for the phone, then smooth a walk months later.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress import QuantizationSpec, quantize_model
from repro.core import StoneConfig, StoneLocalizer
from repro.datasets import SuiteConfig, generate_path_suite
from repro.radio.time import SimTime
from repro.tracking import (
    TrackingSummary,
    simulate_path_walk,
    track_trajectory,
)

FAST = dict(epochs=5, steps_per_epoch=10, batch_size=32)


@pytest.fixture(scope="module")
def deployment():
    suite = generate_path_suite(
        "office",
        seed=21,
        config=SuiteConfig(n_aps=24, fpr=4, train_fpr=3),
        n_cis=6,
    )
    stone = StoneLocalizer(StoneConfig.for_suite("office", **FAST))
    stone.fit(suite.train, suite.floorplan, rng=np.random.default_rng(0))
    return suite, stone


class TestCompressedTracking:
    def test_quantized_stone_tracks_a_walk(self, deployment):
        suite, stone = deployment
        quantized = quantize_model(stone.encoder, QuantizationSpec(bits=8))
        stone.set_encoder(quantized.dequantized_model())
        env = suite.metadata["environment"]
        walk = simulate_path_walk(
            env,
            start_rp=0,
            end_rp=20,
            epoch=3,
            start_time=SimTime(suite.metadata["ci_hours"][3]),
            rng=np.random.default_rng(4),
        )
        locations, summary = track_trajectory(
            stone, walk, suite.floorplan, method="viterbi"
        )
        assert isinstance(summary, TrackingSummary)
        assert locations.shape == (walk.n_steps, 2)
        # The quantized encoder must still localize the walk coherently
        # on a fresh-ish deployment (generous bound; tiny training).
        assert summary.mean_m < 8.0

    def test_smoothing_consistency_across_methods(self, deployment):
        suite, stone = deployment
        env = suite.metadata["environment"]
        walk = simulate_path_walk(
            env, start_rp=5, end_rp=25, epoch=1, rng=np.random.default_rng(9)
        )
        raw, raw_summary = track_trajectory(
            stone, walk, suite.floorplan, method="raw"
        )
        smooth, smooth_summary = track_trajectory(
            stone, walk, suite.floorplan, method="smooth"
        )
        assert raw.shape == smooth.shape
        # Smoothed tracks move less between steps than raw per-scan
        # output (that is what the motion prior buys).
        raw_jumps = np.linalg.norm(np.diff(raw, axis=0), axis=1).mean()
        smooth_jumps = np.linalg.norm(np.diff(smooth, axis=0), axis=1).mean()
        assert smooth_jumps <= raw_jumps + 0.5
