"""Generation identity: bit-identical per (spec, seed), distinct otherwise.

The contract mirrors the artifact-identity tests in
``tests/index/test_cache_keys.py``: the pair ``(spec.fingerprint(),
seed)`` *is* the dataset identity. Same pair → bit-identical content in
any process (the subprocess test below); any spec-field or seed change
→ different content, so caches keyed on the pair can never serve the
wrong city.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.synth import (
    generate_building_suite,
    generate_suite,
    quick_city,
    suite_content_hash,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def _content(spec, seed, **kwargs) -> str:
    return suite_content_hash(generate_building_suite(spec, seed, **kwargs))


class TestInProcess:
    def test_same_inputs_bit_identical(self, tiny_city):
        assert _content(tiny_city, 0) == _content(tiny_city, 0)

    def test_identity_matrix_never_collides(self, tiny_city):
        """Seed, building and every spec knob shift the content."""
        hashes = [
            _content(tiny_city, 0),
            _content(tiny_city, 1),
            _content(tiny_city, 0, building=1),
            _content(tiny_city.scaled(shadowing_sigma_db=5.0), 0),
            _content(tiny_city.scaled(noise_std_db=0.5), 0),
            _content(tiny_city.scaled(dropout_rate=0.3), 0),
            _content(tiny_city.scaled(environment="basement"), 0),
            _content(tiny_city.scaled(tx_power_dbm=10.0), 0),
        ]
        assert len(set(hashes)) == len(hashes)

    def test_name_only_change_still_distinct(self, tiny_city):
        # The fingerprint (not just radio-relevant fields) feeds the
        # seed material: even a pure rename regenerates different data.
        assert _content(tiny_city, 0) != _content(
            tiny_city.scaled(name="renamed"), 0
        )

    def test_floor_slice_deterministic(self, tiny_city):
        a = generate_suite(tiny_city, seed=0, building=1, floor=1)
        b = generate_suite(tiny_city, seed=0, building=1, floor=1)
        assert suite_content_hash(a) == suite_content_hash(b)
        c = generate_suite(tiny_city, seed=0, building=1, floor=0)
        assert suite_content_hash(a) != suite_content_hash(c)

    def test_metadata_carries_provenance(self, tiny_city_suite, tiny_city):
        md = tiny_city_suite.metadata
        assert md["spec_fingerprint"] == tiny_city.fingerprint()
        assert md["spec"] == tiny_city.to_dict()
        assert md["seed"] == 0 and md["building"] == 0


_SUBPROCESS_CODE = """\
from repro.synth import generate_building_suite, quick_city, suite_content_hash
spec = quick_city(n_buildings=1, floors_per_building=2)
print(suite_content_hash(generate_building_suite(spec, seed={seed})))
"""


@pytest.mark.slow
class TestCrossProcess:
    def _hash_in_subprocess(self, seed: int, hash_seed: str) -> str:
        result = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_CODE.format(seed=seed)],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(SRC),
                "PYTHONHASHSEED": hash_seed,
                "PATH": "/usr/bin:/bin",
            },
        )
        if result.returncode != 0:
            pytest.skip(f"subprocess unavailable: {result.stderr[:200]}")
        return result.stdout.strip()

    def test_bit_identical_across_processes(self):
        """Fresh interpreters (different hash randomization) agree."""
        hashes = {
            self._hash_in_subprocess(0, hash_seed)
            for hash_seed in ("0", "12345")
        }
        assert len(hashes) == 1
        # And the parent process agrees with its children.
        spec = quick_city(n_buildings=1, floors_per_building=2)
        assert hashes == {_content(spec, 0)}

    def test_different_seed_differs_across_processes(self):
        assert self._hash_in_subprocess(0, "0") != self._hash_in_subprocess(
            1, "0"
        )
