"""Load generator: accounting, chaos taxonomy, skew, backpressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import ChaosSpec, LoadSpec, TrafficPool, run_load
from repro.synth.loadgen import OUTCOMES


def _quick(**overrides) -> LoadSpec:
    base = dict(mode="closed", clients=4, duration_s=0.2, batch_rows=4, seed=0)
    base.update(overrides)
    return LoadSpec(**base)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bursty"},
            {"clients": 0},
            {"rate_rps": 0.0},
            {"burst": 0},
            {"duration_s": 0.0},
            {"batch_rows": 0},
            {"zipf_s": -1.0},
            {"pin_fraction": 1.5},
        ],
    )
    def test_bad_load_spec(self, kwargs):
        with pytest.raises(ValueError):
            _quick(**kwargs)

    def test_bad_chaos_spec(self):
        with pytest.raises(ValueError):
            ChaosSpec(malformed=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(malformed=0.5, oversized=0.4, misroute=0.3)


class TestTrafficPool:
    def test_sample_shape_and_slot_truth(self, tiny_fleet):
        pool = TrafficPool(tiny_fleet, epoch=0, zipf_s=0.0, seed=0)
        scans, building, floor = pool.sample(6)
        assert scans.shape == (6, tiny_fleet.n_aps)
        assert building in [b.name for b in tiny_fleet.buildings]
        assert 0 <= floor < len(tiny_fleet.buildings[0].floors)

    def test_zipf_skew_concentrates_traffic(self, tiny_fleet):
        uniform = TrafficPool(tiny_fleet, zipf_s=0.0, seed=0)
        skewed = TrafficPool(tiny_fleet, zipf_s=3.0, seed=0)
        assert uniform._p is None
        # Under heavy skew the hottest slot takes most of the mass.
        hot = [skewed.sample(1)[1] for _ in range(200)]
        top_share = max(hot.count(name) for name in set(hot)) / len(hot)
        assert top_share > 0.6


class TestClosedLoop:
    def test_accounting_and_latency(self, tiny_fleet):
        report = run_load(tiny_fleet, _quick(zipf_s=1.1, pin_fraction=0.5))
        assert report.mode == "closed"
        assert sum(report.outcomes.values()) == report.offered_requests
        assert set(report.outcomes) == set(OUTCOMES)
        assert report.outcomes["ok"] == report.offered_requests  # no chaos
        assert report.saturation == pytest.approx(1.0)
        assert report.ok_rows == report.outcomes["ok"] * 4
        lat = report.latency_ms
        assert 0 < lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]
        round_trip = report.to_dict()
        assert round_trip["outcomes"] == report.outcomes

    def test_latency_hist_shares_metrics_buckets(self, tiny_fleet):
        from repro.obs import DEFAULT_LATENCY_BUCKETS

        report = run_load(tiny_fleet, _quick())
        hist = report.latency_hist
        assert tuple(hist["buckets"]) == DEFAULT_LATENCY_BUCKETS
        assert len(hist["counts"]) == len(DEFAULT_LATENCY_BUCKETS) + 1
        assert hist["count"] == report.outcomes["ok"]
        assert sum(hist["counts"]) == hist["count"]
        assert 0 < hist["p50_ms"] <= hist["p99_ms"] <= hist["p999_ms"]
        # The run's own registry rides along in snapshot-dict form.
        assert "repro_load_request_seconds" in report.metrics
        assert "repro_load_outcomes_total" in report.metrics

    def test_deterministic_traffic_stream(self, tiny_fleet):
        # Same seed → same sampled rows (timing differs, content not).
        a = TrafficPool(tiny_fleet, zipf_s=1.5, seed=7)
        b = TrafficPool(tiny_fleet, zipf_s=1.5, seed=7)
        for _ in range(10):
            sa, ba, fa = a.sample(3)
            sb, bb, fb = b.sample(3)
            assert np.array_equal(sa, sb) and ba == bb and fa == fb


class TestChaosTaxonomy:
    def test_all_malformed_all_rejected(self, tiny_fleet):
        report = run_load(
            tiny_fleet, _quick(chaos=ChaosSpec(malformed=1.0))
        )
        assert report.outcomes["rejected"] == report.offered_requests
        assert report.outcomes["ok"] == 0
        assert report.latency_ms["p50"] == 0.0  # no successful samples

    def test_all_misroutes_all_unknown_slot(self, tiny_fleet):
        report = run_load(
            tiny_fleet, _quick(chaos=ChaosSpec(misroute=1.0))
        )
        assert report.outcomes["unknown_slot"] == report.offered_requests

    def test_oversized_is_rejected_never_overload(self, tiny_fleet):
        # A batch above max_pending_rows can never be admitted: it must
        # surface as a 400-class reject (retrying would loop forever),
        # not as a retryable 429.
        report = run_load(
            tiny_fleet,
            _quick(chaos=ChaosSpec(oversized=1.0)),
            max_pending_rows=32,
        )
        assert report.outcomes["rejected"] == report.offered_requests
        assert report.outcomes["overload"] == 0

    def test_mixed_chaos_good_traffic_still_flows(self, tiny_fleet):
        report = run_load(
            tiny_fleet,
            _quick(
                duration_s=0.4,
                chaos=ChaosSpec(malformed=0.2, misroute=0.2),
            ),
        )
        assert report.outcomes["ok"] > 0
        assert report.outcomes["rejected"] > 0
        assert report.outcomes["unknown_slot"] > 0
        assert sum(report.outcomes.values()) == report.offered_requests


class TestOpenLoop:
    def test_overload_sheds_and_accounts(self, tiny_fleet):
        # Offer far more than a 16-row admission queue can hold: the
        # surplus must come back as overloads, with nothing lost.
        report = run_load(
            tiny_fleet,
            LoadSpec(
                mode="open",
                rate_rps=2000.0,
                burst=16,
                duration_s=0.3,
                batch_rows=8,
                seed=0,
            ),
            max_pending_rows=16,
        )
        assert report.outcomes["overload"] > 0
        assert report.outcomes["ok"] > 0
        assert sum(report.outcomes.values()) == report.offered_requests
        assert report.saturation < 1.0
