"""ScenarioSpec grammar: validation, round-trip, identity, schedule."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import ScenarioSpec, full_city, quick_city

scenario_specs = st.builds(
    ScenarioSpec,
    name=st.sampled_from(("city", "campus", "estate")),
    n_buildings=st.integers(min_value=1, max_value=8),
    floors_per_building=st.integers(min_value=1, max_value=4),
    floor_width_m=st.floats(min_value=8.0, max_value=40.0),
    floor_height_m=st.floats(min_value=8.0, max_value=40.0),
    rp_spacing_m=st.sampled_from((2.0, 4.0, 6.0)),
    ap_density_per_100m2=st.floats(min_value=0.5, max_value=4.0),
    environment=st.sampled_from(("open", "office", "basement")),
    shadowing_sigma_db=st.floats(min_value=0.0, max_value=8.0),
    noise_std_db=st.floats(min_value=0.0, max_value=4.0),
    n_months=st.integers(min_value=1, max_value=6),
    train_fpr=st.integers(min_value=1, max_value=4),
    test_fpr=st.integers(min_value=1, max_value=3),
    dropout_start_month=st.integers(min_value=1, max_value=3),
    dropout_rate=st.floats(min_value=0.0, max_value=1.0),
)


class TestRoundTrip:
    @given(spec=scenario_specs)
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @given(spec=scenario_specs)
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_stable_across_round_trip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()).fingerprint() == (
            spec.fingerprint()
        )

    def test_unknown_keys_rejected(self):
        data = quick_city().to_dict()
        data["walls"] = "brick"
        with pytest.raises(ValueError, match="unknown keys"):
            ScenarioSpec.from_dict(data)


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("name", ""),
            ("n_buildings", 0),
            ("floors_per_building", 0),
            ("floor_width_m", 2.0),
            ("rp_spacing_m", 0.0),
            ("floor_gap_m", -1.0),
            ("ap_density_per_100m2", 0.0),
            ("environment", "underwater"),
            ("tx_power_dbm", 99.0),
            ("shadowing_sigma_db", -0.1),
            ("noise_std_db", -0.1),
            ("detection_threshold_dbm", -120.0),
            ("detection_threshold_dbm", 5.0),
            ("slab_db", 0.0),
            ("n_months", 0),
            ("train_fpr", 0),
            ("test_fpr", 0),
            ("dropout_start_month", 0),
            ("dropout_rate", 1.5),
        ],
    )
    def test_bad_field_rejected(self, field, value):
        with pytest.raises(ValueError):
            quick_city().scaled(**{field: value})


class TestIdentity:
    def test_any_field_change_changes_fingerprint(self):
        base = quick_city()
        variants = [
            base.scaled(name="other"),
            base.scaled(n_buildings=5),
            base.scaled(floors_per_building=3),
            base.scaled(rp_spacing_m=2.0),
            base.scaled(ap_density_per_100m2=2.0),
            base.scaled(environment="basement"),
            base.scaled(shadowing_sigma_db=4.0),
            base.scaled(noise_std_db=1.0),
            base.scaled(n_months=3),
            base.scaled(dropout_rate=0.2),
            base.scaled(dropout_start_month=1),
        ]
        prints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(prints) == len(variants) + 1

    def test_presets_are_distinct(self):
        assert quick_city().fingerprint() != full_city().fingerprint()

    def test_building_names_canonical(self):
        spec = quick_city(n_buildings=3)
        assert spec.building_name(0) == "quick-city-B000"
        assert spec.building_name(2) == "quick-city-B002"
        with pytest.raises(ValueError):
            spec.building_name(3)


class TestDerivedGeometry:
    def test_ap_density_floor(self):
        # Density low enough for zero APs still yields one per floor.
        spec = quick_city().scaled(ap_density_per_100m2=0.01)
        assert spec.aps_per_floor == 1

    def test_tiny_floor_keeps_reference_points(self):
        spec = quick_city().scaled(
            floor_width_m=4.0, floor_height_m=4.0, rp_spacing_m=2.0
        )
        assert spec.rps_per_floor >= 1


class TestDropoutSchedule:
    @given(
        spec=scenario_specs,
        n_aps=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_shape_and_bounds(self, spec, n_aps):
        counts = spec.dropout_counts(n_aps)
        assert len(counts) == spec.n_months + 1
        assert counts[0] == 0  # the training survey never drops
        assert all(0 <= c <= n_aps - 1 for c in counts)
        assert counts == sorted(counts)  # cumulative: dark stays dark

    def test_exact_schedule(self):
        spec = quick_city().scaled(
            n_months=4, dropout_rate=0.25, dropout_start_month=2
        )
        # months:   0  1  2            3            4
        # elapsed:         1            2            3
        assert spec.dropout_counts(8) == [0, 0, 2, 4, 6]

    def test_zero_rate_never_drops(self):
        spec = quick_city().scaled(dropout_rate=0.0)
        assert spec.dropout_counts(10) == [0] * (spec.n_months + 1)

    def test_full_rate_leaves_one_alive(self):
        spec = quick_city().scaled(
            dropout_rate=1.0, dropout_start_month=1, n_months=3
        )
        assert spec.dropout_counts(5) == [0, 4, 4, 4]
