"""Generated-suite invariants, property-tested over the spec grammar.

Hypothesis drives :func:`repro.synth.generate_building_suite` across
the scenario grammar and checks the contracts every consumer leans on:
RSSI stays finite and in-range (``NO_SIGNAL_DBM`` is the only "missing"
marker, nothing reads between it and the detection threshold), the
AP-dropout schedule is honored *exactly* month by month, every sampled
location lies inside its floor, and epoch/time labels are monotone.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.access_point import NO_SIGNAL_DBM
from repro.synth import ScenarioSpec, generate_building_suite, quick_city

# Small cities only: every example generates a full building suite.
small_specs = st.builds(
    ScenarioSpec,
    n_buildings=st.integers(min_value=1, max_value=2),
    floors_per_building=st.integers(min_value=1, max_value=3),
    floor_width_m=st.sampled_from((10.0, 16.0)),
    floor_height_m=st.sampled_from((8.0, 12.0)),
    rp_spacing_m=st.just(4.0),
    ap_density_per_100m2=st.floats(min_value=0.5, max_value=3.0),
    environment=st.sampled_from(("open", "office", "basement")),
    shadowing_sigma_db=st.floats(min_value=0.0, max_value=6.0),
    noise_std_db=st.floats(min_value=0.0, max_value=3.0),
    n_months=st.integers(min_value=1, max_value=3),
    train_fpr=st.integers(min_value=1, max_value=2),
    test_fpr=st.just(1),
    dropout_start_month=st.integers(min_value=1, max_value=2),
    dropout_rate=st.floats(min_value=0.0, max_value=0.6),
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _all_datasets(suite):
    """(month, MultiFloorDataset) pairs: train month 0, tests 1..n."""
    yield 0, suite.train
    for month, ds in enumerate(suite.test_epochs, start=1):
        yield month, ds


class TestSignalRange:
    @given(spec=small_specs, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_rssi_finite_and_in_band(self, spec, seed):
        suite = generate_building_suite(spec, seed)
        for _, ds in _all_datasets(suite):
            rssi = ds.fingerprints.rssi
            assert np.isfinite(rssi).all()  # NO_SIGNAL marks missing, not NaN
            assert rssi.min() >= NO_SIGNAL_DBM
            assert rssi.max() <= 0.0
            # Nothing lives between the missing marker and the
            # detection threshold — a reading is real or absent.
            observed = rssi[rssi != NO_SIGNAL_DBM]
            if observed.size:
                assert observed.min() >= spec.detection_threshold_dbm


class TestDropoutSchedule:
    @given(spec=small_specs, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_schedule_honored_exactly(self, spec, seed):
        suite = generate_building_suite(spec, seed)
        n_aps = spec.aps_per_building
        counts = spec.dropout_counts(n_aps)
        dark_by_month = suite.metadata["dropout"]["dark_by_month"]
        assert suite.metadata["dropout"]["counts"] == counts
        previous: set[int] = set()
        for month, ds in _all_datasets(suite):
            dark = dark_by_month[month]
            assert len(dark) == counts[month]
            # Cumulative: a dark AP stays dark in every later month.
            assert previous <= set(dark)
            previous = set(dark)
            if dark:
                assert (
                    ds.fingerprints.rssi[:, dark] == NO_SIGNAL_DBM
                ).all()

    def test_dropout_only_explains_fully_dark_columns(self):
        # With a hot, noise-free radio every non-dark column must show
        # signal somewhere — dropout is the *only* way to go all-dark.
        spec = quick_city(n_buildings=1, floors_per_building=1).scaled(
            dropout_rate=0.3,
            dropout_start_month=1,
            tx_power_dbm=30.0,
            noise_std_db=0.0,
            detection_threshold_dbm=-94.0,
        )
        suite = generate_building_suite(spec, seed=3)
        for month, ds in _all_datasets(suite):
            dark = set(suite.metadata["dropout"]["dark_by_month"][month])
            fully_dark = {
                int(col)
                for col in np.flatnonzero(
                    (ds.fingerprints.rssi == NO_SIGNAL_DBM).all(axis=0)
                )
            }
            assert dark == fully_dark


class TestGeometry:
    @given(spec=small_specs, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_locations_inside_floor_bounds(self, spec, seed):
        suite = generate_building_suite(spec, seed)
        rps = np.asarray(suite.building.floor(0).reference_points)
        for _, ds in _all_datasets(suite):
            locations = ds.fingerprints.locations
            assert locations[:, 0].min() >= 0.0
            assert locations[:, 0].max() <= spec.floor_width_m
            assert locations[:, 1].min() >= 0.0
            assert locations[:, 1].max() <= spec.floor_height_m
            # Every sample sits exactly on a surveyed reference point.
            local_rp = ds.fingerprints.rp_indices % spec.rps_per_floor
            assert np.array_equal(locations, rps[local_rp])
            # Floor labels stay inside the building.
            assert ds.floor_indices.min() >= 0
            assert ds.floor_indices.max() < spec.floors_per_building


class TestEpochMonotonicity:
    @given(spec=small_specs, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_epochs_and_times_monotone(self, spec, seed):
        suite = generate_building_suite(spec, seed)
        last_time = -np.inf
        for month, ds in _all_datasets(suite):
            fp = ds.fingerprints
            assert (fp.epochs == month).all()
            times = fp.times_hours
            assert (np.diff(times) > 0).all()  # strictly increasing
            assert times[0] > last_time  # months never overlap
            last_time = times[-1]

    @given(spec=small_specs, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_row_counts_match_spec(self, spec, seed):
        suite = generate_building_suite(spec, seed)
        n_rps = spec.rps_per_floor * spec.floors_per_building
        assert suite.train.n_samples == n_rps * spec.train_fpr
        assert len(suite.test_epochs) == spec.n_months
        for ds in suite.test_epochs:
            assert ds.n_samples == n_rps * spec.test_fpr
