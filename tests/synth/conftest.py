"""Synth-layer fixtures: a tiny city, generated once per session."""

from __future__ import annotations

import pytest

from repro.synth import generate_building_suite, generate_fleet, quick_city


@pytest.fixture(scope="session")
def tiny_city():
    """Two buildings x two floors — seconds to generate and fit."""
    return quick_city(n_buildings=2, floors_per_building=2)


@pytest.fixture(scope="session")
def tiny_city_suite(tiny_city):
    return generate_building_suite(tiny_city, seed=0)


@pytest.fixture(scope="session")
def tiny_fleet(tiny_city):
    """The tiny city fitted into a registry (mixed index kinds)."""
    return generate_fleet(tiny_city, seed=0, index="mixed", fast=True)
