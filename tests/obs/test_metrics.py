"""Metrics registry: families, snapshots, merges, exposition, threads."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    histogram_percentile,
    parse_prometheus_text,
)


class TestFamilies:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "things")
        c.inc()
        c.inc(2.5)
        snap = reg.snapshot()
        assert snap.metrics["x_total"]["children"][()] == 3.5

    def test_gauge_sets_and_moves(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(7)
        g.inc(3)
        g.dec(1)
        assert reg.snapshot().metrics["depth"]["children"][()] == 9.0

    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        c = reg.counter("rows_total", "rows", ("slot",))
        c.labels("a").inc(2)
        c.labels("b").inc(5)
        children = reg.snapshot().metrics["rows_total"]["children"]
        assert children[("a",)] == 2.0
        assert children[("b",)] == 5.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        data = reg.snapshot().metrics["lat"]["children"][()]
        assert data["counts"] == [1, 1, 1]  # <=1, <=2, +Inf overflow
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(101.0)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "things")
        b = reg.counter("x_total", "things")
        assert a is b

    def test_shape_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "things")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "things")
        with pytest.raises(ValueError):
            reg.counter("x_total", "things", ("slot",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "nope")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "nope", ("__reserved",))

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total", "things")
        h = reg.histogram("lat", "latency")
        c.inc()
        h.observe(1.0)
        snap = reg.snapshot()
        assert snap.metrics["x_total"]["children"] == {}
        assert snap.metrics["lat"]["children"] == {}


class TestThreadedExactness:
    """Parallel recording must lose nothing: counts and sums are exact."""

    def test_counter_exact_under_contention(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits", ("worker",))
        n_threads, n_iter = 8, 2_000

        def worker(i):
            child = c.labels(str(i % 2))
            for _ in range(n_iter):
                child.inc()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        children = reg.snapshot().metrics["hits_total"]["children"]
        assert children[("0",)] + children[("1",)] == n_threads * n_iter

    def test_histogram_count_and_sum_exact_under_contention(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(0.001, 0.01, 0.1))
        n_threads, n_iter = 8, 2_000
        value = 0.005

        def worker():
            for _ in range(n_iter):
                h.observe(value)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        data = reg.snapshot().metrics["lat"]["children"][()]
        total = n_threads * n_iter
        assert data["count"] == total
        assert sum(data["counts"]) == total
        assert data["counts"][1] == total  # every observation in (0.001, 0.01]
        assert data["sum"] == pytest.approx(total * value)


class TestMergeExactness:
    def test_counters_and_histograms_sum(self):
        def one(inc, obs):
            reg = MetricsRegistry()
            reg.counter("n_total", "n").inc(inc)
            h = reg.histogram("lat", "l", buckets=(1.0, 2.0))
            for v in obs:
                h.observe(v)
            return reg.snapshot()

        merged = one(3, [0.5, 1.5])
        merged.merge(one(4, [5.0]))
        assert merged.metrics["n_total"]["children"][()] == 7.0
        data = merged.metrics["lat"]["children"][()]
        assert data["counts"] == [1, 1, 1]
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(7.0)

    def test_unknown_families_copy_over(self):
        a = MetricsRegistry().snapshot()
        b_reg = MetricsRegistry()
        b_reg.counter("only_in_b_total", "b").inc(2)
        a.merge(b_reg.snapshot())
        assert a.metrics["only_in_b_total"]["children"][()] == 2.0

    def test_merge_is_deep_copy(self):
        b_reg = MetricsRegistry()
        b_reg.histogram("lat", "l", buckets=(1.0,)).observe(0.5)
        theirs = b_reg.snapshot()
        mine = MetricsSnapshot()
        mine.merge(theirs)
        mine.metrics["lat"]["children"][()]["counts"][0] += 100
        assert theirs.metrics["lat"]["children"][()]["counts"][0] == 1

    def test_kind_mismatch_raises(self):
        a_reg = MetricsRegistry()
        a_reg.counter("x", "a")
        b_reg = MetricsRegistry()
        b_reg.gauge("x", "b")
        with pytest.raises(ValueError):
            a_reg.snapshot().merge(b_reg.snapshot())

    def test_bucket_mismatch_raises(self):
        a_reg = MetricsRegistry()
        a_reg.histogram("lat", "l", buckets=(1.0,)).observe(0.5)
        b_reg = MetricsRegistry()
        b_reg.histogram("lat", "l", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a_reg.snapshot().merge(b_reg.snapshot())


class TestExposition:
    def _populated_registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "requests", ("endpoint",)).labels(
            "/localize"
        ).inc(3)
        reg.gauge("repro_pending_rows", "pending").set(2)
        h = reg.histogram(
            "repro_latency_seconds", "latency", buckets=DEFAULT_LATENCY_BUCKETS
        )
        for v in (0.0004, 0.003, 0.2, 42.0):
            h.observe(v)
        return reg

    def test_text_parses_as_valid_prometheus(self):
        text = self._populated_registry().snapshot().to_text()
        families = parse_prometheus_text(text)
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_pending_rows"]["type"] == "gauge"
        assert families["repro_latency_seconds"]["type"] == "histogram"

    def test_histogram_samples_are_cumulative_with_inf(self):
        text = self._populated_registry().snapshot().to_text()
        families = parse_prometheus_text(text)
        samples = families["repro_latency_seconds"]["samples"]
        inf_key = ("repro_latency_seconds_bucket", (("le", "+Inf"),))
        count_key = ("repro_latency_seconds_count", ())
        assert samples[inf_key] == 4.0
        assert samples[count_key] == 4.0

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", ("path",)).labels('a"b\\c\nd').inc()
        text = reg.snapshot().to_text()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parse_prometheus_text(text)  # must stay parseable

    def test_parser_rejects_non_cumulative_buckets(self):
        bad = "\n".join(
            [
                "# TYPE lat histogram",
                'lat_bucket{le="1.0"} 5',
                'lat_bucket{le="+Inf"} 3',
                "lat_sum 1.0",
                "lat_count 3",
            ]
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_parser_rejects_missing_inf(self):
        bad = "\n".join(
            [
                "# TYPE lat histogram",
                'lat_bucket{le="1.0"} 3',
                "lat_sum 1.0",
                "lat_count 3",
            ]
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_parser_rejects_garbage_line(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not a sample\n")


class TestHistogramPercentile:
    def test_interpolates_within_bucket(self):
        data = {"buckets": (1.0, 2.0), "counts": [10, 10, 0], "count": 20}
        assert histogram_percentile(data, 0.5) == pytest.approx(1.0)
        assert histogram_percentile(data, 0.75) == pytest.approx(1.5)

    def test_overflow_reports_top_bound(self):
        data = {"buckets": (1.0, 2.0), "counts": [0, 0, 5], "count": 5}
        assert histogram_percentile(data, 0.5) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        data = {"buckets": (1.0,), "counts": [0, 0], "count": 0}
        assert histogram_percentile(data, 0.5) == 0.0

    def test_rejects_bad_q(self):
        data = {"buckets": (1.0,), "counts": [1, 0], "count": 1}
        with pytest.raises(ValueError):
            histogram_percentile(data, 1.0)
