"""Request ids and per-stage trace spans."""

from __future__ import annotations

import re

from repro.obs import Trace, new_request_id, valid_request_id


class TestRequestIds:
    def test_fresh_ids_are_16_hex_and_unique(self):
        ids = {new_request_id() for _ in range(200)}
        assert len(ids) == 200
        assert all(re.fullmatch(r"[0-9a-f]{16}", rid) for rid in ids)

    def test_fresh_ids_validate(self):
        assert valid_request_id(new_request_id())

    def test_client_supplied_grammar(self):
        assert valid_request_id("req-1_2.3:abc")
        assert not valid_request_id("")
        assert not valid_request_id("has space")
        assert not valid_request_id("x" * 65)
        assert not valid_request_id(123)
        assert not valid_request_id(None)
        assert not valid_request_id("emoji-é")


class TestTrace:
    def test_spans_record_stage_and_ms(self):
        trace = Trace("abc")
        trace.add("queue", 0.0015)
        trace.add("compute", 0.0025, batch_rows=16)
        assert trace.spans == [
            {"stage": "queue", "ms": 1.5},
            {"stage": "compute", "ms": 2.5, "batch_rows": 16},
        ]

    def test_to_dict_sums_spans_by_default(self):
        trace = Trace("abc")
        trace.add("a", 0.001)
        trace.add("b", 0.002)
        wire = trace.to_dict()
        assert wire["request_id"] == "abc"
        assert wire["total_ms"] == 3.0
        assert len(wire["spans"]) == 2

    def test_total_override_beats_span_sum(self):
        trace = Trace("abc")
        trace.add("a", 0.001)
        wire = trace.to_dict(total_s=0.5)
        assert wire["total_ms"] == 500.0

    def test_default_id_minted(self):
        assert valid_request_id(Trace().request_id)
