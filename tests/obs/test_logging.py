"""Structured JSON logging and the slow-request sampler."""

from __future__ import annotations

import io
import json

from repro.obs import JsonLogger


def lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEvent:
    def test_one_json_line_with_component(self):
        out = io.StringIO()
        log = JsonLogger("serve", enabled=True, stream=out)
        log.event("started", port=8000)
        (record,) = lines(out)
        assert record["component"] == "serve"
        assert record["event"] == "started"
        assert record["port"] == 8000
        assert "ts" in record

    def test_disabled_emits_nothing(self):
        out = io.StringIO()
        JsonLogger("serve", enabled=False, stream=out).event("started")
        assert out.getvalue() == ""

    def test_non_serializable_fields_stringified(self):
        out = io.StringIO()
        log = JsonLogger("serve", enabled=True, stream=out)
        log.event("weird", value=object())
        (record,) = lines(out)
        assert isinstance(record["value"], str)


class TestRequestSampler:
    def test_logs_every_request_without_threshold(self):
        out = io.StringIO()
        log = JsonLogger("serve", enabled=True, stream=out)
        log.request(
            request_id="r1", endpoint="/localize", status=200, duration_ms=0.1
        )
        (record,) = lines(out)
        assert record["request_id"] == "r1"
        assert record["status"] == 200

    def test_fast_success_dropped_under_threshold(self):
        out = io.StringIO()
        log = JsonLogger("serve", enabled=True, slow_ms=10.0, stream=out)
        log.request(
            request_id="r1", endpoint="/localize", status=200, duration_ms=2.0
        )
        assert out.getvalue() == ""

    def test_slow_success_logged(self):
        out = io.StringIO()
        log = JsonLogger("serve", enabled=True, slow_ms=10.0, stream=out)
        log.request(
            request_id="r1", endpoint="/localize", status=200, duration_ms=11.0
        )
        assert len(lines(out)) == 1

    def test_errors_always_logged(self):
        out = io.StringIO()
        log = JsonLogger("serve", enabled=True, slow_ms=10.0, stream=out)
        log.request(
            request_id="r1", endpoint="/localize", status=400, duration_ms=0.1
        )
        (record,) = lines(out)
        assert record["status"] == 400


class TestChild:
    def test_child_inherits_settings_and_stream(self):
        out = io.StringIO()
        parent = JsonLogger("fleet", enabled=True, slow_ms=5.0, stream=out)
        child = parent.child("worker")
        assert child.enabled and child.slow_ms == 5.0
        child.event("spawned", worker=3)
        (record,) = lines(out)
        assert record["component"] == "worker"
