"""Serving-layer fixtures: warm fitted models on the tiny suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ModelStore


@pytest.fixture(scope="session")
def serve_store():
    return ModelStore()


@pytest.fixture(scope="session")
def knn_entry(serve_store, tiny_suite):
    """A warm batch-safe model (KNN) for dispatcher/server tests."""
    return serve_store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)


@pytest.fixture(scope="session")
def gift_entry(serve_store, tiny_suite):
    """A warm sequential-decoder model (GIFT) for fallback tests."""
    return serve_store.get_or_fit("GIFT", tiny_suite, seed=0, fast=True)


@pytest.fixture(scope="session")
def query_rows(tiny_suite):
    """A pool of real test-epoch scans to serve as request payloads."""
    return np.vstack([ds.rssi for ds in tiny_suite.test_epochs])[:48]
