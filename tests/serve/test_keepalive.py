"""Persistent-connection behavior of the HTTP server."""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.serve import BatchingDispatcher, LocalizationServer


@pytest.fixture(scope="module")
def server(knn_entry, serve_store):
    dispatcher = BatchingDispatcher(
        knn_entry.localizer, batch_window_ms=1.0, max_batch=256
    )
    srv = LocalizationServer(knn_entry, dispatcher, store=serve_store, port=0)
    handle = srv.start_background()
    yield srv
    handle.shutdown()


def _raw_request(path: str, *, version="1.1", headers=()) -> bytes:
    lines = [f"GET {path} HTTP/{version}"] + list(headers) + ["", ""]
    return "\r\n".join(lines).encode("latin-1")


def _read_response(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Read exactly one framed response off the socket."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(4096)
        if not chunk:
            raise AssertionError("connection closed mid-response")
        buf += chunk
    head, _, rest = buf.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers["content-length"])
    while len(rest) < length:
        chunk = sock.recv(4096)
        if not chunk:
            raise AssertionError("connection closed mid-body")
        rest += chunk
    return status, headers, rest[:length]


class TestKeepAlive:
    def test_two_requests_one_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(_raw_request("/healthz"))
            status, headers, _ = _read_response(sock)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            sock.sendall(_raw_request("/models"))
            status, headers, body = _read_response(sock)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            assert "models" in json.loads(body)

    def test_http_client_reuses_connection(self, server, query_rows):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for scan in query_rows[:3]:
                conn.request(
                    "POST",
                    "/localize",
                    body=json.dumps(
                        {"api_version": 1, "rssi": scan.tolist()}
                    ),
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200
                assert not response.will_close
                assert "location" in payload
        finally:
            conn.close()

    def test_request_counter_counts_each_cycle(self, server):
        before = server.requests_served
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            for _ in range(3):
                sock.sendall(_raw_request("/healthz"))
                _read_response(sock)
        assert server.requests_served == before + 3


class TestConnectionClose:
    def test_connection_close_header_honored(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                _raw_request("/healthz", headers=["Connection: close"])
            )
            status, headers, _ = _read_response(sock)
            assert status == 200
            assert headers["connection"] == "close"
            assert sock.recv(4096) == b""  # server ended the connection

    def test_http10_defaults_to_close(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(_raw_request("/healthz", version="1.0"))
            status, headers, _ = _read_response(sock)
            assert status == 200
            assert headers["connection"] == "close"
            assert sock.recv(4096) == b""

    def test_http10_keep_alive_optin(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                _raw_request(
                    "/healthz", version="1.0",
                    headers=["Connection: keep-alive"],
                )
            )
            status, headers, _ = _read_response(sock)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            sock.sendall(_raw_request("/healthz", version="1.0",
                                      headers=["Connection: keep-alive"]))
            status, _, _ = _read_response(sock)
            assert status == 200

    def test_malformed_request_closes_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(b"NOT A REQUEST\r\n\r\n")
            status, headers, _ = _read_response(sock)
            assert status == 400
            assert headers["connection"] == "close"
            assert sock.recv(4096) == b""

    def test_chunked_transfer_encoding_rejected_and_closed(self, server):
        # Only Content-Length framing is implemented; an unread chunked
        # body would desync the next request on a kept-alive connection.
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                b"POST /localize HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"7b\r\n"
            )
            status, headers, body = _read_response(sock)
            assert status == 400
            assert b"Transfer-Encoding" in body
            assert headers["connection"] == "close"
            assert sock.recv(4096) == b""

    def test_negative_content_length_is_a_400_not_a_crash(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                b"POST /localize HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            )
            status, headers, _ = _read_response(sock)
            assert status == 400
            assert headers["connection"] == "close"
            assert sock.recv(4096) == b""

    def test_client_close_between_requests_is_silent(self, server):
        # Open, complete one cycle, close: the server must not log a
        # request or error for the EOF.
        before_errors = server.dispatcher.stats.errors
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(_raw_request("/healthz"))
            _read_response(sock)
        assert server.dispatcher.stats.errors == before_errors
