"""Wire protocol v1: version negotiation + the closed legacy window.

Two contracts are pinned here:

* **v1 clients** (requests declaring ``api_version``) get versioned
  responses and the structured error object — the only shapes the
  servers emit.
* **version-less requests** (the pre-v1 legacy contract) are rejected
  with ``unsupported_api_version`` and a migration hint. Their
  one-release deprecation window (PR 5) is closed; the string-shaped
  ``{"error": "<msg>"}`` / ``error_detail`` bodies are gone with it.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import API_VERSION, BatchingDispatcher, LocalizationServer
from repro.serve.protocol import (
    RequestError,
    default_error_code,
    error_payload,
    parse_api_version,
    versioned_payload,
)


@pytest.fixture(scope="module")
def server(knn_entry, serve_store):
    dispatcher = BatchingDispatcher(
        knn_entry.localizer, batch_window_ms=1.0, max_batch=256
    )
    srv = LocalizationServer(knn_entry, dispatcher, store=serve_store, port=0)
    handle = srv.start_background()
    yield srv
    handle.shutdown()


def _request(server, method, path, payload=None, raw_body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, json.loads(data)


class TestUnitHelpers:
    def test_parse_api_version_current(self):
        assert parse_api_version({"api_version": API_VERSION}) == API_VERSION

    def test_parse_api_version_absent_is_rejected(self):
        # The version-less legacy contract is retired: omitting the
        # field is the same negotiation failure as declaring a version
        # the server does not speak, plus a migration hint.
        with pytest.raises(RequestError) as excinfo:
            parse_api_version({"rssi": []})
        assert excinfo.value.code == "unsupported_api_version"
        assert "api_version" in excinfo.value.message
        assert "legacy" in excinfo.value.message

    @pytest.mark.parametrize("bad", [0, API_VERSION + 1, "1", 1.5, True, -3])
    def test_parse_api_version_rejects_unsupported(self, bad):
        with pytest.raises(RequestError) as excinfo:
            parse_api_version({"api_version": bad})
        assert excinfo.value.code == "unsupported_api_version"

    def test_error_payload_v1_shape(self):
        body = error_payload("nope", status=404)
        assert body == {
            "api_version": API_VERSION,
            "error": {"code": "not_found", "message": "nope",
                      "retryable": False},
        }

    def test_error_payload_has_no_legacy_fields(self):
        body = error_payload("busy", status=429, retryable=True)
        assert set(body) == {"api_version", "error"}
        assert isinstance(body["error"], dict)  # never the legacy string

    def test_default_codes(self):
        assert default_error_code(400) == "bad_request"
        assert default_error_code(405) == "method_not_allowed"
        assert default_error_code(413) == "payload_too_large"
        assert default_error_code(500) == "internal"
        assert default_error_code(503) == "unavailable"
        assert default_error_code(418) == "error"

    def test_versioned_payload_stamps_only_versioned(self):
        payload = {"location": [1.0, 2.0]}
        # Bodyless GETs never negotiate: payload passes through.
        assert versioned_payload(payload, versioned=False) is payload
        stamped = versioned_payload(payload, versioned=True)
        assert stamped["api_version"] == API_VERSION
        assert stamped["location"] == [1.0, 2.0]


class TestLegacyWindowClosed:
    """Version-less requests are rejected with a migration hint."""

    def test_versionless_localize_is_rejected(self, server, query_rows):
        status, body = _request(
            server, "POST", "/localize",
            payload={"rssi": query_rows[0].tolist()},
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_api_version"
        assert "legacy" in body["error"]["message"]

    def test_versionless_batch_is_rejected(self, server, query_rows):
        status, body = _request(
            server, "POST", "/localize_batch",
            payload={"rssi": query_rows[:4].tolist()},
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_api_version"

    def test_rejection_is_the_structured_envelope(self, server):
        status, body = _request(
            server, "POST", "/localize", payload={"scan": [1.0]}
        )
        assert status == 400
        assert body["api_version"] == API_VERSION
        assert isinstance(body["error"], dict)
        assert "error_detail" not in body  # the legacy sidecar is gone


class TestV1Requests:
    def test_success_carries_api_version(self, server, query_rows):
        status, body = _request(
            server, "POST", "/localize",
            payload={"api_version": 1, "rssi": query_rows[0].tolist()},
        )
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert len(body["location"]) == 2

    def test_error_is_structured_object(self, server):
        status, body = _request(
            server, "POST", "/localize",
            payload={"api_version": 1, "rssi": "not-a-list"},
        )
        assert status == 400
        assert body["api_version"] == API_VERSION
        assert body["error"]["code"] == "bad_request"
        assert isinstance(body["error"]["message"], str)
        assert "error_detail" not in body

    def test_unsupported_version_rejected(self, server):
        status, body = _request(
            server, "POST", "/localize",
            payload={"api_version": 99, "rssi": [-50.0]},
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_api_version"

    def test_healthz_reports_api_version(self, server):
        status, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["api_version"] == API_VERSION

    def test_unknown_endpoint_is_structured(self, server):
        status, body = _request(server, "GET", "/teleport")
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestFleetV1:
    @pytest.fixture(scope="class")
    def fleet_server(self):
        from repro.api import FleetSpec

        spec = FleetSpec.from_string(
            "HQ:2", fast=True, months=2, aps_per_floor=8, port=0
        )
        server = spec.build_server()
        handle = server.start_background()
        yield server
        handle.shutdown()

    def test_healthz_reports_api_version(self, fleet_server):
        status, body = _request(fleet_server, "GET", "/healthz")
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert body["mode"] == "fleet"

    def test_v1_routing_response(self, fleet_server):
        n_aps = fleet_server.registry.n_aps
        status, body = _request(
            fleet_server, "POST", "/localize",
            payload={"api_version": 1, "rssi": [-60.0] * n_aps},
        )
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert "routing" in body

    def test_v1_unknown_pin_is_structured(self, fleet_server):
        n_aps = fleet_server.registry.n_aps
        status, body = _request(
            fleet_server, "POST", "/localize",
            payload={"api_version": 1, "rssi": [-60.0] * n_aps,
                     "building": "NOWHERE"},
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "NOWHERE" in body["error"]["message"]

    def test_versionless_fleet_request_is_rejected(self, fleet_server):
        n_aps = fleet_server.registry.n_aps
        status, body = _request(
            fleet_server, "POST", "/localize",
            payload={"rssi": [-60.0] * n_aps, "building": "NOWHERE"},
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_api_version"

    def test_v1_429_overload_body(self, fleet_server):
        """The 429 body keeps its retry hints, structured-only."""
        from repro.api import ReproClient, ReproOverloadError
        from repro.fleet.dispatch import FleetOverloadError

        dispatcher = fleet_server.dispatcher

        async def rejecting_localize(scans, **kwargs):
            raise FleetOverloadError(10, 10, scans.shape[0])

        original = dispatcher.localize
        dispatcher.localize = rejecting_localize
        try:
            n_aps = fleet_server.registry.n_aps
            status, body = _request(
                fleet_server, "POST", "/localize",
                payload={"api_version": 1, "rssi": [-60.0] * n_aps},
            )
            assert status == 429
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retryable"] is True
            assert body["retry_after_ms"] > 0
            assert body["max_pending_rows"] == 10

            # And the typed client surfaces it after its retries.
            client = ReproClient(port=fleet_server.port, max_retries=1)
            with pytest.raises(ReproOverloadError):
                client.localize([-60.0] * n_aps)
            client.close()
        finally:
            dispatcher.localize = original
