"""Wire protocol v1: version negotiation + error-shape compatibility.

Two contracts are pinned here:

* **v1 clients** (requests declaring ``api_version``) get versioned
  responses and the structured error object.
* **legacy clients** (version-less requests) get *byte-identical*
  success bodies to the pre-v1 server, and error bodies that keep the
  ``"error": "<message>"`` string (with the structured object alongside
  under ``error_detail``).
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import API_VERSION, BatchingDispatcher, LocalizationServer
from repro.serve.protocol import (
    RequestError,
    default_error_code,
    error_payload,
    parse_api_version,
    versioned_payload,
)


@pytest.fixture(scope="module")
def server(knn_entry, serve_store):
    dispatcher = BatchingDispatcher(
        knn_entry.localizer, batch_window_ms=1.0, max_batch=256
    )
    srv = LocalizationServer(knn_entry, dispatcher, store=serve_store, port=0)
    handle = srv.start_background()
    yield srv
    handle.shutdown()


def _request(server, method, path, payload=None, raw_body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, json.loads(data)


class TestUnitHelpers:
    def test_parse_api_version_absent_is_legacy(self):
        assert parse_api_version({"rssi": []}) is None

    def test_parse_api_version_current(self):
        assert parse_api_version({"api_version": API_VERSION}) == API_VERSION

    @pytest.mark.parametrize("bad", [0, API_VERSION + 1, "1", 1.5, True, -3])
    def test_parse_api_version_rejects_unsupported(self, bad):
        with pytest.raises(RequestError) as excinfo:
            parse_api_version({"api_version": bad})
        assert excinfo.value.code == "unsupported_api_version"

    def test_error_payload_v1_shape(self):
        body = error_payload("nope", status=404, versioned=True)
        assert body == {
            "api_version": API_VERSION,
            "error": {"code": "not_found", "message": "nope",
                      "retryable": False},
        }

    def test_error_payload_legacy_keeps_string(self):
        body = error_payload("nope", status=429, retryable=True,
                             versioned=False)
        assert body["error"] == "nope"  # the legacy contract
        assert body["error_detail"] == {
            "code": "overloaded", "message": "nope", "retryable": True,
        }

    def test_default_codes(self):
        assert default_error_code(400) == "bad_request"
        assert default_error_code(405) == "method_not_allowed"
        assert default_error_code(413) == "payload_too_large"
        assert default_error_code(500) == "internal"
        assert default_error_code(418) == "error"

    def test_versioned_payload_is_identity_for_legacy(self):
        payload = {"location": [1.0, 2.0]}
        assert versioned_payload(payload, versioned=False) is payload
        stamped = versioned_payload(payload, versioned=True)
        assert stamped["api_version"] == API_VERSION
        assert stamped["location"] == [1.0, 2.0]


class TestLegacyRequestsBitIdentical:
    """Version-less requests see the exact pre-v1 success wire format."""

    def test_localize_body_has_no_version_field(self, server, query_rows):
        status, body = _request(
            server, "POST", "/localize",
            payload={"rssi": query_rows[0].tolist()},
        )
        assert status == 200
        assert set(body) == {"location"}  # nothing added

    def test_batch_body_has_no_version_field(self, server, query_rows):
        status, body = _request(
            server, "POST", "/localize_batch",
            payload={"rssi": query_rows[:4].tolist()},
        )
        assert status == 200
        assert set(body) == {"locations", "n"}

    def test_legacy_error_keeps_string_with_detail_alongside(self, server):
        status, body = _request(
            server, "POST", "/localize", payload={"scan": [1.0]}
        )
        assert status == 400
        assert isinstance(body["error"], str)
        assert body["error_detail"]["code"] == "bad_request"
        assert body["error_detail"]["retryable"] is False


class TestV1Requests:
    def test_success_carries_api_version(self, server, query_rows):
        status, body = _request(
            server, "POST", "/localize",
            payload={"api_version": 1, "rssi": query_rows[0].tolist()},
        )
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert len(body["location"]) == 2

    def test_v1_and_legacy_locations_bit_identical(self, server, query_rows):
        row = query_rows[0].tolist()
        _, legacy = _request(server, "POST", "/localize", payload={"rssi": row})
        _, v1 = _request(
            server, "POST", "/localize",
            payload={"api_version": 1, "rssi": row},
        )
        assert legacy["location"] == v1["location"]

    def test_error_is_structured_object(self, server):
        status, body = _request(
            server, "POST", "/localize",
            payload={"api_version": 1, "rssi": "not-a-list"},
        )
        assert status == 400
        assert body["api_version"] == API_VERSION
        assert body["error"]["code"] == "bad_request"
        assert isinstance(body["error"]["message"], str)
        assert "error_detail" not in body

    def test_unsupported_version_rejected(self, server):
        status, body = _request(
            server, "POST", "/localize",
            payload={"api_version": 99, "rssi": [-50.0]},
        )
        assert status == 400
        # The request never negotiated a valid version, so the error
        # arrives in the legacy-compatible shape.
        assert body["error_detail"]["code"] == "unsupported_api_version"

    def test_healthz_reports_api_version(self, server):
        status, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["api_version"] == API_VERSION

    def test_unknown_endpoint_carries_structured_detail(self, server):
        status, body = _request(server, "GET", "/teleport")
        assert status == 404
        assert body["error_detail"]["code"] == "not_found"


class TestFleetV1:
    @pytest.fixture(scope="class")
    def fleet_server(self):
        from repro.api import FleetSpec

        spec = FleetSpec.from_string(
            "HQ:2", fast=True, months=2, aps_per_floor=8, port=0
        )
        server = spec.build_server()
        handle = server.start_background()
        yield server
        handle.shutdown()

    def test_healthz_reports_api_version(self, fleet_server):
        status, body = _request(fleet_server, "GET", "/healthz")
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert body["mode"] == "fleet"

    def test_v1_routing_response(self, fleet_server):
        n_aps = fleet_server.registry.n_aps
        status, body = _request(
            fleet_server, "POST", "/localize",
            payload={"api_version": 1, "rssi": [-60.0] * n_aps},
        )
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert "routing" in body

    def test_v1_unknown_pin_is_structured(self, fleet_server):
        n_aps = fleet_server.registry.n_aps
        status, body = _request(
            fleet_server, "POST", "/localize",
            payload={"api_version": 1, "rssi": [-60.0] * n_aps,
                     "building": "NOWHERE"},
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "NOWHERE" in body["error"]["message"]

    def test_legacy_unknown_pin_keeps_string(self, fleet_server):
        n_aps = fleet_server.registry.n_aps
        status, body = _request(
            fleet_server, "POST", "/localize",
            payload={"rssi": [-60.0] * n_aps, "building": "NOWHERE"},
        )
        assert status == 400
        assert isinstance(body["error"], str)
        assert body["error_detail"]["code"] == "bad_request"

    def test_v1_429_overload_body(self, fleet_server):
        """The 429 body keeps its retry hints in both shapes."""
        from repro.api import ReproClient, ReproOverloadError
        from repro.fleet.dispatch import FleetOverloadError

        dispatcher = fleet_server.dispatcher

        async def rejecting_localize(scans, **kwargs):
            raise FleetOverloadError(10, 10, scans.shape[0])

        original = dispatcher.localize
        dispatcher.localize = rejecting_localize
        try:
            n_aps = fleet_server.registry.n_aps
            status, body = _request(
                fleet_server, "POST", "/localize",
                payload={"api_version": 1, "rssi": [-60.0] * n_aps},
            )
            assert status == 429
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retryable"] is True
            assert body["retry_after_ms"] > 0
            assert body["max_pending_rows"] == 10

            # And the typed client surfaces it after its retries.
            client = ReproClient(port=fleet_server.port, max_retries=1)
            with pytest.raises(ReproOverloadError):
                client.localize([-60.0] * n_aps)
            client.close()
        finally:
            dispatcher.localize = original
