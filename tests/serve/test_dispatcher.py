"""Micro-batching dispatcher: coalescing, bit-identity, GIFT fallback."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import BatchingDispatcher


def _gather(dispatcher, rows):
    """Submit every row as its own concurrent request; stack the answers."""

    async def go():
        try:
            results = await asyncio.gather(
                *[dispatcher.localize(row) for row in rows]
            )
            return np.vstack(results)
        finally:
            dispatcher.close()

    return asyncio.run(go())


class TestMicroBatching:
    def test_coalesced_equals_batched_bit_identically(
        self, knn_entry, query_rows
    ):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer, batch_window_ms=50.0, max_batch=1024
        )
        out = _gather(dispatcher, query_rows)
        reference = knn_entry.localizer.predict_batched(query_rows)
        np.testing.assert_array_equal(out, reference)

    def test_concurrent_requests_actually_coalesce(
        self, knn_entry, query_rows
    ):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer, batch_window_ms=50.0, max_batch=1024
        )
        _gather(dispatcher, query_rows)
        stats = dispatcher.stats
        assert stats.requests == len(query_rows)
        assert stats.rows == len(query_rows)
        assert stats.batches < stats.requests
        assert stats.mean_batch_rows() > 1.0

    def test_max_batch_bounds_coalescing(self, knn_entry, query_rows):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer, batch_window_ms=50.0, max_batch=8
        )
        out = _gather(dispatcher, query_rows)
        np.testing.assert_array_equal(
            out, knn_entry.localizer.predict_batched(query_rows)
        )
        assert dispatcher.stats.max_batch_rows <= 8
        assert dispatcher.stats.batches >= len(query_rows) // 8

    def test_max_batch_one_is_per_request_dispatch(
        self, knn_entry, query_rows
    ):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer, batch_window_ms=50.0, max_batch=1
        )
        rows = query_rows[:10]
        out = _gather(dispatcher, rows)
        np.testing.assert_array_equal(
            out, knn_entry.localizer.predict_batched(rows)
        )
        assert dispatcher.stats.batches == len(rows)

    def test_multi_row_request_rides_one_batch(self, knn_entry, query_rows):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer, batch_window_ms=50.0, max_batch=1024
        )

        async def go():
            try:
                single, batch = await asyncio.gather(
                    dispatcher.localize(query_rows[0]),
                    dispatcher.localize(query_rows[1:5]),
                )
                return single, batch
            finally:
                dispatcher.close()

        single, batch = asyncio.run(go())
        assert single.shape == (1, 2)
        assert batch.shape == (4, 2)
        np.testing.assert_array_equal(
            np.vstack([single, batch]),
            knn_entry.localizer.predict_batched(query_rows[:5]),
        )
        assert dispatcher.stats.batches == 1

    def test_chunk_size_does_not_change_values(self, knn_entry, query_rows):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer,
            batch_window_ms=50.0,
            max_batch=1024,
            chunk_size=7,
        )
        out = _gather(dispatcher, query_rows)
        np.testing.assert_array_equal(
            out, knn_entry.localizer.predict_batched(query_rows)
        )


class TestSequentialFallback:
    def test_gift_dispatches_per_request(self, gift_entry, query_rows):
        dispatcher = BatchingDispatcher(
            gift_entry.localizer, batch_window_ms=50.0, max_batch=1024
        )
        assert not dispatcher.batched
        rows = query_rows[:12]
        out = _gather(dispatcher, rows)
        # GIFT keeps no cross-call state, so per-request dispatch equals
        # predicting each row alone, in any order.
        reference = np.vstack(
            [gift_entry.localizer.predict(row[None, :]) for row in rows]
        )
        np.testing.assert_array_equal(out, reference)
        assert dispatcher.stats.sequential_requests == len(rows)
        # No cross-request coalescing on the sequential path.
        assert dispatcher.stats.batches == len(rows)
        assert dispatcher.stats.max_batch_rows == 1

    def test_gift_multi_row_request_stays_one_walk(
        self, gift_entry, query_rows
    ):
        dispatcher = BatchingDispatcher(gift_entry.localizer)
        walk = query_rows[:6]

        async def go():
            try:
                return await dispatcher.localize(walk)
            finally:
                dispatcher.close()

        out = asyncio.run(go())
        np.testing.assert_array_equal(out, gift_entry.localizer.predict(walk))


class TestErrors:
    def test_bad_shape_raises_without_poisoning_dispatcher(
        self, knn_entry, query_rows
    ):
        dispatcher = BatchingDispatcher(
            knn_entry.localizer, batch_window_ms=1.0
        )

        async def go():
            try:
                with pytest.raises(ValueError):
                    await dispatcher.localize(np.zeros(3))  # wrong n_aps
                return await dispatcher.localize(query_rows[0])
            finally:
                dispatcher.close()

        out = asyncio.run(go())
        np.testing.assert_array_equal(
            out, knn_entry.localizer.predict_batched(query_rows[:1])
        )
        assert dispatcher.stats.errors == 1

    def test_empty_request_rejected(self, knn_entry, tiny_suite):
        dispatcher = BatchingDispatcher(knn_entry.localizer)

        async def go():
            try:
                await dispatcher.localize(
                    np.empty((0, tiny_suite.n_aps))
                )
            finally:
                dispatcher.close()

        with pytest.raises(ValueError):
            asyncio.run(go())

    def test_invalid_settings_rejected(self, knn_entry):
        with pytest.raises(ValueError):
            BatchingDispatcher(knn_entry.localizer, batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            BatchingDispatcher(knn_entry.localizer, max_batch=0)
        with pytest.raises(ValueError):
            BatchingDispatcher(knn_entry.localizer, chunk_size=0)

    def test_closed_dispatcher_rejects_requests(self, knn_entry, query_rows):
        dispatcher = BatchingDispatcher(knn_entry.localizer)
        dispatcher.close()

        async def go():
            await dispatcher.localize(query_rows[0])

        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(go())
