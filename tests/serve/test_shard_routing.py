"""Shard-aware serving: routed responses must match unsharded ones.

A server holding a *sharded* warm model (full probe) answers
``/localize_batch`` and coalesced ``/localize`` traffic with exactly
the bytes an unsharded server produces — the dispatcher's shard
grouping and the index's probing are performance moves, never value
changes. Partial probing changes values by design; those answers must
still be self-consistent with the model's own ``predict_batched``.
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.index import IndexConfig
from repro.serve import BatchingDispatcher, LocalizationServer, ModelStore


def _request(port, method, path, payload=None):
    if payload is not None and "api_version" not in payload:
        payload = {"api_version": 1, **payload}
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, json.loads(data)


@pytest.fixture(scope="module")
def sharded_store():
    return ModelStore()


def _serve(entry, store, window_ms=1.0):
    dispatcher = BatchingDispatcher(
        entry.localizer, batch_window_ms=window_ms, max_batch=256
    )
    server = LocalizationServer(entry, dispatcher, store=store, port=0)
    handle = server.start_background()
    return server, handle


class TestShardRoutedBatch:
    @pytest.fixture(scope="class")
    def servers(self, tiny_suite, sharded_store):
        """(unsharded, full-probe sharded, partial-probe sharded)."""
        plain = sharded_store.get_or_fit("KNN", tiny_suite, fast=True)
        full = sharded_store.get_or_fit(
            "KNN", tiny_suite, fast=True,
            index=IndexConfig(kind="region", n_shards=8, n_probe=8),
        )
        partial = sharded_store.get_or_fit(
            "KNN", tiny_suite, fast=True,
            index=IndexConfig(kind="kmeans", n_shards=8, n_probe=2),
        )
        running = [_serve(e, sharded_store) for e in (plain, full, partial)]
        yield [srv for srv, _ in running], (plain, full, partial)
        for _, handle in running:
            handle.shutdown()

    def test_full_probe_batch_matches_unsharded_response(
        self, servers, query_rows
    ):
        (plain_srv, full_srv, _), _ = servers
        payload = {"rssi": query_rows.tolist()}
        status_a, body_a = _request(
            plain_srv.port, "POST", "/localize_batch", payload
        )
        status_b, body_b = _request(
            full_srv.port, "POST", "/localize_batch", payload
        )
        assert status_a == status_b == 200
        assert body_a["locations"] == body_b["locations"]

    def test_partial_probe_batch_matches_its_own_model(
        self, servers, query_rows
    ):
        (_, _, partial_srv), (_, _, partial_entry) = servers
        status, body = _request(
            partial_srv.port, "POST", "/localize_batch",
            {"rssi": query_rows.tolist()},
        )
        assert status == 200
        expected = partial_entry.localizer.predict_batched(query_rows)
        np.testing.assert_array_equal(np.asarray(body["locations"]), expected)

    def test_models_endpoint_reports_shard_stats(self, servers):
        (_, full_srv, _), _ = servers
        status, body = _request(full_srv.port, "GET", "/models")
        assert status == 200
        kinds = {
            (m["index"] or {}).get("kind", "exhaustive")
            for m in body["models"]
        }
        assert "region" in kinds and "kmeans" in kinds
        sharded_infos = [
            m["index"] for m in body["models"] if m["index"] is not None
            and m["index"]["kind"] != "exhaustive"
        ]
        assert all("rows_per_shard" in info for info in sharded_infos)

    def test_coalesced_requests_group_by_shard_and_stay_identical(
        self, servers, query_rows
    ):
        # Fire concurrent single-scan requests at the partial-probe
        # server so the dispatcher coalesces and shard-groups them;
        # every answer must equal the model's own batched prediction.
        (_, _, partial_srv), (_, _, partial_entry) = servers
        rows = query_rows[:24]
        results: dict[int, np.ndarray] = {}

        def one(i):
            status, body = _request(
                partial_srv.port, "POST", "/localize",
                {"rssi": rows[i].tolist()},
            )
            assert status == 200
            results[i] = np.asarray(body["location"])

        threads = [threading.Thread(target=one, args=(i,)) for i in range(24)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = partial_entry.localizer.predict_batched(rows)
        got = np.vstack([results[i] for i in range(24)])
        np.testing.assert_array_equal(got, expected)
        stats = partial_srv.dispatcher.stats
        # Shard grouping only engages on multi-row coalesced flushes
        # with >1 distinct route; either way the counters stay coherent.
        assert stats.shard_groups >= stats.shard_grouped_batches
