"""ModelStore: warm reuse, content-addressed keys, disk round-trips."""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.eval import task_fingerprint, train_fingerprint, suite_fingerprint
from repro.serve import ModelStore


class TestWarmMemory:
    def test_get_or_fit_fits_once(self, tiny_suite):
        store = ModelStore()
        first = store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        second = store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert first is second
        assert first.localizer is second.localizer
        assert store.fits == 1
        assert second.hits == 1

    def test_alias_resolves_to_same_model(self, tiny_suite):
        store = ModelStore()
        a = store.get_or_fit("LTKNN", tiny_suite, seed=0, fast=True)
        b = store.get_or_fit("LT-KNN", tiny_suite, seed=0, fast=True)
        assert a is b
        assert a.key.framework == "LT-KNN"

    def test_seed_changes_key(self, tiny_suite):
        store = ModelStore()
        a = store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        b = store.get_or_fit("KNN", tiny_suite, seed=1, fast=True)
        assert a is not b
        assert store.fits == 2

    def test_fit_matches_engine_seeding(self, tiny_suite):
        # The store's fit RNG is the engine's per-task seeding at
        # framework index 0 — a served model answers exactly like the
        # model the evaluation engine fits.
        from repro.baselines.registry import make_localizer

        store = ModelStore()
        entry = store.get_or_fit("KNN", tiny_suite, seed=3, fast=True)
        reference = make_localizer("KNN", suite_name=tiny_suite.name, fast=True)
        reference.fit(
            tiny_suite.train,
            tiny_suite.floorplan,
            rng=np.random.default_rng([3, 0]),
        )
        queries = tiny_suite.test_epochs[0].rssi
        np.testing.assert_array_equal(
            entry.localizer.predict_batched(queries),
            reference.predict_batched(queries),
        )


class TestContentAddressing:
    def test_key_digest_uses_shared_fingerprint_scheme(self, tiny_suite):
        store = ModelStore()
        key = store.key_for("KNN", tiny_suite, seed=0, fast=True)
        assert key.train_hash == train_fingerprint(tiny_suite)
        assert key.digest == task_fingerprint(
            "KNN", key.train_hash, seed=0, fast=True, schema_tag="store-v2"
        )
        # ...but under the store's own schema tag, so engine cache-schema
        # bumps never orphan persisted models.
        assert key.digest != task_fingerprint(
            "KNN", key.train_hash, seed=0, fast=True
        )

    def test_train_fingerprint_ignores_test_epochs(self, tiny_suite):
        shorter = dataclasses.replace(
            tiny_suite,
            test_epochs=tiny_suite.test_epochs[:2],
            epoch_labels=tiny_suite.epoch_labels[:2],
        )
        assert train_fingerprint(shorter) == train_fingerprint(tiny_suite)
        # ...while the full suite fingerprint (trace identity) differs.
        assert suite_fingerprint(shorter) != suite_fingerprint(tiny_suite)

    def test_train_fingerprint_tracks_training_data(self, tiny_suite):
        perturbed = dataclasses.replace(
            tiny_suite,
            train=tiny_suite.train.select(
                np.arange(tiny_suite.train.n_samples - 1)
            ),
        )
        assert train_fingerprint(perturbed) != train_fingerprint(tiny_suite)


class TestDiskPersistence:
    def test_save_load_round_trip_bit_identical(self, tiny_suite, tmp_path):
        queries = np.vstack([ds.rssi for ds in tiny_suite.test_epochs])
        first = ModelStore(tmp_path / "models")
        fitted = first.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert fitted.source == "fitted"

        restarted = ModelStore(tmp_path / "models")
        loaded = restarted.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert loaded.source == "disk"
        assert restarted.fits == 0
        assert restarted.loads == 1
        np.testing.assert_array_equal(
            loaded.localizer.predict_batched(queries),
            fitted.localizer.predict_batched(queries),
        )

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"\x80\x7fbad protocol", b""],
        ids=["text", "bad-protocol", "empty"],
    )
    def test_corrupt_artifact_refits(self, tiny_suite, tmp_path, garbage):
        model_dir = tmp_path / "models"
        ModelStore(model_dir).get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        for path in model_dir.glob("*.pkl"):
            path.write_bytes(garbage)
        store = ModelStore(model_dir)
        entry = store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert entry.source == "fitted"
        assert store.loads == 0

    def test_mislabeled_artifact_rejected(self, tiny_suite, tmp_path):
        # A payload whose localizer is not an instance of the registered
        # class must be refit, not served (the warm-load validation hook).
        model_dir = tmp_path / "models"
        store = ModelStore(model_dir)
        key = store.key_for("KNN", tiny_suite, seed=0, fast=True)
        payload = {
            "schema": 1,
            "framework": key.framework,
            "train_hash": key.train_hash,
            "seed": 0,
            "fast": True,
            "suite_name": tiny_suite.name,
            "n_aps": tiny_suite.n_aps,
            "localizer": object(),  # wrong class
        }
        with (model_dir / f"{key.digest}.pkl").open("wb") as fh:
            pickle.dump(payload, fh)
        entry = store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert entry.source == "fitted"

    def test_renamed_artifact_with_wrong_seed_rejected(
        self, tiny_suite, tmp_path
    ):
        # Same suite → same train_hash, so only the payload's own seed
        # record can expose the rename; it must be refit, not served.
        model_dir = tmp_path / "models"
        store = ModelStore(model_dir)
        store.get_or_fit("KNN", tiny_suite, seed=1, fast=True)
        key0 = store.key_for("KNN", tiny_suite, seed=0, fast=True)
        key1 = store.key_for("KNN", tiny_suite, seed=1, fast=True)
        (model_dir / f"{key1.digest}.pkl").rename(
            model_dir / f"{key0.digest}.pkl"
        )
        fresh = ModelStore(model_dir)
        entry = fresh.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        assert entry.source == "fitted"
        assert fresh.loads == 0

    def test_describe_lists_entries(self, tiny_suite, tmp_path):
        store = ModelStore(tmp_path / "models")
        store.get_or_fit("KNN", tiny_suite, seed=0, fast=True)
        store.get_or_fit("GIFT", tiny_suite, seed=0, fast=True)
        summary = store.describe()
        assert {m["framework"] for m in summary["models"]} == {"KNN", "GIFT"}
        assert summary["fits"] == 2
        assert summary["model_dir"] == str(tmp_path / "models")


@pytest.mark.parametrize("framework", ["KNN", "GIFT"])
def test_store_entry_describe_is_json_ready(tiny_suite, framework):
    import json

    store = ModelStore()
    entry = store.get_or_fit(framework, tiny_suite, seed=0, fast=True)
    encoded = json.dumps(entry.describe())
    assert framework in encoded
