"""Observability over HTTP: /metrics, trace opt-in, structured logs."""

from __future__ import annotations

import http.client
import io
import json

import pytest

from repro import __version__
from repro.obs import parse_prometheus_text
from repro.serve import BatchingDispatcher, LocalizationServer


@pytest.fixture(scope="module")
def server(knn_entry, serve_store):
    dispatcher = BatchingDispatcher(
        knn_entry.localizer, batch_window_ms=1.0, max_batch=256
    )
    srv = LocalizationServer(
        knn_entry, dispatcher, store=serve_store, port=0,
        log_json=True, slow_ms=None,
    )
    # Capture the structured log deterministically (the background
    # server thread writes to the logger's stream at emit time).
    srv.log._stream = io.StringIO()
    handle = srv.start_background()
    yield srv
    handle.shutdown()


def _request(server, method, path, payload=None):
    if payload is not None and "api_version" not in payload:
        payload = {"api_version": 1, **payload}
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    conn.request(
        method, path, body=json.dumps(payload) if payload is not None else None
    )
    response = conn.getresponse()
    data = response.read()
    content_type = response.getheader("Content-Type")
    conn.close()
    return response.status, data, content_type


def _json(server, method, path, payload=None):
    status, data, _ = _request(server, method, path, payload)
    return status, json.loads(data)


def _log_records(server) -> list[dict]:
    return [
        json.loads(line)
        for line in server.log._stream.getvalue().splitlines()
    ]


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, server, query_rows):
        _json(server, "POST", "/localize", {"rssi": query_rows[0].tolist()})
        status, data, content_type = _request(server, "GET", "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        families = parse_prometheus_text(data.decode())
        assert "repro_http_requests_total" in families
        assert "repro_http_request_seconds" in families
        assert "repro_batch_compute_seconds" in families

    def test_request_counters_advance_by_endpoint(self, server, query_rows):
        def count():
            _, data, _ = _request(server, "GET", "/metrics")
            samples = parse_prometheus_text(data.decode())[
                "repro_http_requests_total"
            ]["samples"]
            return sum(
                v
                for (name, labels), v in samples.items()
                if ("endpoint", "/localize") in labels
                and ("status", "200") in labels
            )

        before = count()
        _json(server, "POST", "/localize", {"rssi": query_rows[0].tolist()})
        assert count() == before + 1

    def test_unknown_paths_bounded_to_other_label(self, server):
        _json(server, "GET", "/no-such-endpoint-xyz")
        _, data, _ = _request(server, "GET", "/metrics")
        samples = parse_prometheus_text(data.decode())[
            "repro_http_requests_total"
        ]["samples"]
        endpoints = {
            dict(labels)["endpoint"] for (_, labels) in samples
        }
        assert "other" in endpoints
        assert "/no-such-endpoint-xyz" not in endpoints

    def test_post_metrics_is_405(self, server):
        status, body = _json(server, "POST", "/metrics", payload={})
        assert status == 405
        assert "error" in body


class TestTraceOptIn:
    def test_trace_spans_attached_when_requested(self, server, query_rows):
        status, body = _json(
            server, "POST", "/localize",
            {"rssi": query_rows[0].tolist(), "trace": True},
        )
        assert status == 200
        trace = body["trace"]
        stages = [span["stage"] for span in trace["spans"]]
        assert "queue" in stages and "compute" in stages
        assert trace["total_ms"] > 0
        assert trace["request_id"]

    def test_no_trace_by_default(self, server, query_rows):
        status, body = _json(
            server, "POST", "/localize", {"rssi": query_rows[0].tolist()}
        )
        assert status == 200
        assert "trace" not in body

    def test_non_boolean_trace_rejected(self, server, query_rows):
        status, body = _json(
            server, "POST", "/localize",
            {"rssi": query_rows[0].tolist(), "trace": "yes"},
        )
        assert status == 400
        assert "trace" in body["error"]["message"]

    def test_client_pinned_request_id_echoed(self, server, query_rows):
        status, body = _json(
            server, "POST", "/localize",
            {
                "rssi": query_rows[0].tolist(),
                "trace": True,
                "request_id": "pin-me-123",
            },
        )
        assert status == 200
        assert body["trace"]["request_id"] == "pin-me-123"

    def test_malformed_request_id_rejected(self, server, query_rows):
        status, body = _json(
            server, "POST", "/localize",
            {"rssi": query_rows[0].tolist(), "request_id": "has spaces!"},
        )
        assert status == 400
        assert "request_id" in body["error"]["message"]


class TestErrorEnvelope:
    def test_errors_carry_request_id(self, server):
        status, body = _json(server, "POST", "/localize", {"rssi": "nope"})
        assert status == 400
        assert isinstance(body["request_id"], str) and body["request_id"]

    def test_pinned_id_echoed_in_error(self, server):
        status, body = _json(
            server, "POST", "/localize",
            {"rssi": "nope", "request_id": "err-trace-1"},
        )
        assert status == 400
        assert body["request_id"] == "err-trace-1"


class TestStructuredLog:
    def test_request_line_links_to_trace(self, server, query_rows):
        status, body = _json(
            server, "POST", "/localize",
            {
                "rssi": query_rows[0].tolist(),
                "trace": True,
                "request_id": "log-link-42",
            },
        )
        assert status == 200
        records = [
            r for r in _log_records(server)
            if r.get("request_id") == "log-link-42"
        ]
        assert records, "request line missing from structured log"
        record = records[-1]
        assert record["component"] == "serve"
        assert record["event"] == "request"
        assert record["endpoint"] == "/localize"
        assert record["status"] == 200
        assert record["duration_ms"] > 0


class TestHealthz:
    def test_version_and_uptime(self, server):
        status, body = _json(server, "GET", "/healthz")
        assert status == 200
        assert body["version"] == __version__
        assert body["uptime_seconds"] >= 0
