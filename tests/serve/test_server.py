"""HTTP endpoint tests: healthz, localize, batch, malformed requests."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.serve import BatchingDispatcher, LocalizationServer


@pytest.fixture(scope="module")
def server(knn_entry, serve_store):
    dispatcher = BatchingDispatcher(
        knn_entry.localizer, batch_window_ms=1.0, max_batch=256
    )
    srv = LocalizationServer(
        knn_entry, dispatcher, store=serve_store, port=0
    )
    handle = srv.start_background()
    yield srv
    handle.shutdown()


def _request(server, method, path, payload=None, raw_body=None):
    # Wire protocol v1 requires api_version in every body; these tests
    # exercise payload semantics, so declare it unless a case overrides.
    if payload is not None and "api_version" not in payload:
        payload = {"api_version": 1, **payload}
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, json.loads(data)


class TestHealthz:
    def test_ok(self, server):
        status, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["framework"] == "KNN"
        assert body["uptime_seconds"] >= 0
        assert "dispatcher" in body

    def test_wrong_method(self, server):
        status, body = _request(server, "POST", "/healthz", payload={})
        assert status == 405
        assert "error" in body


class TestModels:
    def test_lists_warm_models(self, server):
        status, body = _request(server, "GET", "/models")
        assert status == 200
        assert any(m["framework"] == "KNN" for m in body["models"])


class TestLocalize:
    def test_single_scan_matches_predict(self, server, knn_entry, query_rows):
        row = query_rows[0]
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": row.tolist()}
        )
        assert status == 200
        expected = knn_entry.localizer.predict_batched(row[None, :])
        np.testing.assert_array_equal(
            np.asarray(body["location"]), expected[0]
        )

    def test_batch_matches_predict_batched_bit_identically(
        self, server, knn_entry, query_rows
    ):
        rows = query_rows[:16]
        status, body = _request(
            server,
            "POST",
            "/localize_batch",
            payload={"rssi": rows.tolist()},
        )
        assert status == 200
        assert body["n"] == len(rows)
        np.testing.assert_array_equal(
            np.asarray(body["locations"]),
            knn_entry.localizer.predict_batched(rows),
        )

    def test_nested_rssi_rejected_on_single_endpoint(self, server, query_rows):
        status, body = _request(
            server,
            "POST",
            "/localize",
            payload={"rssi": query_rows[:2].tolist()},
        )
        assert status == 400
        assert "flat list" in body["error"]["message"]


class TestMalformedRequests:
    def test_invalid_json(self, server):
        status, body = _request(
            server, "POST", "/localize", raw_body="{not json"
        )
        assert status == 400
        assert "invalid JSON" in body["error"]["message"]

    def test_empty_body(self, server):
        status, body = _request(server, "POST", "/localize")
        assert status == 400
        assert "empty request body" in body["error"]["message"]

    def test_missing_rssi_field(self, server):
        status, body = _request(
            server, "POST", "/localize", payload={"scan": [1, 2]}
        )
        assert status == 400
        assert "rssi" in body["error"]["message"]

    def test_wrong_row_width(self, server, tiny_suite):
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": [-50.0, -60.0]}
        )
        assert status == 400
        assert str(tiny_suite.n_aps) in body["error"]["message"]

    def test_non_numeric_values(self, server, tiny_suite):
        scan = ["loud"] * tiny_suite.n_aps
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": scan}
        )
        assert status == 400

    def test_non_finite_values(self, server, tiny_suite):
        scan = [float("nan")] * tiny_suite.n_aps
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": scan}
        )
        assert status == 400
        assert "finite" in body["error"]["message"]

    def test_empty_batch(self, server):
        status, body = _request(
            server, "POST", "/localize_batch", payload={"rssi": []}
        )
        assert status == 400

    def test_ragged_batch(self, server, tiny_suite):
        n = tiny_suite.n_aps
        status, body = _request(
            server,
            "POST",
            "/localize_batch",
            payload={"rssi": [[-50.0] * n, [-50.0] * (n - 1)]},
        )
        assert status == 400

    def test_unknown_path(self, server):
        status, body = _request(server, "GET", "/teleport")
        assert status == 404

    def test_wrong_method_on_localize(self, server):
        status, body = _request(server, "GET", "/localize")
        assert status == 405

    def test_request_counter_advances(self, server):
        before = server.requests_served
        _request(server, "GET", "/healthz")
        assert server.requests_served == before + 1


class TestOutOfBandClipping:
    def test_out_of_band_rssi_clipped_not_rejected(
        self, server, knn_entry, tiny_suite
    ):
        # -104 dBm from real hardware clips to the NO_SIGNAL floor.
        scan = [-104.0] * tiny_suite.n_aps
        status, body = _request(
            server, "POST", "/localize", payload={"rssi": scan}
        )
        assert status == 200
        clipped = np.full((1, tiny_suite.n_aps), -100.0)
        np.testing.assert_array_equal(
            np.asarray(body["location"]),
            knn_entry.localizer.predict_batched(clipped)[0],
        )
