"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_command_parses(self):
        args = build_parser().parse_args(["figure", "FIG3", "--seed", "3"])
        assert args.id == "FIG3"
        assert args.seed == 3
        assert not args.fast

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "office"])
        assert "STONE" in args.frameworks

    def test_suite_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "mall"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExtendedParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "office"])
        assert args.framework == "STONE"
        assert args.port == 8000
        assert args.batch_window_ms == 2.0
        assert args.max_batch == 256
        assert args.model_dir is None
        assert args.chunk_size is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "uji",
                "--framework",
                "KNN",
                "--port",
                "0",
                "--batch-window-ms",
                "5.5",
                "--max-batch",
                "64",
                "--model-dir",
                "/tmp/models",
            ]
        )
        assert args.suite == "uji"
        assert args.port == 0
        assert args.batch_window_ms == 5.5
        assert args.max_batch == 64
        assert args.model_dir == "/tmp/models"

    def test_track_defaults(self):
        args = build_parser().parse_args(["track", "office"])
        assert args.framework == "STONE"
        assert args.epoch == 0

    def test_compress_flags(self):
        args = build_parser().parse_args(
            ["compress", "uji", "--bits", "4", "--sparsity", "0.5"]
        )
        assert args.bits == 4
        assert args.sparsity == 0.5

    def test_multifloor_defaults(self):
        args = build_parser().parse_args(["multifloor", "--months", "3"])
        assert args.months == 3
        assert args.framework == "KNN"


class TestCommands:
    def test_figure_fig3_runs(self, capsys):
        code = main(["figure", "FIG3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "office" in out

    def test_figure_unknown_id(self, capsys):
        code = main(["figure", "FIG99"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_figure_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "fig3.txt"
        code = main(["figure", "FIG3", "--out", str(out_file)])
        assert code == 0
        assert "office" in out_file.read_text()

    @pytest.mark.slow
    def test_compare_runs_fast(self, capsys):
        code = main(
            ["compare", "office", "--frameworks", "KNN,GIFT", "--fast"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MEAN" in out
        assert "KNN" in out

    @pytest.mark.slow
    def test_suite_describe_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "train.npz"
        code = main(["suite", "office", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        from repro.datasets import FingerprintDataset

        ds = FingerprintDataset.load(out_file)
        assert ds.n_samples > 0

    @pytest.mark.slow
    def test_track_runs_fast(self, capsys):
        code = main(["track", "office", "--framework", "KNN", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "viterbi" in out
        assert "walk:" in out

    @pytest.mark.slow
    def test_multifloor_runs_fast(self, capsys):
        code = main(
            [
                "multifloor",
                "--months",
                "2",
                "--aps-per-floor",
                "10",
                "--fast",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "floor" in out
