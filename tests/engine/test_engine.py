"""Tests for the parallel evaluation engine and its result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    EvalTask,
    ParallelRunner,
    ResultCache,
    available_cpus,
    compare_frameworks,
    run_task,
    suite_fingerprint,
)

FRAMEWORKS = ("KNN", "LT-KNN", "GIFT")


@pytest.fixture(scope="module")
def serial_reference(tiny_suite):
    return compare_frameworks(tiny_suite, FRAMEWORKS, seed=0, fast=True)


def _assert_same_comparison(a, b):
    assert a.frameworks() == b.frameworks()
    for name in a.frameworks():
        np.testing.assert_array_equal(
            a.results[name].mean_errors(), b.results[name].mean_errors()
        )


class TestParallelRunner:
    def test_serial_runner_matches_compare_frameworks(
        self, tiny_suite, serial_reference
    ):
        runner = ParallelRunner(jobs=1)
        _assert_same_comparison(
            runner.run(tiny_suite, FRAMEWORKS, seed=0, fast=True),
            serial_reference,
        )

    def test_process_pool_matches_serial(self, tiny_suite, serial_reference):
        runner = ParallelRunner(jobs=2)
        _assert_same_comparison(
            runner.run(tiny_suite, FRAMEWORKS, seed=0, fast=True),
            serial_reference,
        )

    def test_chunked_inference_matches_serial(self, tiny_suite, serial_reference):
        runner = ParallelRunner(jobs=1, chunk_size=5)
        _assert_same_comparison(
            runner.run(tiny_suite, FRAMEWORKS, seed=0, fast=True),
            serial_reference,
        )

    def test_run_suites_grid(self, tiny_suite):
        runner = ParallelRunner(jobs=1)
        grid = runner.run_suites([tiny_suite], ("KNN",), seed=0, fast=True)
        assert list(grid) == [tiny_suite.name]
        assert grid[tiny_suite.name].frameworks() == ["KNN"]

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=-1)
        with pytest.raises(ValueError):
            ParallelRunner(chunk_size=0)

    def test_jobs_zero_means_auto(self, tiny_suite, serial_reference):
        runner = ParallelRunner(jobs=0)
        assert runner.jobs == available_cpus()
        assert runner.jobs >= 1
        _assert_same_comparison(
            runner.run(tiny_suite, FRAMEWORKS, seed=0, fast=True),
            serial_reference,
        )

    def test_duplicate_suite_names_rejected(self, tiny_suite):
        runner = ParallelRunner(jobs=1)
        with pytest.raises(ValueError, match="unique"):
            runner.run_suites(
                [tiny_suite, tiny_suite], ("KNN",), seed=0, fast=True
            )

    def test_seeding_is_positional(self, tiny_suite):
        # Framework at index i always gets rng([seed, i]) — reordering
        # the list changes each framework's rng, like the serial loop.
        runner = ParallelRunner(jobs=1)
        forward = runner.run(tiny_suite, ("KNN", "GIFT"), seed=0, fast=True)
        task = EvalTask(
            framework="GIFT",
            suite_name=tiny_suite.name,
            seed=0,
            seed_index=1,
            fast=True,
        )
        direct = run_task(task, tiny_suite)
        np.testing.assert_array_equal(
            forward.results["GIFT"].mean_errors(), direct.mean_errors()
        )


class TestResultCache:
    def test_second_run_hits_cache(self, tiny_suite, tmp_path, serial_reference):
        runner = ParallelRunner(cache_dir=tmp_path / "cache")
        first = runner.run(tiny_suite, FRAMEWORKS, seed=0, fast=True)
        assert runner.cache.misses == len(FRAMEWORKS)
        second = runner.run(tiny_suite, FRAMEWORKS, seed=0, fast=True)
        assert runner.cache.hits == len(FRAMEWORKS)
        _assert_same_comparison(first, second)
        _assert_same_comparison(second, serial_reference)

    def test_seed_changes_miss(self, tiny_suite, tmp_path):
        runner = ParallelRunner(cache_dir=tmp_path / "cache")
        runner.run(tiny_suite, ("KNN",), seed=0, fast=True)
        runner.run(tiny_suite, ("KNN",), seed=1, fast=True)
        assert runner.cache.hits == 0
        assert runner.cache.misses == 2

    def test_suite_content_changes_miss(self, tiny_suite, tmp_path):
        import dataclasses

        runner = ParallelRunner(cache_dir=tmp_path / "cache")
        runner.run(tiny_suite, ("KNN",), seed=0, fast=True)
        perturbed = dataclasses.replace(
            tiny_suite,
            train=tiny_suite.train.select(
                np.arange(tiny_suite.train.n_samples - 1)
            ),
        )
        runner.run(perturbed, ("KNN",), seed=0, fast=True)
        assert runner.cache.hits == 0

    def test_corrupt_entry_is_a_miss(self, tiny_suite, tmp_path):
        cache_dir = tmp_path / "cache"
        runner = ParallelRunner(cache_dir=cache_dir)
        runner.run(tiny_suite, ("KNN",), seed=0, fast=True)
        for path in cache_dir.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        rerun = ParallelRunner(cache_dir=cache_dir)
        result = rerun.run(tiny_suite, ("KNN",), seed=0, fast=True)
        assert rerun.cache.hits == 0
        assert result.frameworks() == ["KNN"]

    def test_clear(self, tiny_suite, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(cache_dir=tmp_path / "cache")
        runner.run(tiny_suite, ("KNN", "GIFT"), seed=0, fast=True)
        assert cache.clear() == 2
        assert cache.clear() == 0


class TestSuiteFingerprint:
    def test_deterministic(self, tiny_suite):
        assert suite_fingerprint(tiny_suite) == suite_fingerprint(tiny_suite)

    def test_sensitive_to_labels(self, tiny_suite):
        import dataclasses

        renamed = dataclasses.replace(
            tiny_suite, epoch_labels=[label + "x" for label in tiny_suite.epoch_labels]
        )
        assert suite_fingerprint(renamed) != suite_fingerprint(tiny_suite)

    def test_sensitive_to_floorplan(self, tiny_suite):
        # fit() consumes the floorplan (STONE's floorplan-aware
        # triplets), so changing its geometry must change the key.
        import dataclasses

        fp = tiny_suite.floorplan
        wider = dataclasses.replace(
            tiny_suite,
            floorplan=dataclasses.replace(fp, width=fp.width + 1.0),
        )
        assert suite_fingerprint(wider) != suite_fingerprint(tiny_suite)
