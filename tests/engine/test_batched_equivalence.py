"""Batched-vs-sequential equivalence for every registered localizer.

The :class:`~repro.baselines.base.BatchedLocalizer` contract: a batched
``predict`` call equals the per-row predictions stacked. These tests pin
that property for every framework in the registry (GIFT is asserted to
*opt out* — its walk decoding is sequential by design), plus the KNN
tie-break and empty/single-query edge cases the vectorized vote must
preserve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import BatchedLocalizer
from repro.baselines.registry import (
    ALL_FRAMEWORKS,
    framework_capabilities,
    make_localizer,
    supports_batched_inference,
)
from repro.core import KNNHead
from repro.geometry import build_grid_floorplan

from ..conftest import make_synthetic_dataset

#: Frameworks whose predict is row-independent (everything but GIFT).
BATCHED = tuple(n for n in ALL_FRAMEWORKS if n != "GIFT")


@pytest.fixture(scope="module")
def fitted_localizers():
    """Every batch-safe framework, fitted once on a tiny dataset."""
    train = make_synthetic_dataset(n_rps=6, fpr=3, n_aps=12, seed=3)
    floorplan = build_grid_floorplan("tiny", width=12.0, height=10.0, rp_spacing=2.0)
    fitted = {}
    for name in BATCHED:
        localizer = make_localizer(name, suite_name="office", fast=True)
        localizer.fit(train, floorplan, rng=np.random.default_rng(11))
        fitted[name] = localizer
    return train, fitted


class TestRegistryCapabilities:
    def test_all_but_gift_are_batched(self):
        for name in BATCHED:
            assert supports_batched_inference(name), name
        assert not supports_batched_inference("GIFT")

    def test_capabilities_resolve_aliases(self):
        caps = framework_capabilities("ltknn")
        assert caps.name == "LT-KNN"
        assert caps.batched_inference
        assert caps.requires_retraining

    def test_unknown_framework_rejected(self):
        with pytest.raises(KeyError):
            framework_capabilities("teleport")


class TestBatchedEquivalence:
    def _queries(self, train, n, seed=0):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, train.n_samples, size=n)
        jitter = rng.normal(0.0, 0.5, size=(n, train.n_aps))
        return np.clip(train.rssi[rows] + jitter, -100.0, 0.0)

    @pytest.mark.parametrize("name", BATCHED)
    def test_batch_matches_per_row(self, fitted_localizers, name):
        train, fitted = fitted_localizers
        localizer = fitted[name]
        queries = self._queries(train, 40, seed=1)
        batched = localizer.predict(queries)
        rows = np.vstack([localizer.predict(q[None, :]) for q in queries])
        np.testing.assert_allclose(batched, rows, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("name", BATCHED)
    def test_chunked_matches_unchunked(self, fitted_localizers, name):
        train, fitted = fitted_localizers
        localizer = fitted[name]
        queries = self._queries(train, 23, seed=2)
        full = localizer.predict_batched(queries)
        chunked = localizer.predict_batched(queries, chunk_size=7)
        np.testing.assert_allclose(chunked, full, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("name", BATCHED)
    def test_empty_batch(self, fitted_localizers, name):
        train, fitted = fitted_localizers
        out = fitted[name].predict_batched(np.empty((0, train.n_aps)))
        assert out.shape == (0, 2)

    @pytest.mark.parametrize("name", BATCHED)
    def test_single_query(self, fitted_localizers, name):
        train, fitted = fitted_localizers
        localizer = fitted[name]
        out = localizer.predict(train.rssi[:1])
        assert out.shape == (1, 2)
        assert np.isfinite(out).all()

    def test_gift_is_sequence_stateful(self):
        # GIFT's predictions depend on scan order: the contract test is
        # that it declares itself non-batched, not that rows match.
        localizer = make_localizer("GIFT")
        assert not localizer.batched_inference
        assert not isinstance(localizer, BatchedLocalizer)


class TestKNNHeadVectorizedVote:
    def _loop_predict_rp(self, head, queries):
        """The seed's per-row reference implementation of predict_rp."""
        dist, idx = head.kneighbors(queries)
        labels = head._rp_indices[idx]
        out = np.empty(labels.shape[0], dtype=np.int64)
        for i in range(labels.shape[0]):
            values, counts = np.unique(labels[i], return_counts=True)
            winners = values[counts == counts.max()]
            if winners.size == 1:
                out[i] = winners[0]
            else:
                for j in range(labels.shape[1]):
                    if labels[i, j] in winners:
                        out[i] = labels[i, j]
                        break
        return out

    def _random_head(self, seed, k=3):
        rng = np.random.default_rng(seed)
        n_rps, per_rp, dim = 5, 3, 4
        emb = rng.normal(size=(n_rps * per_rp, dim))
        labels = rng.permutation(np.repeat(np.arange(10, 10 + n_rps), per_rp))
        locs = rng.normal(size=(n_rps * per_rp, 2))
        return KNNHead(k=k).fit(emb, labels, locs), rng

    @pytest.mark.parametrize("seed", range(10))
    def test_vote_matches_loop_reference(self, seed):
        head, rng = self._random_head(seed)
        queries = rng.normal(size=(30, 4))
        np.testing.assert_array_equal(
            head.predict_rp(queries), self._loop_predict_rp(head, queries)
        )

    def test_tie_break_prefers_nearest_winner(self):
        # k=2 with one reference each of two RPs: always a 1-1 tie; the
        # nearest neighbour's RP must win.
        emb = np.array([[0.0, 0.0], [4.0, 0.0]])
        head = KNNHead(k=2).fit(
            emb, np.array([5, 9]), np.array([[0.0, 0.0], [4.0, 0.0]])
        )
        assert head.predict_rp(np.array([[1.0, 0.0]]))[0] == 5
        assert head.predict_rp(np.array([[3.0, 0.0]]))[0] == 9

    def test_tie_break_exact_integer_distances(self):
        # Three RPs, k=3, all counts equal: winner = nearest's label even
        # when it is not the smallest label value.
        emb = np.array([[0.0, 0.0], [2.0, 0.0], [5.0, 0.0]])
        head = KNNHead(k=3).fit(
            emb,
            np.array([7, 3, 1]),
            np.array([[0.0, 0.0], [2.0, 0.0], [5.0, 0.0]]),
        )
        assert head.predict_rp(np.array([[1.9, 0.0]]))[0] == 3

    def test_classify_coords_use_first_reference_row(self):
        # Two references of the same RP at different coordinates: the
        # mapping must pick the first row (seed behaviour).
        emb = np.array([[0.0, 0.0], [0.1, 0.0]])
        locs = np.array([[1.0, 2.0], [9.0, 9.0]])
        head = KNNHead(k=1).fit(emb, np.array([4, 4]), locs)
        np.testing.assert_array_equal(
            head.predict_location(np.array([[0.0, 0.0]])), [[1.0, 2.0]]
        )

    def test_chunked_distance_blocks_match(self):
        head, rng = self._random_head(123)
        queries = rng.normal(size=(50, 4))
        expected_rp = head.predict_rp(queries)
        expected_loc = head.predict_location(queries)
        _, expected_dist = head.per_rp_distances(queries)
        head.chunk_size = 7
        np.testing.assert_array_equal(head.predict_rp(queries), expected_rp)
        np.testing.assert_array_equal(
            head.predict_location(queries), expected_loc
        )
        # Raw distances may differ by 1 ulp: BLAS blocks a (7, d) @ (d, n)
        # product differently from a (50, d) one. Discrete outputs above
        # are asserted exact; the distance surface gets a tight allclose.
        _, chunked_dist = head.per_rp_distances(queries)
        np.testing.assert_allclose(chunked_dist, expected_dist, rtol=1e-12, atol=1e-12)

    def test_empty_queries(self):
        head, _ = self._random_head(0)
        assert head.predict_rp(np.empty((0, 4))).shape == (0,)
        assert head.predict_location(np.empty((0, 4))).shape == (0, 2)
        labels, dist = head.per_rp_distances(np.empty((0, 4)))
        assert dist.shape == (0, labels.shape[0])
