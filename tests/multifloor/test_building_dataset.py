"""Tests for the building model and multi-floor containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.fingerprint import FingerprintDataset
from repro.geometry import build_grid_floorplan
from repro.multifloor import (
    Building,
    MultiFloorDataset,
    MultiFloorSuite,
    SlabModel,
)


def grid(name="f"):
    return build_grid_floorplan(name, width=12.0, height=10.0, rp_spacing=2.0)


def tiny_mf_dataset(n_floors=2, rows_per_floor=4, n_aps=6):
    n = n_floors * rows_per_floor
    fingerprints = FingerprintDataset(
        rssi=np.full((n, n_aps), -60.0),
        rp_indices=np.arange(n, dtype=np.int64),
        locations=np.zeros((n, 2)),
        times_hours=np.zeros(n),
        epochs=np.zeros(n, dtype=np.int64),
    )
    floors = np.repeat(np.arange(n_floors), rows_per_floor)
    return MultiFloorDataset(fingerprints=fingerprints, floor_indices=floors)


class TestSlabModel:
    def test_zero_slabs_zero_attenuation(self):
        rng = np.random.default_rng(0)
        assert SlabModel().attenuation_db(0, rng) == 0.0

    @given(n=st.integers(min_value=1, max_value=5), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_attenuation_nonnegative_and_grows(self, n, seed):
        slab = SlabModel(per_slab_db=18.0, jitter_db=2.0)
        rng = np.random.default_rng(seed)
        att = slab.attenuation_db(n, rng)
        assert att >= 0.0
        # n slabs should attenuate at least as much as the jitter allows
        # below the deterministic bulk.
        assert att >= 18.0 * n - 5 * 2.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SlabModel(per_slab_db=0.0)
        with pytest.raises(ValueError):
            SlabModel(jitter_db=-1.0)
        with pytest.raises(ValueError):
            SlabModel().attenuation_db(-1, np.random.default_rng(0))


class TestBuilding:
    def test_floor_access_and_slabs(self):
        b = Building("b", [grid("f0"), grid("f1"), grid("f2")])
        assert b.n_floors == 3
        assert b.floor(1).name == "f1"
        assert b.slabs_between(0, 2) == 2
        assert b.slabs_between(2, 2) == 0

    def test_out_of_range_floor_rejected(self):
        b = Building("b", [grid()])
        with pytest.raises(IndexError):
            b.floor(1)
        with pytest.raises(IndexError):
            b.floor(-1)

    def test_empty_building_rejected(self):
        with pytest.raises(ValueError):
            Building("b", [])

    def test_describe_mentions_floors(self):
        b = Building("lib", [grid("f0"), grid("f1")])
        text = b.describe()
        assert "2 floors" in text and "f1" in text


class TestMultiFloorDataset:
    def test_floor_slice_selects_rows(self):
        ds = tiny_mf_dataset(n_floors=3, rows_per_floor=5)
        sliced = ds.floor_slice(1)
        assert sliced.n_samples == 5
        assert np.array_equal(sliced.rp_indices, np.arange(5, 10))

    def test_floor_set(self):
        ds = tiny_mf_dataset(n_floors=3)
        assert ds.floor_set.tolist() == [0, 1, 2]

    def test_select_preserves_floors(self):
        ds = tiny_mf_dataset()
        sub = ds.select(np.array([0, 5]))
        assert sub.floor_indices.tolist() == [0, 1]

    def test_misaligned_floors_rejected(self):
        ds = tiny_mf_dataset()
        with pytest.raises(ValueError):
            MultiFloorDataset(
                fingerprints=ds.fingerprints,
                floor_indices=np.zeros(3, dtype=np.int64),
            )

    def test_negative_floor_rejected(self):
        ds = tiny_mf_dataset()
        with pytest.raises(ValueError):
            MultiFloorDataset(
                fingerprints=ds.fingerprints,
                floor_indices=np.full(ds.n_samples, -1, dtype=np.int64),
            )


class TestMultiFloorSuite:
    def test_label_count_enforced(self):
        ds = tiny_mf_dataset()
        b = Building("b", [grid("f0"), grid("f1")])
        with pytest.raises(ValueError):
            MultiFloorSuite(
                name="s",
                building=b,
                train=ds,
                test_epochs=[ds],
                epoch_labels=["a", "b"],
            )

    def test_ap_mismatch_rejected(self):
        ds = tiny_mf_dataset(n_aps=6)
        other = tiny_mf_dataset(n_aps=8)
        b = Building("b", [grid("f0"), grid("f1")])
        with pytest.raises(ValueError):
            MultiFloorSuite(
                name="s",
                building=b,
                train=ds,
                test_epochs=[other],
                epoch_labels=["m1"],
            )

    def test_describe(self):
        ds = tiny_mf_dataset()
        b = Building("b", [grid("f0"), grid("f1")])
        suite = MultiFloorSuite(
            name="s", building=b, train=ds, test_epochs=[ds], epoch_labels=["m1"]
        )
        assert "2 floors" in suite.describe()
        assert suite.n_epochs == 1
