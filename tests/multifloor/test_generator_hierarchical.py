"""Tests for the multi-floor generator, floor classifier and
hierarchical localizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import KNNLocalizer
from repro.multifloor import (
    FloorClassifier,
    HierarchicalLocalizer,
    MultiFloorConfig,
    evaluate_multifloor,
    floor_hit_rate,
    combined_error_m,
    generate_multifloor_suite,
)
from repro.radio.access_point import NO_SIGNAL_DBM


@pytest.fixture(scope="module")
def mini_suite():
    return generate_multifloor_suite(
        3,
        config=MultiFloorConfig(
            aps_per_floor=12, train_fpr=3, test_fpr=1, n_months=2
        ),
    )


class TestGenerator:
    def test_shapes_and_namespace(self, mini_suite):
        assert mini_suite.train.n_aps == 24  # 12 per floor x 2 floors
        assert mini_suite.building.n_floors == 2
        assert mini_suite.n_epochs == 2

    def test_global_rp_labels_disjoint_across_floors(self, mini_suite):
        f0 = mini_suite.train.floor_slice(0)
        f1 = mini_suite.train.floor_slice(1)
        assert set(f0.rp_set.tolist()).isdisjoint(f1.rp_set.tolist())

    def test_cross_floor_signal_weaker(self, mini_suite):
        # Rows captured on floor 0: their own 12 AP columns must carry
        # more energy than the other floor's columns on average.
        train = mini_suite.train
        f0_rows = train.floor_slice(0).rssi
        own = f0_rows[:, :12]
        other = f0_rows[:, 12:]
        own_mean = own[own > NO_SIGNAL_DBM].mean()
        other_heard = other[other > NO_SIGNAL_DBM]
        if other_heard.size:
            assert own_mean > other_heard.mean()
        # And far fewer cross-floor APs are heard at all.
        assert (own > NO_SIGNAL_DBM).mean() > (other > NO_SIGNAL_DBM).mean()

    def test_deterministic_under_seed(self):
        cfg = MultiFloorConfig(
            aps_per_floor=8, train_fpr=2, test_fpr=1, n_months=1
        )
        a = generate_multifloor_suite(9, config=cfg)
        b = generate_multifloor_suite(9, config=cfg)
        assert np.array_equal(a.train.fingerprints.rssi, b.train.fingerprints.rssi)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MultiFloorConfig(n_floors=1)
        with pytest.raises(ValueError):
            MultiFloorConfig(aps_per_floor=0)
        with pytest.raises(ValueError):
            MultiFloorConfig(n_months=0)


class TestFloorClassifier:
    def test_separates_floors_on_suite(self, mini_suite):
        clf = FloorClassifier(k=3).fit(
            mini_suite.train.fingerprints.rssi, mini_suite.train.floor_indices
        )
        test = mini_suite.test_epochs[0]
        predicted = clf.predict(test.fingerprints.rssi)
        assert floor_hit_rate(predicted, test.floor_indices) > 0.9

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            FloorClassifier().predict(np.full((1, 4), -60.0))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            FloorClassifier(k=0)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            FloorClassifier().fit(
                np.full((4, 6), -60.0), np.zeros(3, dtype=np.int64)
            )


class TestHierarchicalLocalizer:
    def test_end_to_end(self, mini_suite):
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        results = evaluate_multifloor(
            hl, mini_suite, rng=np.random.default_rng(0)
        )
        assert len(results) == mini_suite.n_epochs
        for r in results:
            assert r.floor_hit_rate > 0.8
            assert r.mean_combined_m >= r.mean_2d_m - 1e-9
            assert "floor" in r.as_row()

    def test_predict_before_fit_rejected(self):
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        with pytest.raises(RuntimeError):
            hl.predict(np.full((1, 24), -60.0))

    def test_one_localizer_per_floor(self, mini_suite):
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        hl.fit(mini_suite.train, mini_suite.building)
        assert sorted(hl.per_floor) == [0, 1]

    def test_floor_routing_matches_classifier(self, mini_suite):
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        hl.fit(mini_suite.train, mini_suite.building)
        rssi = mini_suite.test_epochs[0].fingerprints.rssi[:10]
        floors, coords = hl.predict(rssi)
        assert floors.shape == (10,)
        assert coords.shape == (10, 2)
        assert set(np.unique(floors).tolist()) <= {0, 1}


class TestMetrics:
    def test_combined_error_floor_penalty(self):
        xy = np.zeros((2, 2))
        errors = combined_error_m(
            predicted_floors=np.array([0, 1]),
            predicted_xy=xy,
            actual_floors=np.array([0, 0]),
            actual_xy=xy,
            floor_height_m=3.5,
        )
        assert errors[0] == 0.0
        assert errors[1] == pytest.approx(3.5)

    def test_combined_error_pythagoras(self):
        errors = combined_error_m(
            predicted_floors=np.array([1]),
            predicted_xy=np.array([[3.0, 0.0]]),
            actual_floors=np.array([0]),
            actual_xy=np.array([[0.0, 0.0]]),
            floor_height_m=4.0,
        )
        assert errors[0] == pytest.approx(5.0)

    def test_floor_hit_rate_validation(self):
        with pytest.raises(ValueError):
            floor_hit_rate(np.array([0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            floor_hit_rate(np.array([]), np.array([]))
