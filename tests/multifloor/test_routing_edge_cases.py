"""Edge cases in hierarchical floor routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import KNNLocalizer
from repro.datasets.fingerprint import FingerprintDataset
from repro.geometry import build_grid_floorplan
from repro.multifloor import Building, HierarchicalLocalizer, MultiFloorDataset


def grid(name):
    return build_grid_floorplan(name, width=12.0, height=10.0, rp_spacing=2.0)


def make_train(n_floors=2, per_floor=6, n_aps=8, seed=0):
    """Distinct per-floor RSSI signatures on disjoint AP blocks."""
    rng = np.random.default_rng(seed)
    aps_per_floor = n_aps // n_floors
    rows, rp_idx, locs, floors = [], [], [], []
    fp = grid("f")
    for floor in range(n_floors):
        for i in range(per_floor):
            row = np.full(n_aps, -100.0)
            lo = floor * aps_per_floor
            row[lo : lo + aps_per_floor] = rng.uniform(-70, -40, aps_per_floor)
            rows.append(row)
            rp = i % fp.n_reference_points
            rp_idx.append(floor * fp.n_reference_points + rp)
            locs.append(fp.reference_points[rp])
            floors.append(floor)
    n = len(rows)
    return MultiFloorDataset(
        fingerprints=FingerprintDataset(
            rssi=np.vstack(rows),
            rp_indices=np.asarray(rp_idx, dtype=np.int64),
            locations=np.vstack(locs),
            times_hours=np.zeros(n),
            epochs=np.zeros(n, dtype=np.int64),
        ),
        floor_indices=np.asarray(floors, dtype=np.int64),
    )


class TestRoutingFallback:
    def test_unfitted_floor_routes_to_nearest_available(self):
        # Train on floors 0 and 2 only; a classifier fitted on those
        # can still only emit {0, 2}, so force the fallback by fitting
        # a classifier aware of floor 1 via direct surgery.
        train = make_train(n_floors=2)
        building = Building("b", [grid("f0"), grid("f1"), grid("f2")])
        # Relabel the second block as floor 2 (leaving floor 1 empty).
        train = MultiFloorDataset(
            fingerprints=train.fingerprints,
            floor_indices=np.where(train.floor_indices == 1, 2, 0),
        )
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        hl.fit(train, building)
        assert sorted(hl.per_floor) == [0, 2]
        # Inject a floor label with no localizer into the classifier's
        # reference set to exercise the nearest-available fallback.
        hl.floor_classifier._floors = np.full_like(
            hl.floor_classifier._floors, 1
        )
        floors, coords = hl.predict(train.fingerprints.rssi[:3])
        assert set(floors.tolist()) <= {0, 2}
        assert coords.shape == (3, 2)

    def test_begin_epoch_routes_by_predicted_floor(self):
        train = make_train()
        building = Building("b", [grid("f0"), grid("f1")])

        seen = {}

        class Recorder(KNNLocalizer):
            def __init__(self, floor):
                super().__init__()
                self._floor = floor

            def begin_epoch(self, epoch, unlabeled_rssi):
                seen[self._floor] = unlabeled_rssi.shape[0]

        hl = HierarchicalLocalizer(lambda floor: Recorder(floor))
        hl.fit(train, building)
        hl.begin_epoch(1, train.fingerprints.rssi)
        # Every training scan is routed to exactly one floor.
        assert sum(seen.values()) == train.n_samples
        assert set(seen) == {0, 1}

    def test_begin_epoch_empty_noop(self):
        train = make_train()
        building = Building("b", [grid("f0"), grid("f1")])
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        hl.fit(train, building)
        hl.begin_epoch(1, np.zeros((0, train.n_aps)))  # must not raise

    def test_non_contiguous_rp_labels_rejected(self):
        train = make_train()
        # Corrupt one label far outside the contiguous block.
        bad = train.fingerprints.rp_indices.copy()
        bad[0] = 10_000
        broken = MultiFloorDataset(
            fingerprints=FingerprintDataset(
                rssi=train.fingerprints.rssi,
                rp_indices=bad,
                locations=train.fingerprints.locations,
                times_hours=train.fingerprints.times_hours,
                epochs=train.fingerprints.epochs,
            ),
            floor_indices=train.floor_indices,
        )
        building = Building("b", [grid("f0"), grid("f1")])
        hl = HierarchicalLocalizer(lambda floor: KNNLocalizer())
        with pytest.raises(ValueError, match="contiguous"):
            hl.fit(broken, building)
