"""FloorClassifier edge cases: degenerate buildings, silent scans, ties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.multifloor import FloorClassifier
from repro.radio.access_point import NO_SIGNAL_DBM


def _refs(rng, n, n_aps):
    return rng.uniform(-90.0, -30.0, size=(n, n_aps))


class TestSingleFloorBuilding:
    def test_any_scan_maps_to_the_only_floor(self):
        rng = np.random.default_rng(0)
        clf = FloorClassifier(k=3).fit(
            _refs(rng, 8, 10), np.full(8, 2, dtype=np.int64)
        )
        queries = _refs(rng, 5, 10)
        assert (clf.predict(queries) == 2).all()

    def test_fewer_refs_than_k(self):
        # k clamps to the reference count instead of failing.
        rng = np.random.default_rng(1)
        clf = FloorClassifier(k=10).fit(
            _refs(rng, 3, 6), np.zeros(3, dtype=np.int64)
        )
        assert (clf.predict(_refs(rng, 4, 6)) == 0).all()


class TestAllMissingScan:
    def test_silent_scan_is_finite_and_deterministic(self):
        rng = np.random.default_rng(2)
        rssi = _refs(rng, 12, 8)
        floors = np.repeat([0, 1], 6)
        clf = FloorClassifier(k=5).fit(rssi, floors)
        silent = np.full((1, 8), NO_SIGNAL_DBM)
        first = clf.predict(silent)
        assert first.shape == (1,)
        assert int(first[0]) in (0, 1)
        for _ in range(3):
            np.testing.assert_array_equal(clf.predict(silent), first)

    def test_all_missing_refs_and_scan(self):
        # Degenerate but must not produce NaNs or crash: a building
        # whose survey has a dead zone still classifies deterministically.
        rssi = np.full((4, 6), NO_SIGNAL_DBM)
        floors = np.array([0, 0, 1, 1])
        clf = FloorClassifier(k=2).fit(rssi, floors)
        out = clf.predict(np.full((2, 6), NO_SIGNAL_DBM))
        np.testing.assert_array_equal(out, out.astype(np.int64))
        # All distances tie exactly; the vote must break ties the same
        # way every call (np.unique order: lowest label wins).
        np.testing.assert_array_equal(out, [0, 0])


class TestTieBreaking:
    def _tied_classifier(self, k=4):
        """Two identical reference pairs on floors 0 and 1: exact vote tie."""
        base = np.array([-50.0, -60.0, -70.0, -80.0])
        rssi = np.vstack([base, base, base, base])
        floors = np.array([1, 0, 1, 0])  # scrambled label order on purpose
        return FloorClassifier(k=k).fit(rssi, floors)

    def test_exact_vote_tie_resolves_to_lowest_floor(self):
        clf = self._tied_classifier()
        query = np.array([[-50.0, -60.0, -70.0, -80.0]])
        assert int(clf.predict(query)[0]) == 0

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_tie_outcome_is_seed_independent(self, seed):
        # Queries generated from different seeds, all exactly equidistant
        # from both floors' references: the tie must always resolve the
        # same way — there is no RNG anywhere in the classifier.
        clf = self._tied_classifier()
        rng = np.random.default_rng(seed)
        offsets = rng.uniform(-5.0, 5.0, size=(6, 1))
        queries = np.array([-50.0, -60.0, -70.0, -80.0]) + offsets
        np.testing.assert_array_equal(
            clf.predict(np.clip(queries, NO_SIGNAL_DBM, 0.0)),
            np.zeros(6, dtype=np.int64),
        )

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_prediction_independent_of_reference_row_order(self, seed):
        # Shuffling the training rows must not change majority votes on
        # clearly-separated floors (distance ties aside, the vote is a
        # set operation).
        rng = np.random.default_rng(seed)
        floor0 = rng.uniform(-60.0, -30.0, size=(10, 8))
        floor1 = rng.uniform(-100.0, -85.0, size=(10, 8))
        rssi = np.vstack([floor0, floor1])
        floors = np.repeat([0, 1], 10)
        queries = np.clip(floor0[:4] + rng.normal(0, 0.5, (4, 8)), -100, 0)
        baseline = FloorClassifier(k=5).fit(rssi, floors).predict(queries)
        perm = rng.permutation(20)
        shuffled = FloorClassifier(k=5).fit(rssi[perm], floors[perm]).predict(queries)
        np.testing.assert_array_equal(baseline, shuffled)
        np.testing.assert_array_equal(baseline, np.zeros(4, dtype=np.int64))


class TestValidation:
    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            FloorClassifier().fit(np.empty((0, 4)), np.empty(0, dtype=np.int64))

    def test_fit_rejects_misaligned_floors(self):
        with pytest.raises(ValueError, match="align"):
            FloorClassifier().fit(np.zeros((3, 4)) - 50.0, np.zeros(2, dtype=np.int64))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            FloorClassifier().predict(np.zeros((1, 4)))

    def test_bad_k(self):
        with pytest.raises(ValueError, match="k must be positive"):
            FloorClassifier(k=0)
