"""Tests for stable seed derivation (cross-process reproducibility)."""

import subprocess
import sys

import pytest

from repro.radio.seeding import stable_seed


class TestStableSeed:
    def test_deterministic_within_process(self):
        assert stable_seed(1, "drift", 5) == stable_seed(1, "drift", 5)

    def test_distinct_tokens_distinct_seeds(self):
        seeds = {
            stable_seed(1, "drift", ap) for ap in range(100)
        }
        assert len(seeds) == 100

    def test_type_sensitivity(self):
        # the int 5 and the string "5" must not collide
        assert stable_seed(1, 5) != stable_seed(1, "5")

    def test_order_sensitivity(self):
        assert stable_seed(1, 2) != stable_seed(2, 1)

    def test_32bit_range(self):
        s = stable_seed(123456789, "x", 987654321)
        assert 0 <= s < 2**32

    @pytest.mark.slow
    def test_cross_process_stability(self):
        """The seed must not depend on PYTHONHASHSEED (unlike hash())."""
        code = (
            "from repro.radio.seeding import stable_seed;"
            "print(stable_seed(7, 'drift', 3))"
        )
        outs = set()
        for hash_seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
            )
            if result.returncode != 0:
                pytest.skip(f"subprocess unavailable: {result.stderr[:100]}")
            outs.add(result.stdout.strip())
        assert len(outs) == 1
