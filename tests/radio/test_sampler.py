"""Tests for the end-to-end scan sampler (RadioEnvironment)."""

import numpy as np
import pytest

from repro.geometry import build_grid_floorplan
from repro.radio import (
    NO_SIGNAL_DBM,
    RadioEnvironment,
    ShadowingModel,
    SimTime,
    TemporalConfig,
    TemporalModel,
    make_propagation,
    office_like_schedule,
    place_access_points,
)


@pytest.fixture()
def env():
    fp = build_grid_floorplan("t", width=20, height=16, rp_spacing=4.0, margin=2.0)
    rng = np.random.default_rng(0)
    aps = place_access_points(fp, 20, rng)
    sched = office_like_schedule(
        20, rng, n_epochs=8, drop_after_epoch=3, drop_fraction=0.3, sporadic_rate=0.0
    )
    return RadioEnvironment(
        floorplan=fp,
        access_points=aps,
        propagation=make_propagation("office", fp),
        shadowing=ShadowingModel(fp.width, fp.height, base_seed=1),
        temporal=TemporalModel(TemporalConfig(), base_seed=2),
        schedule=sched,
    )


class TestScanBasics:
    def test_scan_shape_and_range(self, env):
        scan = env.scan((5.0, 5.0), SimTime(0.0), np.random.default_rng(1), epoch=0)
        assert scan.shape == (20,)
        assert (scan <= 0).all()
        assert (scan >= NO_SIGNAL_DBM).all()

    def test_scan_at_rp_shape_and_range(self, env):
        scan = env.scan_at_rp(0, SimTime(0.0), np.random.default_rng(1), epoch=0)
        assert scan.shape == (20,)
        assert (scan <= 0).all()
        assert (scan >= NO_SIGNAL_DBM).all()

    def test_some_aps_visible(self, env):
        scan = env.scan_at_rp(5, SimTime(0.0), np.random.default_rng(2), epoch=0)
        assert (scan > NO_SIGNAL_DBM).sum() >= 3

    def test_scan_determinism_under_rng(self, env):
        a = env.scan_at_rp(3, SimTime(0.0), np.random.default_rng(7), epoch=0)
        b = env.scan_at_rp(3, SimTime(0.0), np.random.default_rng(7), epoch=0)
        np.testing.assert_array_equal(a, b)

    def test_same_rp_scans_correlate(self, env):
        a = env.scan_at_rp(3, SimTime(0.0), np.random.default_rng(1), epoch=0)
        b = env.scan_at_rp(3, SimTime(0.0), np.random.default_rng(2), epoch=0)
        both = (a > NO_SIGNAL_DBM) & (b > NO_SIGNAL_DBM)
        assert both.sum() >= 3
        corr = np.corrcoef(a[both], b[both])[0, 1]
        assert corr > 0.7

    def test_nearby_rps_more_similar_than_far(self, env):
        rng = np.random.default_rng(3)
        t = SimTime(0.0)
        base = env.scan_at_rp(0, t, rng, epoch=0, position_jitter_m=0.0)
        near = env.scan_at_rp(1, t, rng, epoch=0, position_jitter_m=0.0)
        far = env.scan_at_rp(
            env.floorplan.n_reference_points - 1, t, rng, epoch=0, position_jitter_m=0.0
        )
        d_near = np.linalg.norm(base - near)
        d_far = np.linalg.norm(base - far)
        assert d_near < d_far


class TestAPLifecycleEffects:
    def test_removed_aps_read_no_signal(self, env):
        vis = env.schedule.visibility_matrix()
        removed = np.flatnonzero(~vis[7])
        assert removed.size > 0
        scan = env.scan_at_rp(0, SimTime.at(months=4), np.random.default_rng(4), epoch=7)
        assert (scan[removed] == NO_SIGNAL_DBM).all()

    def test_no_schedule_means_always_active(self):
        fp = build_grid_floorplan("t2", width=10, height=10, rp_spacing=5.0, margin=2.0)
        rng = np.random.default_rng(5)
        env = RadioEnvironment(
            floorplan=fp,
            access_points=place_access_points(fp, 5, rng),
            propagation=make_propagation("open", fp),
            shadowing=ShadowingModel(10, 10, base_seed=1),
            temporal=TemporalModel(TemporalConfig(), base_seed=2),
        )
        mean = env.mean_rssi_dbm(0, (5.0, 5.0), SimTime(0.0))
        assert mean > NO_SIGNAL_DBM

    def test_schedule_size_mismatch_rejected(self):
        fp = build_grid_floorplan("t3", width=10, height=10, rp_spacing=5.0, margin=2.0)
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError, match="schedule"):
            RadioEnvironment(
                floorplan=fp,
                access_points=place_access_points(fp, 5, rng),
                propagation=make_propagation("open", fp),
                shadowing=ShadowingModel(10, 10),
                temporal=TemporalModel(TemporalConfig()),
                schedule=office_like_schedule(
                    9, rng, n_epochs=4, drop_after_epoch=1
                ),
            )

    def test_replacement_changes_fingerprint(self):
        from repro.radio import uji_like_schedule

        fp = build_grid_floorplan("t4", width=16, height=16, rp_spacing=4.0, margin=2.0)
        rng = np.random.default_rng(7)
        aps = place_access_points(fp, 10, rng, indoor_fraction=1.0)
        sched = uji_like_schedule(
            10, rng, n_epochs=6, change_epoch=3, change_fraction=0.8,
            replace_share=1.0, sporadic_rate=0.0,
        )
        env = RadioEnvironment(
            floorplan=fp,
            access_points=aps,
            propagation=make_propagation("open", fp),
            shadowing=ShadowingModel(16, 16, base_seed=3),
            temporal=TemporalModel(
                TemporalConfig(drift_sigma_db=0.0, activity_atten_db=0.0,
                               furniture_rate_per_month=0.0),
                base_seed=4,
            ),
            schedule=sched,
            fading_std_db=0.0,
        )
        t = SimTime(0.0)
        before = np.array([env.mean_rssi_dbm(a, (8.0, 8.0), t, epoch=0) for a in range(10)])
        after = np.array([env.mean_rssi_dbm(a, (8.0, 8.0), t, epoch=5) for a in range(10)])
        changed = np.abs(before - after) > 0.5
        assert changed.sum() >= 5  # most replaced APs moved

    def test_scan_noise_increases_with_activity(self, env):
        quiet = env.scan_noise_std_db(SimTime(20.0))  # 4 AM
        busy = env.scan_noise_std_db(SimTime(6.0))  # 2 PM
        assert busy > quiet


class TestFastPathConsistency:
    def test_scan_at_rp_matches_scan_statistics(self, env):
        """The vectorized RP fast path and the generic path agree in mean."""
        rp = 4
        t = SimTime(0.0)
        loc = env.floorplan.rp_location(rp)
        slow = np.array(
            [
                env.scan(loc, t, np.random.default_rng(100 + i), epoch=0)
                for i in range(40)
            ]
        )
        fast = np.array(
            [
                env.scan_at_rp(
                    rp, t, np.random.default_rng(200 + i), epoch=0,
                    position_jitter_m=0.0,
                )
                for i in range(40)
            ]
        )
        slow_mean = np.where(slow > NO_SIGNAL_DBM, slow, np.nan)
        fast_mean = np.where(fast > NO_SIGNAL_DBM, fast, np.nan)
        with np.errstate(invalid="ignore"):
            sm = np.nanmean(slow_mean, axis=0)
            fm = np.nanmean(fast_mean, axis=0)
        both = ~np.isnan(sm) & ~np.isnan(fm)
        assert both.sum() >= 3
        np.testing.assert_allclose(sm[both], fm[both], atol=2.5)

    def test_visible_ap_count_positive(self, env):
        count = env.visible_ap_count(SimTime(0.0), epoch=0)
        assert 0 < count <= env.n_aps
