"""Tests for path loss, shadowing, and device models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Wall, build_grid_floorplan
from repro.radio import (
    DEVICE_PRESETS,
    ENVIRONMENT_PRESETS,
    DeviceProfile,
    LogDistancePathLoss,
    MultiWallPropagation,
    ShadowingField,
    ShadowingModel,
    make_propagation,
)
from repro.radio.access_point import NO_SIGNAL_DBM


class TestLogDistancePathLoss:
    def test_loss_at_reference_distance(self):
        model = LogDistancePathLoss(exponent=2.0, reference_loss_db=40.0)
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_free_space_slope(self):
        model = LogDistancePathLoss(exponent=2.0, reference_loss_db=40.0)
        assert model.loss_db(10.0) == pytest.approx(60.0)
        assert model.loss_db(100.0) == pytest.approx(80.0)

    @given(st.floats(0.6, 80.0), st.floats(1.0, 79.0))
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_in_distance(self, d1, delta):
        model = LogDistancePathLoss(exponent=2.8)
        assert model.loss_db(d1 + delta) > model.loss_db(d1)

    def test_near_field_clamp(self):
        model = LogDistancePathLoss(min_distance_m=0.5)
        assert model.loss_db(0.01) == model.loss_db(0.5)

    def test_vectorized_matches_scalar(self):
        model = LogDistancePathLoss()
        dists = np.array([1.0, 5.0, 20.0])
        vec = model.loss_db_array(dists)
        for d, v in zip(dists, vec):
            assert v == pytest.approx(model.loss_db(d))

    def test_inverse(self):
        model = LogDistancePathLoss(exponent=3.0)
        d = 12.5
        assert model.distance_for_loss(model.loss_db(d)) == pytest.approx(d)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.5)

    def test_presets_ordering(self):
        # Harsher environments attenuate faster.
        assert (
            ENVIRONMENT_PRESETS["open"].exponent
            < ENVIRONMENT_PRESETS["office"].exponent
            < ENVIRONMENT_PRESETS["basement"].exponent
        )


class TestMultiWallPropagation:
    def test_wall_adds_attenuation(self):
        fp = build_grid_floorplan(width=10, height=10, rp_spacing=2.0, margin=1.0)
        no_walls = MultiWallPropagation(LogDistancePathLoss())
        with_walls = MultiWallPropagation(LogDistancePathLoss(), fp)
        fp.add_walls([Wall((5, 0), (5, 10), "concrete")])
        clear = no_walls.mean_rssi_dbm(-8.0, (1, 5), (9, 5))
        blocked = with_walls.mean_rssi_dbm(-8.0, (1, 5), (9, 5))
        assert blocked < clear

    def test_wall_loss_capped(self):
        fp = build_grid_floorplan(width=10, height=10, rp_spacing=2.0, margin=1.0)
        for x in range(1, 10):
            fp.add_walls([Wall((float(x), 0), (float(x), 10), "metal")])
        prop = MultiWallPropagation(LogDistancePathLoss(), fp, wall_loss_cap_db=20.0)
        rssi = prop.mean_rssi_dbm(-8.0, (0.5, 5), (9.5, 5))
        free = MultiWallPropagation(LogDistancePathLoss()).mean_rssi_dbm(
            -8.0, (0.5, 5), (9.5, 5)
        )
        assert rssi >= free - 20.0 - 1e-9

    def test_make_propagation_unknown_env(self):
        with pytest.raises(KeyError):
            make_propagation("underwater")


class TestShadowing:
    def test_field_determinism(self):
        f1 = ShadowingField(20, 20, sigma_db=4.0, correlation_m=5.0, seed=9)
        f2 = ShadowingField(20, 20, sigma_db=4.0, correlation_m=5.0, seed=9)
        assert f1.value_db(3.3, 7.7) == f2.value_db(3.3, 7.7)

    def test_spatial_correlation_decays(self):
        field = ShadowingField(60, 60, sigma_db=4.0, correlation_m=5.0, seed=1)
        rng = np.random.default_rng(0)
        near_diffs, far_diffs = [], []
        for _ in range(300):
            x, y = rng.uniform(5, 55, size=2)
            base = field.value_db(x, y)
            near_diffs.append(abs(field.value_db(x + 0.5, y) - base))
            far_diffs.append(abs(field.value_db(x + 25, y) - base))
        assert np.mean(near_diffs) < np.mean(far_diffs)

    def test_field_variance_scale(self):
        field = ShadowingField(100, 100, sigma_db=4.0, correlation_m=3.0, seed=2)
        rng = np.random.default_rng(1)
        samples = [
            field.value_db(*rng.uniform(5, 95, size=2)) for _ in range(800)
        ]
        # Bilinear interpolation shrinks variance a bit below sigma^2.
        assert 2.0 < np.std(samples) < 4.5

    def test_model_distinct_fields_per_ap(self):
        model = ShadowingModel(20, 20, base_seed=5)
        a = model.shadow_db(0, 3.0, 3.0)
        b = model.shadow_db(1, 3.0, 3.0)
        assert a != b

    def test_generation_changes_pattern(self):
        model = ShadowingModel(20, 20, base_seed=5)
        orig = model.shadow_db(0, 3.0, 3.0, generation=0)
        repl = model.shadow_db(0, 3.0, 3.0, generation=1)
        assert orig != repl

    def test_furniture_blend_preserves_scale(self):
        model = ShadowingModel(40, 40, sigma_db=4.0, base_seed=6)
        rng = np.random.default_rng(2)
        pts = rng.uniform(5, 35, size=(500, 2))
        for w in (0.0, 0.5, 1.0):
            vals = [model.shadow_db(0, x, y, furniture_weight=w) for x, y in pts]
            assert 1.5 < np.std(vals) < 5.0

    def test_furniture_weight_validation(self):
        model = ShadowingModel(20, 20)
        with pytest.raises(ValueError):
            model.shadow_db(0, 1, 1, furniture_weight=1.5)

    def test_invalid_field_params(self):
        with pytest.raises(ValueError):
            ShadowingField(10, 10, sigma_db=-1, correlation_m=5, seed=0)
        with pytest.raises(ValueError):
            ShadowingField(10, 10, sigma_db=1, correlation_m=0, seed=0)


class TestDeviceProfile:
    def test_below_threshold_reads_no_signal(self):
        device = DeviceProfile(noise_std_db=0.0)
        assert device.measure(-99.0, np.random.default_rng(0)) == NO_SIGNAL_DBM

    def test_strong_signal_quantized(self):
        device = DeviceProfile(noise_std_db=0.0)
        reading = device.measure(-50.4, np.random.default_rng(0))
        assert reading == pytest.approx(round(-50.4))

    def test_reading_clipped_to_range(self):
        device = DeviceProfile(noise_std_db=0.0, rssi_offset_db=30.0)
        rng = np.random.default_rng(0)
        assert device.measure(-10.0, rng) <= 0.0

    def test_gain_slope_anchored_at_minus70(self):
        device = DeviceProfile(noise_std_db=0.0, gain_slope=0.9)
        assert device.measure(-70.0, np.random.default_rng(0)) == pytest.approx(-70.0)

    def test_measure_array_matches_scalar_statistics(self):
        device = DeviceProfile()
        rng = np.random.default_rng(3)
        true = np.full(4000, -60.0)
        readings = device.measure_array(true, rng)
        assert abs(float(readings.mean()) + 60.0) < 0.2
        assert (readings > NO_SIGNAL_DBM).all()

    def test_measure_array_threshold(self):
        device = DeviceProfile(noise_std_db=0.0)
        out = device.measure_array(np.array([-99.0, -50.0]), np.random.default_rng(0))
        assert out[0] == NO_SIGNAL_DBM
        assert out[1] == pytest.approx(-50.0)

    def test_presets_sane(self):
        for name, device in DEVICE_PRESETS.items():
            assert device.name == name
            assert device.gain_slope > 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DeviceProfile(detection_threshold_dbm=-150.0)
