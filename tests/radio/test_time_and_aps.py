"""Tests for the simulation time model and AP deployment."""

import numpy as np
import pytest

from repro.geometry import build_grid_floorplan
from repro.radio import (
    AccessPoint,
    SimTime,
    ap_locations,
    collection_instance_times,
    monthly_times,
    place_access_points,
)


class TestSimTime:
    def test_unit_conversions(self):
        t = SimTime.at(months=1, days=2, hours=3)
        assert t.hours == pytest.approx(30 * 24 + 48 + 3)
        assert t.days == pytest.approx(t.hours / 24)
        assert t.months == pytest.approx(t.hours / 720)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SimTime(-1.0)

    def test_hour_of_day_starts_8am(self):
        assert SimTime(0.0).hour_of_day == pytest.approx(8.0)
        assert SimTime(20.0).hour_of_day == pytest.approx(4.0)

    def test_addition(self):
        assert (SimTime(1.0) + 2.5).hours == pytest.approx(3.5)

    def test_ordering(self):
        assert SimTime(1.0) < SimTime(2.0)


class TestSchedules:
    def test_ci_schedule_matches_paper(self):
        times = collection_instance_times(16)
        assert len(times) == 16
        # CIs 0-2: same day, 6 h apart.
        assert times[1].hours - times[0].hours == pytest.approx(6.0)
        assert times[2].hours - times[1].hours == pytest.approx(6.0)
        # CIs 3-8: daily.
        for ci in range(3, 9):
            assert times[ci].days == pytest.approx(float(ci - 2))
        # CIs 9-15: ~monthly.
        assert times[9].months >= 1.0
        assert times[15].months - times[14].months == pytest.approx(1.0)

    def test_ci_schedule_monotone(self):
        times = collection_instance_times(16)
        hours = [t.hours for t in times]
        assert hours == sorted(hours)

    def test_monthly_times(self):
        times = monthly_times(15)
        assert len(times) == 15
        assert times[0].months >= 1.0
        assert times[-1].months >= 15.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            collection_instance_times(0)
        with pytest.raises(ValueError):
            monthly_times(0)


class TestAccessPoints:
    def test_ap_validation(self):
        with pytest.raises(ValueError):
            AccessPoint(ap_id=-1, location=(0, 0))
        with pytest.raises(ValueError):
            AccessPoint(ap_id=0, location=(0, 0), tx_power_dbm=5.0)

    def test_replacement_bumps_generation(self):
        ap = AccessPoint(ap_id=3, location=(1, 1), tx_power_dbm=-8.0)
        new = ap.replaced(location=(2, 2))
        assert new.generation == 1
        assert new.ap_id == 3
        assert new.location == (2, 2)
        assert ap.generation == 0  # original untouched

    def test_placement_counts_and_ids(self):
        fp = build_grid_floorplan(width=20, height=20, rp_spacing=5.0)
        aps = place_access_points(fp, 30, np.random.default_rng(0))
        assert len(aps) == 30
        assert [ap.ap_id for ap in aps] == list(range(30))

    def test_placement_indoor_fraction(self):
        fp = build_grid_floorplan(width=20, height=20, rp_spacing=5.0)
        aps = place_access_points(
            fp, 40, np.random.default_rng(1), indoor_fraction=1.0
        )
        locs = ap_locations(aps)
        assert (locs[:, 0] >= 0).all() and (locs[:, 0] <= 20).all()
        assert (locs[:, 1] >= 0).all() and (locs[:, 1] <= 20).all()

    def test_placement_outside_band(self):
        fp = build_grid_floorplan(width=20, height=20, rp_spacing=5.0)
        aps = place_access_points(
            fp, 40, np.random.default_rng(2), indoor_fraction=0.0, outside_margin=5.0
        )
        locs = ap_locations(aps)
        outside = (
            (locs[:, 0] < 0)
            | (locs[:, 0] > 20)
            | (locs[:, 1] < 0)
            | (locs[:, 1] > 20)
        )
        assert outside.all()

    def test_placement_determinism(self):
        fp = build_grid_floorplan(width=20, height=20, rp_spacing=5.0)
        a = place_access_points(fp, 10, np.random.default_rng(3))
        b = place_access_points(fp, 10, np.random.default_rng(3))
        np.testing.assert_array_equal(ap_locations(a), ap_locations(b))

    def test_invalid_args(self):
        fp = build_grid_floorplan(width=20, height=20, rp_spacing=5.0)
        with pytest.raises(ValueError):
            place_access_points(fp, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            place_access_points(fp, 5, np.random.default_rng(0), indoor_fraction=1.5)
