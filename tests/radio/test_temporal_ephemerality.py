"""Tests for temporal variation models and AP lifecycle schedules."""

import numpy as np
import pytest

from repro.radio import (
    APStatus,
    OUDrift,
    SimTime,
    TemporalConfig,
    TemporalModel,
    ephemerality_report,
    occupancy,
    office_like_schedule,
    stable_schedule,
    uji_like_schedule,
)


class TestOccupancy:
    def test_bounds(self):
        for h in np.linspace(0, 24, 49):
            assert 0.0 <= occupancy(h) <= 1.0

    def test_night_quieter_than_midday(self):
        assert occupancy(3.0) < occupancy(13.0)

    def test_morning_ramp(self):
        assert occupancy(8.0) < occupancy(11.0)

    def test_periodic(self):
        assert occupancy(25.0) == pytest.approx(occupancy(1.0))


class TestOUDrift:
    def test_deterministic_per_seed(self):
        d1 = OUDrift(sigma_db=3.0, tau_days=30.0, seed=4)
        d2 = OUDrift(sigma_db=3.0, tau_days=30.0, seed=4)
        t = SimTime.at(days=45.5)
        assert d1.value_db(t) == d2.value_db(t)

    def test_starts_at_zero(self):
        d = OUDrift(sigma_db=3.0, tau_days=30.0, seed=4)
        assert d.value_db(SimTime(0.0)) == 0.0

    def test_stationary_variance_bounded(self):
        values = [
            OUDrift(sigma_db=3.0, tau_days=20.0, seed=s).value_db(SimTime.at(months=6))
            for s in range(300)
        ]
        std = float(np.std(values))
        assert 2.0 < std < 4.0  # ~ sigma once mixed

    def test_interpolation_between_days(self):
        d = OUDrift(sigma_db=3.0, tau_days=30.0, seed=4)
        v0 = d.value_db(SimTime.at(days=3))
        v1 = d.value_db(SimTime.at(days=4))
        mid = d.value_db(SimTime.at(days=3.5))
        assert min(v0, v1) - 1e-9 <= mid <= max(v0, v1) + 1e-9

    def test_zero_sigma_short_circuit(self):
        d = OUDrift(sigma_db=0.0, tau_days=30.0, seed=4)
        assert d.value_db(SimTime.at(months=3)) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OUDrift(sigma_db=-1, tau_days=30, seed=0)
        with pytest.raises(ValueError):
            OUDrift(sigma_db=1, tau_days=0, seed=0)


class TestTemporalModel:
    def _model(self, **kw):
        return TemporalModel(TemporalConfig(**kw), base_seed=3)

    def test_drift_deterministic(self):
        t = SimTime.at(months=2)
        assert self._model().drift_db(5, t) == self._model().drift_db(5, t)

    def test_drift_differs_across_aps(self):
        model = self._model()
        t = SimTime.at(months=2)
        assert model.drift_db(1, t) != model.drift_db(2, t)

    def test_trend_zero_by_default(self):
        model = self._model(trend_sigma_db_per_month=0.0)
        assert model.trend_db(0, SimTime.at(months=5)) == 0.0

    def test_trend_saturates(self):
        model = self._model(trend_sigma_db_per_month=1.0)
        late = model.trend_db(0, SimTime.at(months=20), saturation_months=10)
        at_sat = model.trend_db(0, SimTime.at(months=10), saturation_months=10)
        assert late == pytest.approx(at_sat)

    def test_activity_attenuation_follows_occupancy(self):
        model = self._model(activity_atten_db=6.0)
        morning = model.activity_attenuation_db(SimTime(0.0))  # 8 AM
        midday = model.activity_attenuation_db(SimTime(6.0))  # 2 PM
        assert midday > morning

    def test_furniture_weight_monotone_and_capped(self):
        model = self._model(
            furniture_rate_per_month=2.0,
            furniture_weight_step=0.3,
            furniture_weight_max=0.8,
        )
        weights = [
            model.furniture_weight(SimTime.at(months=m)) for m in range(0, 13, 2)
        ]
        assert all(b >= a for a, b in zip(weights, weights[1:]))
        assert weights[-1] <= 0.8

    def test_furniture_zero_rate(self):
        model = self._model(furniture_rate_per_month=0.0)
        assert model.furniture_weight(SimTime.at(months=12)) == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TemporalConfig(drift_sigma_db=-1)
        with pytest.raises(ValueError):
            TemporalConfig(furniture_weight_max=1.5)


class TestEphemeralitySchedules:
    def test_stable_schedule_all_active(self):
        sched = stable_schedule(10, 20)
        assert sched.visibility_matrix().all()
        assert sched.removed_fraction(9) == 0.0

    def test_office_like_drop_after_epoch(self):
        rng = np.random.default_rng(0)
        sched = office_like_schedule(
            100, rng, drop_after_epoch=11, drop_fraction=0.2, sporadic_rate=0.0
        )
        assert sched.removed_fraction(0) == 0.0
        assert sched.removed_fraction(11) == 0.0
        assert sched.removed_fraction(15) == pytest.approx(0.2, abs=0.02)

    def test_office_like_removals_permanent(self):
        rng = np.random.default_rng(1)
        sched = office_like_schedule(60, rng, sporadic_rate=0.0)
        vis = sched.visibility_matrix()
        for ap in range(60):
            col = vis[:, ap]
            if not col.all():
                first_gone = int(np.argmin(col))
                assert not col[first_gone:].any()

    def test_uji_like_change_magnitude(self):
        rng = np.random.default_rng(2)
        sched = uji_like_schedule(
            100, rng, change_epoch=11, change_fraction=0.5, sporadic_rate=0.0
        )
        changed = sum(
            1
            for ap in range(100)
            if sched.status[15, ap] is not APStatus.ACTIVE
        )
        assert changed == pytest.approx(50, abs=2)

    def test_uji_like_mixes_removal_and_replacement(self):
        rng = np.random.default_rng(3)
        sched = uji_like_schedule(
            100, rng, change_fraction=0.5, replace_share=0.5, sporadic_rate=0.0
        )
        last = sched.status[15]
        n_removed = sum(1 for s in last if s is APStatus.REMOVED)
        n_replaced = sum(1 for s in last if s is APStatus.REPLACED)
        assert n_removed > 10
        assert n_replaced > 10

    def test_generation_counting(self):
        sched = stable_schedule(5, 2)
        sched.status[2:, 0] = APStatus.REPLACED
        assert sched.generation(1, 0) == 0
        assert sched.generation(3, 0) == 1

    def test_report_renders_marks(self):
        rng = np.random.default_rng(4)
        sched = office_like_schedule(20, rng, n_epochs=4, drop_after_epoch=1, drop_fraction=0.5)
        text = ephemerality_report(sched)
        assert "#" in text
        assert len(text.splitlines()) == 4

    def test_report_label_validation(self):
        sched = stable_schedule(3, 5)
        with pytest.raises(ValueError):
            ephemerality_report(sched, epoch_labels=["only-one"])

    def test_schedule_validation(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            office_like_schedule(10, rng, drop_fraction=1.5)
        with pytest.raises(ValueError):
            uji_like_schedule(10, rng, change_epoch=99)
