"""Edge cases across the compression stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress import (
    QuantizationSpec,
    model_cost,
    quantize_model,
    quantize_tensor,
)
from repro.nn.layers.activations import ReLU
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.normalization import BatchNorm
from repro.nn.layers.reshape import Flatten
from repro.nn.model import Sequential


class TestQuantizeEdges:
    def test_all_params_below_min_size_kept_float(self):
        model = Sequential([Dense(4, 4, rng=np.random.default_rng(0))])
        qm = quantize_model(model, min_size=1000)
        assert not qm.tensors
        assert qm.compression_ratio() == pytest.approx(1.0)
        x = np.zeros((2, 4), dtype=np.float32)
        assert np.allclose(qm.dequantized_model().predict(x), model.predict(x))

    def test_per_channel_conv_kernel_axis(self):
        rng = np.random.default_rng(1)
        # Conv kernels are 4-D; per-channel must quantize along axis 0.
        w = rng.normal(size=(8, 3, 2, 2)) * np.arange(1, 9).reshape(8, 1, 1, 1)
        qt = quantize_tensor(w, QuantizationSpec(per_channel=True), channel_axis=0)
        assert qt.scale.shape == (8,)
        # Scales track channel magnitude: the 8x channel needs a much
        # coarser grid than the 1x channel.
        assert qt.scale[7] > qt.scale[0] * 3

    def test_quantized_model_on_batchnorm_model(self):
        rng = np.random.default_rng(2)
        model = Sequential(
            [
                Dense(16, 300, rng=rng),
                BatchNorm(300),
                ReLU(),
                Dense(300, 4, rng=rng),
            ]
        )
        x = rng.normal(size=(32, 16)).astype(np.float32)
        # Populate BN running stats with a few training passes.
        for _ in range(3):
            out = x
            caches = []
            for layer in model.layers:
                out, cache = layer.forward(
                    out, training=True, rng=np.random.default_rng(0)
                )
                caches.append(cache)
        qm = quantize_model(model)
        drift = np.abs(qm.dequantized_model().predict(x) - model.predict(x))
        assert drift.max() < 0.5

    def test_negative_channel_axis(self):
        w = np.random.default_rng(3).normal(size=(10, 6))
        qt = quantize_tensor(w, channel_axis=-1)
        assert qt.scale.shape == (6,)
        assert np.abs(qt.dequantize() - w).max() < qt.scale.max()


class TestCostEdges:
    def test_dense_only_model(self):
        model = Sequential([Dense(8, 3, rng=np.random.default_rng(0))])
        cost = model_cost(model, (8,))
        assert cost.total_macs == 24
        assert cost.total_params == 8 * 3 + 3

    def test_conv_without_bias(self):
        model = Sequential(
            [
                Conv2D(1, 2, (2, 2), use_bias=False, rng=np.random.default_rng(0)),
                Flatten(),
            ]
        )
        cost = model_cost(model, (1, 3, 3))
        conv = cost.layers[0]
        assert conv.elementwise_ops == 0
        assert conv.params == 2 * 1 * 2 * 2

    def test_empty_model(self):
        cost = model_cost(Sequential([]), (4,))
        assert cost.total_macs == 0
        assert cost.layers == []
