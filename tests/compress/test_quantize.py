"""Tests for post-training quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    ActivationQuantizer,
    QuantizationSpec,
    quantize_model,
    quantize_tensor,
)
from repro.nn.layers.activations import ReLU
from repro.nn.layers.dense import Dense
from repro.nn.model import Sequential


def small_model(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(32, 64, rng=rng, name="fc1"),
            ReLU(name="relu"),
            Dense(64, 8, rng=rng, name="fc2"),
        ]
    )


class TestQuantizationSpec:
    def test_defaults(self):
        spec = QuantizationSpec()
        assert spec.bits == 8
        assert spec.q_levels == 256
        assert spec.storage_bytes_per_value == 1.0

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=1)
        with pytest.raises(ValueError):
            QuantizationSpec(bits=32)


class TestQuantizeTensor:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        bits=st.sampled_from([4, 8, 16]),
        symmetric=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_error_bounded_by_half_step(self, seed, bits, symmetric):
        rng = np.random.default_rng(seed)
        values = rng.normal(0.0, 1.0, size=(16, 8))
        spec = QuantizationSpec(bits=bits, symmetric=symmetric)
        qt = quantize_tensor(values, spec)
        err = np.abs(qt.dequantize() - values)
        # Symmetric error is at most half a step; asymmetric adds up to
        # another half step from the rounded zero point at range edges.
        # dequantize() returns float32, so the cast adds up to one ulp
        # at the largest reconstructed magnitude on top of the step bound.
        bound = 0.5 if symmetric else 1.0
        f32_ulp = float(np.spacing(np.float32(np.abs(values).max())))
        assert err.max() <= qt.scale.max() * bound + f32_ulp + 1e-9

    def test_symmetric_represents_zero_exactly(self):
        values = np.array([[-1.0, 0.0, 0.5, 1.0]])
        qt = quantize_tensor(values, QuantizationSpec(symmetric=True))
        deq = qt.dequantize()
        assert deq[0, 1] == 0.0

    def test_per_channel_no_worse_than_per_tensor(self):
        rng = np.random.default_rng(7)
        # Channels with wildly different dynamic ranges.
        values = rng.normal(size=(4, 100)) * np.array([[0.01], [0.1], [1.0], [10.0]])
        spec = QuantizationSpec(bits=8)
        per_tensor = quantize_tensor(values, spec)
        per_channel = quantize_tensor(values, spec, channel_axis=0)
        err_t = np.abs(per_tensor.dequantize() - values).max()
        err_c = np.abs(per_channel.dequantize() - values).max()
        assert err_c <= err_t

    def test_asymmetric_handles_shifted_ranges(self):
        values = np.full((4, 4), 5.0) + np.arange(16).reshape(4, 4) * 0.01
        spec = QuantizationSpec(symmetric=False)
        qt = quantize_tensor(values, spec)
        assert np.abs(qt.dequantize() - values).max() < 0.01

    def test_constant_tensor_safe(self):
        values = np.zeros((3, 3))
        qt = quantize_tensor(values)
        assert np.allclose(qt.dequantize(), 0.0)

    def test_bad_channel_axis_rejected(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.zeros((2, 2)), channel_axis=5)

    def test_storage_accounting(self):
        values = np.random.default_rng(0).normal(size=(100, 10))
        qt = quantize_tensor(values, QuantizationSpec(bits=8))
        # 1000 int8 codes + scale + zero point floats.
        assert qt.storage_bytes() == 1000 + 2 * 4

    def test_four_bit_packs_half(self):
        values = np.random.default_rng(0).normal(size=(100, 10))
        qt = quantize_tensor(values, QuantizationSpec(bits=4))
        assert qt.storage_bytes() == 500 + 2 * 4


class TestQuantizeModel:
    def test_small_params_stay_float(self):
        model = small_model()
        qm = quantize_model(model, min_size=256)
        # Biases (64 and 8 entries) are below min_size.
        assert any(name.endswith(".b") for name in qm.kept_float)
        assert all(not name.endswith(".b") for name in qm.tensors)

    def test_compression_ratio_near_four_for_int8(self):
        model = small_model()
        qm = quantize_model(model, min_size=1)
        assert 3.0 < qm.compression_ratio() <= 4.0

    def test_dequantized_model_predicts_close(self):
        model = small_model(3)
        qm = quantize_model(model)
        x = np.random.default_rng(5).normal(size=(10, 32)).astype(np.float32)
        drift = np.abs(qm.dequantized_model().predict(x) - model.predict(x))
        assert drift.max() < 0.15

    def test_original_model_untouched(self):
        model = small_model(4)
        before = {k: v.copy() for k, v in model.parameters().items()}
        quantize_model(model)
        for k, v in model.parameters().items():
            assert np.array_equal(v, before[k])

    def test_max_abs_weight_error_small(self):
        qm = quantize_model(small_model(6))
        scale = max(qt.scale.max() for qt in qm.tensors.values())
        assert qm.max_abs_weight_error() <= scale * 0.5 + 1e-9

    def test_lower_bits_larger_error(self):
        model = small_model(8)
        err8 = quantize_model(model, QuantizationSpec(bits=8)).max_abs_weight_error()
        err4 = quantize_model(model, QuantizationSpec(bits=4)).max_abs_weight_error()
        assert err4 > err8


class TestActivationQuantizer:
    def test_requires_calibration(self):
        aq = ActivationQuantizer(small_model())
        with pytest.raises(RuntimeError):
            aq.predict(np.zeros((1, 32), dtype=np.float32))

    def test_predictions_close_after_calibration(self):
        model = small_model(9)
        x = np.random.default_rng(2).normal(size=(32, 32)).astype(np.float32)
        aq = ActivationQuantizer(model).calibrate(x)
        drift = np.abs(aq.predict(x) - model.predict(x))
        assert drift.max() < 0.2

    def test_outputs_snap_to_code_grid(self):
        model = small_model(10)
        x = np.random.default_rng(3).normal(size=(8, 32)).astype(np.float32)
        aq = ActivationQuantizer(model).calibrate(x)
        out = aq.predict(x)
        # With 8-bit codes there can be at most 256 distinct output values
        # per column.
        for col in range(out.shape[1]):
            assert np.unique(out[:, col]).size <= 256
