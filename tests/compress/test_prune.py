"""Tests for magnitude pruning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import magnitude_prune, model_sparsity
from repro.nn.layers.activations import ReLU
from repro.nn.layers.dense import Dense
from repro.nn.model import Sequential


def small_model(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(20, 40, rng=rng, name="fc1"),
            ReLU(name="relu"),
            Dense(40, 5, rng=rng, name="fc2"),
        ]
    )


class TestMagnitudePrune:
    @given(
        sparsity=st.floats(min_value=0.0, max_value=0.95),
        scope=st.sampled_from(["global", "layer"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_achieved_sparsity_close_to_target(self, sparsity, scope):
        _, report = magnitude_prune(small_model(), sparsity, scope=scope)
        assert report.overall_sparsity == pytest.approx(sparsity, abs=0.02)

    def test_zero_sparsity_is_identity(self):
        model = small_model(1)
        pruned, report = magnitude_prune(model, 0.0)
        assert report.overall_sparsity == 0.0
        for k, v in model.parameters().items():
            assert np.array_equal(pruned.parameters()[k], v)

    def test_largest_weights_survive_global(self):
        model = small_model(2)
        pruned, _ = magnitude_prune(model, 0.5, scope="global")
        orig = np.concatenate(
            [
                np.abs(v).ravel()
                for k, v in model.parameters().items()
                if k.endswith(".W")
            ]
        )
        surv = np.concatenate(
            [
                v.ravel()
                for k, v in pruned.parameters().items()
                if k.endswith(".W")
            ]
        )
        threshold = np.median(orig)
        # Everything comfortably above the median magnitude must survive.
        big = orig > threshold * 1.5
        assert (np.abs(surv)[big] > 0).all()

    def test_biases_untouched(self):
        model = small_model(3)
        pruned, report = magnitude_prune(model, 0.9)
        for k, v in model.parameters().items():
            if k.endswith(".b"):
                assert np.array_equal(pruned.parameters()[k], v)
        assert all(p.param.endswith(".W") for p in report.per_param)

    def test_layer_scope_prunes_each_tensor(self):
        _, report = magnitude_prune(small_model(4), 0.5, scope="layer")
        for p in report.per_param:
            assert p.sparsity == pytest.approx(0.5, abs=0.05)

    def test_original_untouched(self):
        model = small_model(5)
        before = {k: v.copy() for k, v in model.parameters().items()}
        magnitude_prune(model, 0.8)
        for k, v in model.parameters().items():
            assert np.array_equal(v, before[k])

    def test_pruned_model_still_predicts(self):
        model = small_model(6)
        pruned, _ = magnitude_prune(model, 0.7)
        x = np.random.default_rng(0).normal(size=(4, 20)).astype(np.float32)
        out = pruned.predict(x)
        assert out.shape == (4, 5)
        assert np.isfinite(out).all()

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            magnitude_prune(small_model(), -0.1)
        with pytest.raises(ValueError):
            magnitude_prune(small_model(), 1.0)
        with pytest.raises(ValueError):
            magnitude_prune(small_model(), 0.5, scope="channel")

    def test_model_without_weights_rejected(self):
        with pytest.raises(ValueError):
            magnitude_prune(Sequential([ReLU()]), 0.5)


class TestReportsAndSparsity:
    def test_model_sparsity_matches_report(self):
        pruned, report = magnitude_prune(small_model(7), 0.6)
        assert model_sparsity(pruned) == pytest.approx(
            report.overall_sparsity, abs=1e-9
        )

    def test_compression_ratio_grows_with_sparsity(self):
        model = small_model(8)
        _, lo = magnitude_prune(model, 0.3)
        _, hi = magnitude_prune(model, 0.9)
        assert hi.compression_ratio() > lo.compression_ratio()

    def test_describe_contains_params(self):
        _, report = magnitude_prune(small_model(9), 0.5)
        text = report.describe()
        assert "0.W" in text and "overall" in text

    def test_unpruned_model_sparsity_zero(self):
        assert model_sparsity(small_model(10)) == pytest.approx(0.0, abs=0.01)

    def test_empty_model_sparsity(self):
        assert model_sparsity(Sequential([ReLU()])) == 0.0
