"""Tests for the cost analysis and deployment model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress import (
    DEVICE_PRESETS,
    DeviceSpec,
    deployment_table,
    estimate_deployment,
    get_device,
    model_cost,
    quantize_model,
)
from repro.nn.layers.activations import ReLU
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.reshape import Flatten
from repro.nn.model import Sequential


def tiny_cnn(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(1, 4, (2, 2), rng=rng, name="conv"),
            ReLU(name="relu"),
            Flatten(name="flat"),
            Dense(4 * 3 * 3, 10, rng=rng, name="fc"),
        ]
    )


class TestModelCost:
    def test_analytic_mac_counts(self):
        cost = model_cost(tiny_cnn(), (1, 4, 4))
        by_name = {layer.name: layer for layer in cost.layers}
        # Conv: 3x3 output, 4 out channels, 1 in channel, 2x2 kernel.
        assert by_name["conv"].macs == 3 * 3 * 4 * 1 * 2 * 2
        assert by_name["fc"].macs == 36 * 10
        assert by_name["relu"].macs == 0
        assert by_name["relu"].elementwise_ops == 4 * 3 * 3

    def test_params_match_model(self):
        model = tiny_cnn()
        cost = model_cost(model, (1, 4, 4))
        assert cost.total_params == model.n_params()

    def test_activation_accounting(self):
        cost = model_cost(tiny_cnn(), (1, 4, 4))
        by_name = {layer.name: layer for layer in cost.layers}
        assert by_name["conv"].activation_elems == 4 * 3 * 3
        assert by_name["fc"].activation_elems == 10
        assert cost.weight_bytes() == cost.total_params * 4

    def test_table_renders(self):
        table = model_cost(tiny_cnn(), (1, 4, 4)).table()
        assert "conv" in table and "total" in table


class TestDeviceSpecs:
    def test_presets_resolve(self):
        for name in DEVICE_PRESETS:
            assert get_device(name).name == name

    def test_spec_passthrough(self):
        spec = DeviceSpec("x", 1.0, 1.0, 1.0, 1.0)
        assert get_device(spec) is spec

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            get_device("cray-1")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0.0, 1.0, 1.0, 1.0)


class TestEstimateDeployment:
    def test_faster_device_lower_latency(self):
        cost = model_cost(tiny_cnn(), (1, 4, 4))
        slow = estimate_deployment(cost, "mcu")
        fast = estimate_deployment(cost, "modern-phone")
        assert fast.latency_ms < slow.latency_ms
        assert fast.energy_mj < slow.energy_mj

    def test_quantized_weights_reduce_energy(self):
        model = tiny_cnn()
        cost = model_cost(model, (1, 4, 4))
        packed = quantize_model(model, min_size=1).storage_bytes()
        full = estimate_deployment(cost, "lg-v20")
        small = estimate_deployment(cost, "lg-v20", weight_bytes=packed)
        assert small.weight_bytes < full.weight_bytes
        assert small.energy_mj < full.energy_mj

    def test_latency_positive_and_bound_flag_consistent(self):
        cost = model_cost(tiny_cnn(), (1, 4, 4))
        est = estimate_deployment(cost, "lg-v20")
        assert est.latency_ms > 0
        assert isinstance(est.compute_bound, bool)

    def test_table_has_all_devices(self):
        cost = model_cost(tiny_cnn(), (1, 4, 4))
        table = deployment_table(cost)
        for name in DEVICE_PRESETS:
            assert name in table
