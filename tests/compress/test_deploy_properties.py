"""Property tests for the roofline deployment model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    DeviceSpec,
    estimate_deployment,
    model_cost,
)
from repro.nn.layers.dense import Dense
from repro.nn.model import Sequential


def linear_model(width: int) -> Sequential:
    rng = np.random.default_rng(0)
    return Sequential([Dense(width, width, rng=rng), Dense(width, 4, rng=rng)])


class TestRooflineProperties:
    @given(
        gmacs=st.floats(min_value=0.1, max_value=100.0),
        bw=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_latency_is_max_of_compute_and_memory(self, gmacs, bw):
        cost = model_cost(linear_model(32), (32,))
        spec = DeviceSpec("x", gmacs, bw, 1.0, 1.0)
        est = estimate_deployment(cost, spec)
        compute_ms = cost.total_macs / (gmacs * 1e9) * 1e3
        bytes_moved = cost.weight_bytes() + 2 * cost.activation_bytes()
        memory_ms = bytes_moved / (bw * 1e9) * 1e3
        assert est.latency_ms == pytest.approx(max(compute_ms, memory_ms))
        assert est.compute_bound == (compute_ms >= memory_ms)

    @given(scale=st.floats(min_value=1.5, max_value=10.0))
    @settings(max_examples=20, deadline=None)
    def test_scaling_compute_throughput_never_hurts(self, scale):
        cost = model_cost(linear_model(64), (64,))
        base = DeviceSpec("slow", 1.0, 1.0, 1.0, 1.0)
        fast = DeviceSpec("fast", scale, 1.0, 1.0, 1.0)
        assert (
            estimate_deployment(cost, fast).latency_ms
            <= estimate_deployment(cost, base).latency_ms
        )

    @given(width=st.sampled_from([8, 16, 64, 128]))
    @settings(max_examples=10, deadline=None)
    def test_bigger_model_costs_more(self, width):
        small = model_cost(linear_model(width), (width,))
        big = model_cost(linear_model(width * 2), (width * 2,))
        assert big.total_macs > small.total_macs
        assert big.weight_bytes() > small.weight_bytes()
        spec = DeviceSpec("x", 1.0, 1.0, 1.0, 1.0)
        assert (
            estimate_deployment(big, spec).energy_mj
            > estimate_deployment(small, spec).energy_mj
        )

    def test_smaller_weight_bytes_never_raises_latency(self):
        cost = model_cost(linear_model(64), (64,))
        spec = DeviceSpec("x", 1.0, 1.0, 1.0, 1.0)
        full = estimate_deployment(cost, spec)
        packed = estimate_deployment(
            cost, spec, weight_bytes=cost.weight_bytes() // 4
        )
        assert packed.latency_ms <= full.latency_ms
        assert packed.energy_mj < full.energy_mj
