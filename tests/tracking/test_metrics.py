"""Tests for tracking metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracking import TrackingSummary, rp_hit_rate, tracking_errors


class TestTrackingErrors:
    def test_known_distances(self):
        pred = np.array([[0.0, 0.0], [3.0, 4.0]])
        actual = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert np.allclose(tracking_errors(pred, actual), [0.0, 5.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tracking_errors(np.zeros((3, 2)), np.zeros((4, 2)))

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_symmetry_and_nonnegativity(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(7, 2))
        b = rng.normal(size=(7, 2))
        ab = tracking_errors(a, b)
        ba = tracking_errors(b, a)
        assert np.allclose(ab, ba)
        assert (ab >= 0).all()


class TestTrackingSummary:
    def test_perfect_track(self):
        track = np.random.default_rng(0).normal(size=(10, 2))
        summary = TrackingSummary.from_tracks(track, track)
        assert summary.mean_m == 0.0
        assert summary.max_m == 0.0
        assert summary.n_steps == 10

    def test_ordering_invariants(self):
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(50, 2))
        actual = rng.normal(size=(50, 2))
        s = TrackingSummary.from_tracks(pred, actual)
        assert s.median_m <= s.p95_m <= s.max_m
        assert s.mean_m <= s.rmse_m + 1e-12  # Jensen
        assert "mean" in s.as_row()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrackingSummary.from_tracks(np.zeros((0, 2)), np.zeros((0, 2)))


class TestRpHitRate:
    def test_all_correct(self):
        seq = np.array([1, 2, 3])
        assert rp_hit_rate(seq, seq) == 1.0

    def test_partial(self):
        assert rp_hit_rate(np.array([1, 2, 3, 4]), np.array([1, 0, 3, 0])) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rp_hit_rate(np.array([1]), np.array([1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rp_hit_rate(np.array([]), np.array([]))
