"""Tests for emission models and the tracking pipeline facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import Localizer
from repro.core.knn_head import KNNHead
from repro.geometry import build_grid_floorplan
from repro.tracking import (
    CoordinateEmission,
    EmbeddingEmission,
    TRACKING_METHODS,
    Trajectory,
    compare_tracking_methods,
    make_emission,
    track_trajectory,
)


class OracleLocalizer(Localizer):
    """Predicts the true location plus fixed per-scan noise.

    The "truth" is smuggled in through the RSSI matrix: each scan's
    first two columns carry the (x, y) the oracle should output (offset
    to keep the values in valid dBm range).
    """

    name = "oracle"

    def __init__(self, noise_std: float = 0.0, seed: int = 0):
        super().__init__()
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    def fit(self, train, floorplan, *, rng=None):
        self._fitted = True
        return self

    def predict(self, rssi):
        rssi = np.atleast_2d(np.asarray(rssi, dtype=np.float64))
        coords = rssi[:, :2] + 50.0
        if self.noise_std:
            coords = coords + self._rng.normal(0.0, self.noise_std, coords.shape)
        return coords


def encode_coords_as_rssi(locations: np.ndarray, n_aps: int = 6) -> np.ndarray:
    """Inverse of OracleLocalizer's trick: coords -> fake scans."""
    rssi = np.full((locations.shape[0], n_aps), -80.0)
    rssi[:, :2] = locations - 50.0
    return rssi


class EmbeddingStone:
    """Minimal stand-in exposing the StoneLocalizer embedding surface."""

    def __init__(self, reference, labels, locations):
        self.knn = KNNHead(k=1).fit(reference, labels, locations)

    def embed_rssi(self, rssi):
        # "Embedding" = first 2 columns, L2-normalized.
        raw = np.atleast_2d(np.asarray(rssi, dtype=np.float64))[:, :2]
        norms = np.linalg.norm(raw, axis=1, keepdims=True)
        return raw / np.maximum(norms, 1e-12)


@pytest.fixture(scope="module")
def grid():
    return build_grid_floorplan("emission-grid", width=8.0, height=6.0, rp_spacing=2.0)


class TestCoordinateEmission:
    def test_rows_normalized(self, grid):
        loc = OracleLocalizer()
        loc.fit(None, grid)
        emission = CoordinateEmission(loc, grid, sigma_m=2.0)
        rssi = encode_coords_as_rssi(np.array([[1.0, 1.0], [7.0, 5.0]]))
        log_p = emission.log_probabilities(rssi)
        assert log_p.shape == (2, grid.n_reference_points)
        assert np.allclose(np.exp(log_p).sum(axis=1), 1.0)

    def test_peak_at_nearest_rp(self, grid):
        loc = OracleLocalizer()
        loc.fit(None, grid)
        emission = CoordinateEmission(loc, grid, sigma_m=1.0)
        target_rp = 3
        target = grid.reference_points[target_rp]
        log_p = emission.log_probabilities(
            encode_coords_as_rssi(target[None, :])
        )
        assert log_p[0].argmax() == target_rp

    def test_invalid_sigma_rejected(self, grid):
        with pytest.raises(ValueError):
            CoordinateEmission(OracleLocalizer(), grid, sigma_m=0.0)


class TestEmbeddingEmission:
    def _stone(self):
        angles = np.linspace(0.0, np.pi / 2, 4)
        reference = np.column_stack([np.cos(angles), np.sin(angles)])
        labels = np.arange(4)
        locations = np.column_stack([np.arange(4.0), np.zeros(4)])
        return EmbeddingStone(reference, labels, locations)

    def test_rows_normalized_and_peaked(self):
        stone = self._stone()
        emission = EmbeddingEmission(stone, temperature=0.05)
        # A scan whose "embedding" equals reference 2 exactly.
        rssi = np.zeros((1, 6))
        rssi[0, :2] = [np.cos(np.linspace(0, np.pi / 2, 4)[2]),
                       np.sin(np.linspace(0, np.pi / 2, 4)[2])]
        log_p = emission.log_probabilities(rssi)
        assert np.allclose(np.exp(log_p).sum(axis=1), 1.0)
        assert log_p[0].argmax() == 2

    def test_temperature_controls_sharpness(self):
        stone = self._stone()
        rssi = np.zeros((1, 6))
        rssi[0, :2] = [1.0, 0.05]
        sharp = EmbeddingEmission(stone, temperature=0.01).log_probabilities(rssi)
        flat = EmbeddingEmission(stone, temperature=10.0).log_probabilities(rssi)
        assert np.exp(sharp[0]).max() > np.exp(flat[0]).max()

    def test_requires_embedding_surface(self, grid):
        with pytest.raises(TypeError):
            EmbeddingEmission(OracleLocalizer())

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingEmission(self._stone(), temperature=0.0)


class TestMakeEmission:
    def test_coordinate_fallback(self, grid):
        loc = OracleLocalizer()
        loc.fit(None, grid)
        emission = make_emission(loc, grid)
        assert isinstance(emission, CoordinateEmission)

    def test_embedding_preferred(self, grid):
        angles = np.linspace(0.0, np.pi / 2, 4)
        stone = EmbeddingStone(
            np.column_stack([np.cos(angles), np.sin(angles)]),
            np.arange(4),
            np.column_stack([np.arange(4.0), np.zeros(4)]),
        )
        assert isinstance(make_emission(stone, grid), EmbeddingEmission)


def make_trajectory(grid, noise=0.0, n=12, seed=0):
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.5, grid.width - 0.5, n)
    locations = np.column_stack([xs, np.full(n, 2.0)])
    rp = np.array([grid.nearest_rp(p) for p in locations])
    return Trajectory(
        locations=locations,
        times_hours=np.arange(n) * (2.0 / 3600.0),
        rp_indices=rp,
        rssi=encode_coords_as_rssi(
            locations + rng.normal(0.0, noise, locations.shape)
        ),
        speed_mps=1.2,
    )


class TestTrackTrajectory:
    def test_all_methods_run_and_score(self, grid):
        loc = OracleLocalizer(noise_std=1.0, seed=3)
        loc.fit(None, grid)
        traj = make_trajectory(grid)
        results = compare_tracking_methods(
            loc, traj, grid, rng=np.random.default_rng(4)
        )
        assert set(results) == set(TRACKING_METHODS)
        for summary in results.values():
            assert summary.n_steps == traj.n_steps
            assert summary.mean_m >= 0.0

    def test_raw_is_exact_for_noiseless_oracle(self, grid):
        loc = OracleLocalizer(noise_std=0.0)
        loc.fit(None, grid)
        traj = make_trajectory(grid)
        locations, summary = track_trajectory(loc, traj, grid, method="raw")
        assert summary.mean_m == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(locations, traj.locations)

    def test_viterbi_beats_raw_under_heavy_noise(self, grid):
        loc = OracleLocalizer(noise_std=3.0, seed=11)
        loc.fit(None, grid)
        traj = make_trajectory(grid, n=30)
        _, raw = track_trajectory(loc, traj, grid, method="raw")
        loc2 = OracleLocalizer(noise_std=3.0, seed=11)
        loc2.fit(None, grid)
        _, viterbi = track_trajectory(loc2, traj, grid, method="viterbi")
        assert viterbi.mean_m <= raw.mean_m + 0.5

    def test_unknown_method_rejected(self, grid):
        loc = OracleLocalizer()
        loc.fit(None, grid)
        with pytest.raises(ValueError):
            track_trajectory(loc, make_trajectory(grid), grid, method="kalman")
