"""Tests for the RP hidden-Markov smoother, including a brute-force
Viterbi cross-check on small chains."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import build_grid_floorplan
from repro.tracking import HiddenMarkovSmoother, motion_transition_matrix


class StubEmission:
    """Fixed log-probability table standing in for a localizer."""

    def __init__(self, log_probs: np.ndarray, rp_labels=None):
        self.log_probs = np.asarray(log_probs, dtype=np.float64)
        n_states = self.log_probs.shape[1]
        self.rp_labels = (
            np.arange(n_states, dtype=np.int64)
            if rp_labels is None
            else np.asarray(rp_labels, dtype=np.int64)
        )

    def log_probabilities(self, rssi):
        return self.log_probs[: np.atleast_2d(rssi).shape[0]]


@pytest.fixture(scope="module")
def grid():
    return build_grid_floorplan("hmm-grid", width=8.0, height=6.0, rp_spacing=2.0)


class TestMotionTransitionMatrix:
    def test_rows_are_distributions(self, grid):
        t = motion_transition_matrix(grid)
        assert np.allclose(t.sum(axis=1), 1.0)
        assert (t >= 0).all()

    def test_far_jumps_forbidden(self, grid):
        t = motion_transition_matrix(
            grid, speed_mps=1.0, scan_interval_s=1.0, slack=2.0
        )
        dist = grid.rp_distance_matrix()
        assert (t[dist > 2.0] == 0).all()

    def test_stay_probability_floor(self, grid):
        t = motion_transition_matrix(grid, stay_probability=0.4)
        assert (np.diag(t) >= 0.4).all()

    def test_nearer_rp_more_likely(self, grid):
        t = motion_transition_matrix(grid, stay_probability=0.0)
        dist = grid.rp_distance_matrix()
        i = 0
        order = np.argsort(dist[i])
        near, far = order[1], order[-1]
        assert t[i, near] > t[i, far]

    def test_invalid_args_rejected(self, grid):
        with pytest.raises(ValueError):
            motion_transition_matrix(grid, speed_mps=0.0)
        with pytest.raises(ValueError):
            motion_transition_matrix(grid, stay_probability=1.0)
        with pytest.raises(ValueError):
            motion_transition_matrix(grid, slack=0.0)


def brute_force_viterbi(log_prior, log_t, log_e):
    """Exhaustive max over all state sequences (tiny cases only)."""
    n_steps, n_states = log_e.shape
    best_path, best_score = None, -np.inf
    for path in itertools.product(range(n_states), repeat=n_steps):
        score = log_prior[path[0]] + log_e[0, path[0]]
        for t in range(1, n_steps):
            score += log_t[path[t - 1], path[t]] + log_e[t, path[t]]
        if score > best_score:
            best_score, best_path = score, path
    return np.asarray(best_path)


class TestViterbi:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        floorplan = build_grid_floorplan(
            "v", width=8.0, height=6.0, rp_spacing=2.0
        )  # small grid, 6 RPs
        n_states = floorplan.n_reference_points
        log_e = np.log(rng.dirichlet(np.ones(n_states), size=4))
        hmm = HiddenMarkovSmoother(floorplan, StubEmission(log_e))
        result = hmm.viterbi(np.zeros((4, 1)))
        expected = brute_force_viterbi(
            hmm._log_prior, hmm._log_t, log_e
        )
        assert np.array_equal(result.rp_path, expected)

    def test_impossible_transitions_avoided(self, grid):
        # Emissions scream "far corner" on step 2, but the motion model
        # forbids teleporting; Viterbi must pick a reachable state.
        n = grid.n_reference_points
        dist = grid.rp_distance_matrix()
        far = int(dist[0].argmax())
        log_e = np.full((2, n), -20.0)
        log_e[0, 0] = 0.0
        log_e[1, far] = 0.0
        hmm = HiddenMarkovSmoother(
            grid,
            StubEmission(log_e),
            speed_mps=0.5,
            scan_interval_s=1.0,
        )
        result = hmm.viterbi(np.zeros((2, 1)))
        assert result.rp_path[0] == 0
        assert result.rp_path[1] != far


class TestFilterAndSmooth:
    def test_posteriors_normalized(self, grid):
        rng = np.random.default_rng(3)
        n = grid.n_reference_points
        log_e = np.log(rng.dirichlet(np.ones(n), size=6))
        hmm = HiddenMarkovSmoother(grid, StubEmission(log_e))
        for method in (hmm.filter, hmm.smooth):
            result = method(np.zeros((6, 1)))
            sums = np.exp(result.log_posterior).sum(axis=1)
            assert np.allclose(sums, 1.0, atol=1e-8)

    def test_smooth_uses_future_evidence(self, grid):
        # Ambiguous first scan, decisive second: smoothing should pull
        # step 0 toward a state consistent with step 1.
        n = grid.n_reference_points
        neighbors = grid.neighbors_within(0, radius=2.5)
        target = int(neighbors[0])
        log_e = np.full((2, n), np.log(1.0 / n))
        log_e[1] = -30.0
        log_e[1, target] = 0.0
        hmm = hmm_for(grid, log_e)
        filtered = hmm.filter(np.zeros((2, 1)))
        smoothed = hmm.smooth(np.zeros((2, 1)))
        post_f = np.exp(filtered.log_posterior[0])
        post_s = np.exp(smoothed.log_posterior[0])
        reachable = np.exp(hmm._log_t[:, hmm.rp_labels.tolist().index(target)])
        # Mass on states that can reach the target must grow.
        assert post_s[reachable > 0].sum() > post_f[reachable > 0].sum() - 1e-12

    def test_noisy_emissions_are_cleaned_up(self, grid):
        # A walker moves along RP 0 -> 1 -> 2 ... but 30% of scans point
        # at a random far state; the HMM should beat argmax-per-scan.
        n = grid.n_reference_points
        truth = np.arange(8) % n
        log_e = np.full((8, n), -6.0)
        for t, state in enumerate(truth):
            log_e[t, state] = -0.5
        corrupted = [2, 5]
        for t in corrupted:
            log_e[t] = -6.0
            log_e[t, (truth[t] + n // 2) % n] = -0.5
        hmm = hmm_for(grid, log_e, speed=2.5)
        result = hmm.viterbi(np.zeros((8, 1)))
        raw = log_e.argmax(axis=1)
        hmm_hits = (result.rp_path == truth).sum()
        raw_hits = (raw == truth).sum()
        assert hmm_hits >= raw_hits

    @given(seed=st.integers(min_value=0, max_value=150))
    @settings(max_examples=25, deadline=None)
    def test_smoothed_equals_filtered_at_last_step(self, seed):
        # Forward-backward with beta_T = 1 must reproduce the filtered
        # posterior at the final step: P(s_T | y_1..T) either way.
        grid = build_grid_floorplan(
            "ident", width=8.0, height=6.0, rp_spacing=2.0
        )
        rng = np.random.default_rng(seed)
        n = grid.n_reference_points
        log_e = np.log(rng.dirichlet(np.ones(n), size=5))
        hmm = HiddenMarkovSmoother(grid, StubEmission(log_e))
        filtered = hmm.filter(np.zeros((5, 1)))
        smoothed = hmm.smooth(np.zeros((5, 1)))
        assert np.allclose(
            filtered.log_posterior[-1], smoothed.log_posterior[-1], atol=1e-8
        )

    def test_uniform_mixture_allows_mixed_paths(self, grid):
        # Evidence: step 0 at RP 0, steps 1-2 at the far corner. A hard
        # motion model cannot explain [0, far, far] (the jump has zero
        # probability) so Viterbi must sacrifice an emission and sit
        # still; the teleport leak makes the mixed path representable.
        n = grid.n_reference_points
        dist = grid.rp_distance_matrix()
        far = int(dist[0].argmax())
        log_e = np.full((3, n), -30.0)
        log_e[0, 0] = 0.0
        log_e[1, far] = 0.0
        log_e[2, far] = 0.0
        strict = HiddenMarkovSmoother(
            grid, StubEmission(log_e), speed_mps=0.5, scan_interval_s=1.0
        )
        leaky = HiddenMarkovSmoother(
            grid,
            StubEmission(log_e),
            speed_mps=0.5,
            scan_interval_s=1.0,
            uniform_mixture=0.05,
        )
        strict_path = strict.viterbi(np.zeros((3, 1))).rp_path
        leaky_path = leaky.viterbi(np.zeros((3, 1))).rp_path
        # Hard constraints: the walker cannot both start at 0 and reach
        # the far corner; it stays wherever it starts.
        assert strict_path[0] == strict_path[1] == strict_path[2]
        # With the leak the full-evidence path becomes optimal.
        assert leaky_path.tolist() == [0, far, far]

    def test_label_subset_state_space(self, grid):
        labels = np.array([1, 3, 5], dtype=np.int64)
        log_e = np.log(np.full((3, 3), 1.0 / 3.0))
        hmm = HiddenMarkovSmoother(grid, StubEmission(log_e, rp_labels=labels))
        result = hmm.filter(np.zeros((3, 1)))
        assert set(result.rp_path.tolist()) <= set(labels.tolist())
        assert np.allclose(
            result.locations, grid.reference_points[result.rp_path]
        )

    def test_bad_transition_shapes_rejected(self, grid):
        emission = StubEmission(np.zeros((2, grid.n_reference_points)))
        with pytest.raises(ValueError):
            HiddenMarkovSmoother(grid, emission, transition=np.eye(3))

    def test_non_stochastic_transition_rejected(self, grid):
        n = grid.n_reference_points
        emission = StubEmission(np.zeros((2, n)))
        with pytest.raises(ValueError):
            HiddenMarkovSmoother(grid, emission, transition=np.ones((n, n)))


def hmm_for(grid, log_e, speed=1.2):
    return HiddenMarkovSmoother(
        grid, StubEmission(log_e), speed_mps=speed, scan_interval_s=2.0
    )
