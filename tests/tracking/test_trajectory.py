"""Tests for trajectory simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import build_environment
from repro.radio.access_point import NO_SIGNAL_DBM
from repro.radio.time import SimTime
from repro.tracking import (
    Trajectory,
    interpolate_path,
    random_waypoints,
    simulate_path_walk,
    simulate_random_walk,
    simulate_walk,
)


@pytest.fixture(scope="module")
def small_env():
    return build_environment("office", seed=3, n_aps=20)


class TestInterpolatePath:
    def test_endpoints_preserved(self):
        waypoints = np.array([[0.0, 0.0], [10.0, 0.0]])
        points = interpolate_path(waypoints, 1.5)
        assert np.allclose(points[0], waypoints[0])
        assert np.allclose(points[-1], waypoints[-1])

    def test_straight_line_spacing(self):
        points = interpolate_path(np.array([[0.0, 0.0], [9.0, 0.0]]), 3.0)
        gaps = np.linalg.norm(np.diff(points, axis=0), axis=1)
        assert np.all(gaps <= 3.0 + 1e-9)

    def test_corner_is_traversed(self):
        waypoints = np.array([[0.0, 0.0], [4.0, 0.0], [4.0, 4.0]])
        points = interpolate_path(waypoints, 1.0)
        # The corner leg must produce points with both x=4 and varying y.
        on_vertical = points[np.isclose(points[:, 0], 4.0)]
        assert on_vertical.shape[0] >= 2

    def test_single_waypoint_passthrough(self):
        single = np.array([[2.0, 3.0]])
        assert np.allclose(interpolate_path(single, 1.0), single)

    def test_zero_length_polyline(self):
        waypoints = np.array([[1.0, 1.0], [1.0, 1.0]])
        points = interpolate_path(waypoints, 0.5)
        assert points.shape == (1, 2)

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            interpolate_path(np.array([[0.0, 0.0], [1.0, 0.0]]), 0.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            interpolate_path(np.zeros((3, 3)), 1.0)

    @given(
        n=st.integers(min_value=2, max_value=6),
        step=st.floats(min_value=0.2, max_value=5.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_spacing_never_exceeds_step(self, n, step, seed):
        rng = np.random.default_rng(seed)
        waypoints = rng.uniform(0.0, 20.0, size=(n, 2))
        points = interpolate_path(waypoints, step)
        gaps = np.linalg.norm(np.diff(points, axis=0), axis=1)
        # Arc-length steps bound the chord length between samples.
        assert np.all(gaps <= step + 1e-6)


class TestRandomWaypoints:
    def test_count_and_bounds(self, small_env):
        rng = np.random.default_rng(0)
        pts = random_waypoints(small_env.floorplan, 4, rng)
        assert pts.shape == (4, 2)
        assert (pts[:, 0] >= 0).all() and (pts[:, 0] <= small_env.floorplan.width).all()

    def test_legs_respect_minimum(self, small_env):
        rng = np.random.default_rng(1)
        pts = random_waypoints(small_env.floorplan, 5, rng, min_leg_m=3.0)
        legs = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        assert (legs >= 3.0 - 1e-9).all()

    def test_too_few_waypoints_rejected(self, small_env):
        with pytest.raises(ValueError):
            random_waypoints(small_env.floorplan, 1, np.random.default_rng(0))


class TestSimulateWalk:
    def test_shapes_and_monotone_time(self, small_env):
        traj = simulate_walk(
            small_env,
            [[1.0, 1.0], [10.0, 1.0]],
            rng=np.random.default_rng(5),
            epoch=0,
        )
        assert traj.rssi.shape == (traj.n_steps, small_env.n_aps)
        assert (np.diff(traj.times_hours) > 0).all()
        assert traj.rp_indices.min() >= 0

    def test_scan_interval_matches_request(self, small_env):
        traj = simulate_walk(
            small_env,
            [[1.0, 1.0], [20.0, 1.0]],
            scan_interval_s=4.0,
            rng=np.random.default_rng(5),
        )
        assert traj.scan_interval_s == pytest.approx(4.0, rel=1e-6)

    def test_rssi_in_valid_range(self, small_env):
        traj = simulate_walk(
            small_env,
            [[1.0, 1.0], [15.0, 1.0]],
            rng=np.random.default_rng(6),
            epoch=0,
        )
        assert (traj.rssi >= NO_SIGNAL_DBM).all()
        assert (traj.rssi <= 0).all()

    def test_start_time_respected(self, small_env):
        traj = simulate_walk(
            small_env,
            [[1.0, 1.0], [5.0, 1.0]],
            start_time=SimTime(100.0),
            rng=np.random.default_rng(7),
        )
        assert traj.times_hours[0] == pytest.approx(100.0)

    def test_path_length_close_to_polyline(self, small_env):
        traj = simulate_walk(
            small_env,
            [[1.0, 1.0], [21.0, 1.0]],
            rng=np.random.default_rng(8),
        )
        assert traj.path_length_m() == pytest.approx(20.0, abs=0.5)

    def test_invalid_speed_rejected(self, small_env):
        with pytest.raises(ValueError):
            simulate_walk(small_env, [[0.0, 0.0], [1.0, 0.0]], speed_mps=0.0)

    def test_random_walk_deterministic_under_seed(self, small_env):
        a = simulate_random_walk(small_env, rng=np.random.default_rng(9))
        b = simulate_random_walk(small_env, rng=np.random.default_rng(9))
        assert np.array_equal(a.rssi, b.rssi)
        assert np.array_equal(a.locations, b.locations)


class TestSimulatePathWalk:
    def test_visits_every_intermediate_rp(self, small_env):
        traj = simulate_path_walk(
            small_env,
            start_rp=2,
            end_rp=10,
            rng=np.random.default_rng(1),
        )
        # Walking RP 2..10 at 1 m spacing covers 8 m of path.
        assert traj.path_length_m() == pytest.approx(8.0, abs=0.5)
        # The nearest-RP ground truth never jumps more than the spacing
        # allows between scans (the regime smoothers assume).
        dist = small_env.floorplan.rp_distance_matrix()
        jumps = [
            dist[traj.rp_indices[t], traj.rp_indices[t + 1]]
            for t in range(traj.n_steps - 1)
        ]
        assert max(jumps) <= 4.0

    def test_reverse_direction(self, small_env):
        traj = simulate_path_walk(
            small_env, start_rp=10, end_rp=2, rng=np.random.default_rng(2)
        )
        assert traj.rp_indices[0] == 10
        assert traj.rp_indices[-1] == 2

    def test_random_span_default(self, small_env):
        traj = simulate_path_walk(small_env, rng=np.random.default_rng(3))
        n_rp = small_env.floorplan.n_reference_points
        # Default span covers at least half the path.
        assert traj.path_length_m() >= (n_rp // 2) - 1.0

    def test_invalid_endpoints_rejected(self, small_env):
        with pytest.raises(ValueError):
            simulate_path_walk(small_env, start_rp=0, end_rp=0)
        with pytest.raises(ValueError):
            simulate_path_walk(small_env, start_rp=0, end_rp=9999)


class TestTrajectoryValidation:
    def _kwargs(self, **overrides):
        base = dict(
            locations=np.zeros((3, 2)),
            times_hours=np.array([0.0, 1.0, 2.0]),
            rp_indices=np.zeros(3, dtype=np.int64),
            rssi=np.full((3, 4), -60.0),
            speed_mps=1.0,
        )
        base.update(overrides)
        return base

    def test_valid_accepts(self):
        traj = Trajectory(**self._kwargs())
        assert traj.n_steps == 3

    def test_decreasing_time_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(**self._kwargs(times_hours=np.array([2.0, 1.0, 0.0])))

    def test_misaligned_rssi_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(**self._kwargs(rssi=np.full((2, 4), -60.0)))

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(**self._kwargs(speed_mps=0.0))

    def test_empty_trajectory_properties(self):
        traj = Trajectory(
            locations=np.zeros((0, 2)),
            times_hours=np.zeros(0),
            rp_indices=np.zeros(0, dtype=np.int64),
            rssi=np.zeros((0, 4)),
            speed_mps=1.0,
        )
        assert traj.n_steps == 0
        assert traj.path_length_m() == 0.0
        assert traj.scan_interval_s == 0.0
