"""Tests for the particle filter and EMA smoother."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import build_grid_floorplan
from repro.tracking import (
    ExponentialSmoother,
    ParticleFilter,
    systematic_resample,
)


class StubEmission:
    def __init__(self, log_probs, rp_labels=None):
        self.log_probs = np.asarray(log_probs, dtype=np.float64)
        n_states = self.log_probs.shape[1]
        self.rp_labels = (
            np.arange(n_states, dtype=np.int64)
            if rp_labels is None
            else np.asarray(rp_labels, dtype=np.int64)
        )

    def log_probabilities(self, rssi):
        return self.log_probs[: np.atleast_2d(rssi).shape[0]]


@pytest.fixture(scope="module")
def grid():
    return build_grid_floorplan("pf-grid", width=8.0, height=6.0, rp_spacing=2.0)


class TestSystematicResample:
    def test_uniform_weights_identity_cardinality(self):
        rng = np.random.default_rng(0)
        idx = systematic_resample(np.full(10, 0.1), rng)
        assert idx.shape == (10,)
        assert set(idx.tolist()) <= set(range(10))

    def test_degenerate_weight_wins_everything(self):
        rng = np.random.default_rng(1)
        weights = np.zeros(8)
        weights[3] = 1.0
        idx = systematic_resample(weights, rng)
        assert (idx == 3).all()

    def test_zero_total_weight_falls_back_to_identity(self):
        rng = np.random.default_rng(2)
        idx = systematic_resample(np.zeros(5), rng)
        assert np.array_equal(idx, np.arange(5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            systematic_resample(np.zeros(0), np.random.default_rng(0))

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_counts_proportional_to_weights(self, seed):
        rng = np.random.default_rng(seed)
        weights = np.array([0.7, 0.2, 0.1])
        idx = systematic_resample(weights, rng)
        counts = np.bincount(idx, minlength=3)
        # Systematic resampling guarantees floor(n*w) copies minimum.
        assert counts[0] >= 2
        assert counts.sum() == 3


class TestParticleFilter:
    def test_estimates_within_bounds(self, grid):
        n = grid.n_reference_points
        rng = np.random.default_rng(4)
        log_e = np.log(rng.dirichlet(np.ones(n), size=10))
        pf = ParticleFilter(grid, StubEmission(log_e), n_particles=100)
        result = pf.run(np.zeros((10, 1)), rng=np.random.default_rng(5))
        assert result.locations.shape == (10, 2)
        assert (result.locations[:, 0] >= 0).all()
        assert (result.locations[:, 0] <= grid.width).all()
        assert (result.locations[:, 1] >= 0).all()
        assert (result.locations[:, 1] <= grid.height).all()

    def test_converges_to_strong_static_evidence(self, grid):
        # All scans point at one RP; the filter should end up near it.
        n = grid.n_reference_points
        target = 4
        log_e = np.full((15, n), -12.0)
        log_e[:, target] = 0.0
        pf = ParticleFilter(
            grid, StubEmission(log_e), n_particles=400, speed_mps=1.0
        )
        result = pf.run(np.zeros((15, 1)), rng=np.random.default_rng(6))
        final_err = np.linalg.norm(
            result.locations[-1] - grid.reference_points[target]
        )
        assert final_err < 1.5

    def test_deterministic_under_seed(self, grid):
        n = grid.n_reference_points
        log_e = np.log(
            np.random.default_rng(7).dirichlet(np.ones(n), size=5)
        )
        pf = ParticleFilter(grid, StubEmission(log_e), n_particles=64)
        a = pf.run(np.zeros((5, 1)), rng=np.random.default_rng(8)).locations
        b = pf.run(np.zeros((5, 1)), rng=np.random.default_rng(8)).locations
        assert np.array_equal(a, b)

    def test_invalid_params_rejected(self, grid):
        emission = StubEmission(np.zeros((2, grid.n_reference_points)))
        with pytest.raises(ValueError):
            ParticleFilter(grid, emission, n_particles=0)
        with pytest.raises(ValueError):
            ParticleFilter(grid, emission, resample_threshold=0.0)
        with pytest.raises(ValueError):
            ParticleFilter(grid, emission, speed_mps=-1.0)


class TestExponentialSmoother:
    def test_alpha_one_is_identity(self):
        points = np.random.default_rng(0).normal(size=(6, 2))
        out = ExponentialSmoother(alpha=1.0).run(points)
        assert np.allclose(out.locations, points)

    def test_constant_input_is_fixed_point(self):
        points = np.tile([2.0, 3.0], (5, 1))
        out = ExponentialSmoother(alpha=0.3).run(points)
        assert np.allclose(out.locations, points)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(1)
        points = rng.normal(0.0, 1.0, size=(200, 2))
        out = ExponentialSmoother(alpha=0.2).run(points)
        assert out.locations.var() < points.var()

    def test_empty_input_ok(self):
        out = ExponentialSmoother().run(np.zeros((0, 2)))
        assert out.locations.shape == (0, 2)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ExponentialSmoother(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialSmoother(alpha=1.5)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ExponentialSmoother().run(np.zeros((3, 3)))
