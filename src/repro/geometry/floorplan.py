"""Floorplan model: bounds, walls, and reference points.

A :class:`Floorplan` is the shared geometric context for the radio
simulator (AP placement, wall attenuation), the dataset generators (RP
layout) and STONE's floorplan-aware triplet selection (RP-to-RP distances,
paper Sec. IV.E).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .point import as_points, pairwise_distances
from .walls import Wall, WallSet


@dataclass
class Floorplan:
    """A single-floor indoor space.

    Attributes
    ----------
    name:
        Human-readable identifier (``"uji-library-f3"``, ``"office"``...).
    width, height:
        Bounding-box extents in meters; all coordinates live in
        ``[0, width] x [0, height]``.
    reference_points:
        ``(n_rp, 2)`` RP coordinates. RPs are the class labels of the
        localization problem; their indices are stable.
    walls:
        Wall segments used by the multi-wall propagation model.
    rp_spacing:
        Nominal distance between adjacent RPs (1 m for the measured paths).
    """

    name: str
    width: float
    height: float
    reference_points: np.ndarray
    walls: WallSet = field(default_factory=WallSet)
    rp_spacing: float = 1.0
    _rp_dist: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("floorplan extents must be positive")
        self.reference_points = as_points(self.reference_points)
        if self.reference_points.shape[0] == 0:
            raise ValueError("a floorplan needs at least one reference point")
        oob = (
            (self.reference_points[:, 0] < -1e-9)
            | (self.reference_points[:, 0] > self.width + 1e-9)
            | (self.reference_points[:, 1] < -1e-9)
            | (self.reference_points[:, 1] > self.height + 1e-9)
        )
        if oob.any():
            raise ValueError(
                f"{int(oob.sum())} reference points fall outside the floorplan bounds"
            )

    # -- RP queries ----------------------------------------------------------

    @property
    def n_reference_points(self) -> int:
        return int(self.reference_points.shape[0])

    def rp_location(self, rp_index: int) -> np.ndarray:
        """Coordinates of RP ``rp_index``."""
        return self.reference_points[rp_index].copy()

    def rp_distance_matrix(self) -> np.ndarray:
        """All-pairs RP distance matrix in meters (cached)."""
        if self._rp_dist is None:
            self._rp_dist = pairwise_distances(
                self.reference_points, self.reference_points
            )
        return self._rp_dist

    def nearest_rp(self, point: Sequence[float]) -> int:
        """Index of the RP closest to ``point``."""
        d = pairwise_distances(np.asarray(point)[None, :], self.reference_points)[0]
        return int(d.argmin())

    def neighbors_within(self, rp_index: int, radius: float) -> np.ndarray:
        """Indices of RPs within ``radius`` meters of ``rp_index`` (excl. self)."""
        d = self.rp_distance_matrix()[rp_index]
        mask = (d <= radius) & (d > 0)
        return np.flatnonzero(mask)

    # -- wall queries ----------------------------------------------------------

    def attenuation_db(
        self, src: Sequence[float], dst: Sequence[float]
    ) -> float:
        """Multi-wall attenuation between two points, in dB."""
        return self.walls.attenuation_db(src, dst)

    def add_walls(self, walls: Sequence[Wall]) -> None:
        self.walls.extend(walls)

    # -- convenience -----------------------------------------------------------

    def area(self) -> float:
        """Bounding-box area in square meters."""
        return self.width * self.height

    def describe(self) -> str:
        """One-line summary used by reports and Fig. 3 regeneration."""
        return (
            f"{self.name}: {self.width:.0f}x{self.height:.0f} m, "
            f"{self.n_reference_points} RPs "
            f"(spacing {self.rp_spacing:g} m), {len(self.walls)} walls"
        )
