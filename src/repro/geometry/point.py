"""2-D point utilities.

Points are plain ``(x, y)`` float tuples or ``(..., 2)`` NumPy arrays;
these helpers keep the rest of the codebase free of ad-hoc distance math.
All distances are in meters — the paper's localization error unit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

PointLike = Sequence[float] | np.ndarray


def as_point(p: PointLike) -> np.ndarray:
    """Coerce to a float64 ``(2,)`` array, validating dimensionality."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.shape != (2,):
        raise ValueError(f"expected a 2-D point, got shape {arr.shape}")
    return arr


def as_points(pts: PointLike) -> np.ndarray:
    """Coerce to a float64 ``(n, 2)`` array."""
    arr = np.asarray(pts, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    return arr


def euclidean(a: PointLike, b: PointLike) -> float:
    """Straight-line distance between two points, in meters."""
    return float(np.linalg.norm(as_point(a) - as_point(b)))


def pairwise_distances(a: PointLike, b: PointLike) -> np.ndarray:
    """Distance matrix between two point sets: ``(len(a), len(b))``."""
    pa = as_points(a)
    pb = as_points(b)
    diff = pa[:, None, :] - pb[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def distances_to(point: PointLike, others: PointLike) -> np.ndarray:
    """Distances from one point to each row of ``others``."""
    return pairwise_distances(as_point(point)[None, :], others)[0]


def centroid(pts: PointLike) -> np.ndarray:
    """Mean position of a point set."""
    return as_points(pts).mean(axis=0)


def path_length(waypoints: PointLike) -> float:
    """Total polyline length through ``waypoints`` in order."""
    pts = as_points(waypoints)
    if pts.shape[0] < 2:
        return 0.0
    segs = np.diff(pts, axis=0)
    return float(np.sqrt((segs * segs).sum(axis=1)).sum())


def interpolate_path(waypoints: PointLike, spacing: float) -> np.ndarray:
    """Points every ``spacing`` meters along a polyline, endpoints included.

    This is how reference points are laid out on the Office/Basement paths:
    "measurements are made 1 meter apart" along the corridor (paper
    Sec. V.A.2).
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    pts = as_points(waypoints)
    if pts.shape[0] < 2:
        return pts.copy()
    seg_vecs = np.diff(pts, axis=0)
    seg_lens = np.sqrt((seg_vecs * seg_vecs).sum(axis=1))
    total = float(seg_lens.sum())
    if total == 0.0:
        return pts[:1].copy()
    n_steps = int(np.floor(total / spacing + 1e-9))
    targets = np.arange(n_steps + 1) * spacing
    cum = np.concatenate([[0.0], np.cumsum(seg_lens)])
    out = np.empty((targets.shape[0], 2), dtype=np.float64)
    for i, t in enumerate(targets):
        seg = int(np.clip(np.searchsorted(cum, t, side="right") - 1, 0, len(seg_lens) - 1))
        local = (t - cum[seg]) / seg_lens[seg] if seg_lens[seg] > 0 else 0.0
        out[i] = pts[seg] + local * seg_vecs[seg]
    return out
