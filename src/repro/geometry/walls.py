"""Wall segments and line-of-sight queries.

Walls matter to the radio substrate through the multi-wall path-loss model:
each wall crossed between an AP and a receiver adds a material-dependent
attenuation. The paper's three environments differ exactly here — the UJI
library floor is a wide-open area, while the Office/Basement paths run
through corridors flanked by offices and metal-heavy labs (Sec. V.A).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from .point import PointLike, as_point

# Default attenuation per wall crossing, in dB, loosely following the
# COST 231 multi-wall model material classes.
MATERIAL_LOSS_DB = {
    "drywall": 3.0,
    "brick": 6.0,
    "concrete": 10.0,
    "metal": 15.0,
    "glass": 2.0,
}


@dataclass(frozen=True)
class Wall:
    """A wall segment from ``a`` to ``b`` with a material attenuation."""

    a: tuple[float, float]
    b: tuple[float, float]
    material: str = "drywall"

    def __post_init__(self) -> None:
        if self.material not in MATERIAL_LOSS_DB:
            known = ", ".join(sorted(MATERIAL_LOSS_DB))
            raise ValueError(f"unknown material {self.material!r}; known: {known}")
        if tuple(self.a) == tuple(self.b):
            raise ValueError("wall endpoints must differ")

    @property
    def loss_db(self) -> float:
        """Attenuation added per crossing of this wall, in dB."""
        return MATERIAL_LOSS_DB[self.material]

    @property
    def length(self) -> float:
        ax, ay = self.a
        bx, by = self.b
        return float(np.hypot(bx - ax, by - ay))


def _orient(p: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """Signed area orientation of the triple (p, q, r)."""
    return float((q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0]))


def segments_intersect(
    p1: PointLike, p2: PointLike, q1: PointLike, q2: PointLike
) -> bool:
    """True when segment p1-p2 properly intersects segment q1-q2.

    Touching at endpoints counts as an intersection; collinear overlap is
    handled by bounding-box checks. Robust enough for wall counting where
    degenerate grazing contacts are rare and harmless either way.
    """
    p1 = as_point(p1)
    p2 = as_point(p2)
    q1 = as_point(q1)
    q2 = as_point(q2)
    d1 = _orient(q1, q2, p1)
    d2 = _orient(q1, q2, p2)
    d3 = _orient(p1, p2, q1)
    d4 = _orient(p1, p2, q2)

    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 and d2 != 0:
        return True

    def on_box(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> bool:
        return bool(
            min(a[0], b[0]) - 1e-12 <= c[0] <= max(a[0], b[0]) + 1e-12
            and min(a[1], b[1]) - 1e-12 <= c[1] <= max(a[1], b[1]) + 1e-12
        )

    if d1 == 0 and on_box(q1, q2, p1):
        return True
    if d2 == 0 and on_box(q1, q2, p2):
        return True
    if d3 == 0 and on_box(p1, p2, q1):
        return True
    return d4 == 0 and on_box(p1, p2, q2)


def count_wall_crossings(
    src: PointLike, dst: PointLike, walls: Sequence[Wall]
) -> int:
    """Number of walls the straight src->dst ray crosses."""
    return sum(
        1 for w in walls if segments_intersect(src, dst, np.array(w.a), np.array(w.b))
    )


def wall_attenuation_db(
    src: PointLike, dst: PointLike, walls: Sequence[Wall]
) -> float:
    """Total multi-wall attenuation (dB) along the straight src->dst ray."""
    return sum(
        w.loss_db
        for w in walls
        if segments_intersect(src, dst, np.array(w.a), np.array(w.b))
    )


@dataclass
class WallSet:
    """A collection of walls with a cached attenuation query.

    Fingerprint generation evaluates AP->RP attenuation for every (AP, RP)
    pair at every collection instance; the pairs repeat, so memoising on
    rounded endpoints removes almost all intersection tests.
    """

    walls: list[Wall] = field(default_factory=list)
    _cache: dict = field(default_factory=dict, repr=False)

    def add(self, wall: Wall) -> None:
        self.walls.append(wall)
        self._cache.clear()

    def extend(self, walls: Iterable[Wall]) -> None:
        self.walls.extend(walls)
        self._cache.clear()

    def attenuation_db(self, src: PointLike, dst: PointLike) -> float:
        key = (
            round(float(np.asarray(src)[0]), 3),
            round(float(np.asarray(src)[1]), 3),
            round(float(np.asarray(dst)[0]), 3),
            round(float(np.asarray(dst)[1]), 3),
        )
        hit = self._cache.get(key)
        if hit is None:
            hit = wall_attenuation_db(src, dst, self.walls)
            self._cache[key] = hit
        return hit

    def __len__(self) -> int:
        return len(self.walls)
