"""``repro.geometry`` — floorplans, walls, and point utilities.

Provides the geometric substrate shared by the radio simulator, the
dataset generators, and STONE's floorplan-aware triplet selection.
"""

from .builders import (
    build_basement_path,
    build_corridor_floorplan,
    build_grid_floorplan,
    build_office_path,
    build_uji_library_floor,
)
from .floorplan import Floorplan
from .point import (
    as_point,
    as_points,
    centroid,
    distances_to,
    euclidean,
    interpolate_path,
    pairwise_distances,
    path_length,
)
from .walls import (
    MATERIAL_LOSS_DB,
    Wall,
    WallSet,
    count_wall_crossings,
    segments_intersect,
    wall_attenuation_db,
)

__all__ = [
    "Floorplan",
    "Wall",
    "WallSet",
    "MATERIAL_LOSS_DB",
    "segments_intersect",
    "count_wall_crossings",
    "wall_attenuation_db",
    "as_point",
    "as_points",
    "euclidean",
    "pairwise_distances",
    "distances_to",
    "centroid",
    "path_length",
    "interpolate_path",
    "build_grid_floorplan",
    "build_uji_library_floor",
    "build_corridor_floorplan",
    "build_office_path",
    "build_basement_path",
]
