"""Parametric floorplan builders mirroring the paper's three environments.

The paper (Fig. 3) evaluates on:

- **UJI library, floor 3** — RPs form "a grid like structure over a
  wide-open area" (Sec. V.A.1). We build an open hall with a sparse wall
  perimeter and a rectangular RP grid.
- **Office path** — 48 m corridor "in a section of a building with newly
  constructed faculty offices": many drywall partitions along the corridor.
- **Basement path** — 61 m corridor "surrounded by large labs that contain
  heavy metallic equipment": fewer but much more attenuating (metal /
  concrete) walls, a noisier multipath environment.

Geometry is parametric so tests can build miniature variants.
"""

from __future__ import annotations

import numpy as np

from .floorplan import Floorplan
from .point import interpolate_path
from .walls import Wall, WallSet


def build_grid_floorplan(
    name: str = "grid",
    *,
    width: float = 40.0,
    height: float = 24.0,
    rp_spacing: float = 2.0,
    margin: float = 2.0,
) -> Floorplan:
    """Open-area floorplan with RPs on a regular grid (UJI-like topology)."""
    if margin < 0 or 2 * margin >= min(width, height):
        raise ValueError("margin leaves no room for reference points")
    xs = np.arange(margin, width - margin + 1e-9, rp_spacing)
    ys = np.arange(margin, height - margin + 1e-9, rp_spacing)
    gx, gy = np.meshgrid(xs, ys)
    rps = np.column_stack([gx.ravel(), gy.ravel()])
    walls = WallSet(
        [
            Wall((0.0, 0.0), (width, 0.0), "brick"),
            Wall((width, 0.0), (width, height), "brick"),
            Wall((width, height), (0.0, height), "brick"),
            Wall((0.0, height), (0.0, 0.0), "brick"),
        ]
    )
    return Floorplan(
        name=name,
        width=width,
        height=height,
        reference_points=rps,
        walls=walls,
        rp_spacing=rp_spacing,
    )


def build_uji_library_floor(rp_spacing: float = 3.0) -> Floorplan:
    """UJI-like library floor: wide-open grid of RPs, sparse interior walls.

    The real UJI floor 3 covers a library reading area; bookshelf rows are
    approximated as short glass/drywall baffles that perturb — but rarely
    block — propagation, keeping the "wide-open area" character the paper
    contrasts against the corridor paths.
    """
    fp = build_grid_floorplan(
        "uji-library-f3",
        width=36.0,
        height=21.6,
        rp_spacing=rp_spacing,
        margin=2.4,
    )
    shelves = []
    for row in range(3):
        y = 5.4 + row * 5.4
        shelves.append(Wall((6.0, y), (14.0, y), "glass"))
        shelves.append(Wall((22.0, y), (30.0, y), "glass"))
    fp.add_walls(shelves)
    return fp


def _corridor_walls(
    waypoints: np.ndarray,
    *,
    corridor_halfwidth: float,
    material: str,
    partition_every: float,
    partition_depth: float,
) -> list[Wall]:
    """Walls flanking a polyline corridor plus perpendicular partitions.

    Only axis-aligned segments get explicit flanking walls (the builders
    below use L-shaped axis-aligned paths), which keeps the construction
    simple and the attenuation structure realistic: rooms sit *behind* the
    corridor walls, so an AP placed in a room is attenuated for most RPs.
    """
    walls: list[Wall] = []
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        seg = b - a
        length = float(np.linalg.norm(seg))
        if length == 0:
            continue
        direction = seg / length
        normal = np.array([-direction[1], direction[0]])
        for side in (-1.0, 1.0):
            offset = side * corridor_halfwidth * normal
            walls.append(
                Wall(tuple(a + offset), tuple(b + offset), material)
            )
        # Perpendicular partitions (office walls / lab bays) behind each side.
        n_parts = int(length // partition_every)
        for k in range(1, n_parts + 1):
            base = a + direction * (k * partition_every)
            for side in (-1.0, 1.0):
                start = base + side * corridor_halfwidth * normal
                end = start + side * partition_depth * normal
                walls.append(Wall(tuple(start), tuple(end), material))
    return walls


def build_corridor_floorplan(
    name: str,
    waypoints: np.ndarray,
    *,
    width: float,
    height: float,
    rp_spacing: float = 1.0,
    corridor_halfwidth: float = 1.2,
    wall_material: str = "drywall",
    partition_every: float = 4.0,
    partition_depth: float = 4.0,
) -> Floorplan:
    """Corridor floorplan with RPs every ``rp_spacing`` m along the path."""
    rps = interpolate_path(waypoints, rp_spacing)
    walls = WallSet(
        [
            Wall((0.0, 0.0), (width, 0.0), "concrete"),
            Wall((width, 0.0), (width, height), "concrete"),
            Wall((width, height), (0.0, height), "concrete"),
            Wall((0.0, height), (0.0, 0.0), "concrete"),
        ]
    )
    fp = Floorplan(
        name=name,
        width=width,
        height=height,
        reference_points=rps,
        walls=walls,
        rp_spacing=rp_spacing,
    )
    fp.add_walls(
        _corridor_walls(
            np.asarray(waypoints, dtype=np.float64),
            corridor_halfwidth=corridor_halfwidth,
            material=wall_material,
            partition_every=partition_every,
            partition_depth=partition_depth,
        )
    )
    return fp


def build_office_path(rp_spacing: float = 1.0) -> Floorplan:
    """Office path: 48 m L-shaped corridor through faculty offices.

    Drywall partitions every 4 m model the "newly constructed faculty
    offices" (paper Sec. V.A.2). Path length = 30 + 18 = 48 m.
    """
    waypoints = np.array(
        [
            [3.0, 3.0],
            [33.0, 3.0],   # 30 m east
            [33.0, 21.0],  # 18 m north
        ]
    )
    return build_corridor_floorplan(
        "office",
        waypoints,
        width=38.0,
        height=25.0,
        rp_spacing=rp_spacing,
        corridor_halfwidth=1.2,
        wall_material="drywall",
        partition_every=4.0,
        partition_depth=4.0,
    )


def build_basement_path(rp_spacing: float = 1.0) -> Floorplan:
    """Basement path: 61 m U-shaped corridor flanked by metal-heavy labs.

    Metal partitions every 6 m model the "large labs that contain heavy
    metallic equipment" (paper Sec. V.A.2). Path length = 25 + 11 + 25 = 61 m.
    """
    waypoints = np.array(
        [
            [3.0, 3.0],
            [28.0, 3.0],   # 25 m east
            [28.0, 14.0],  # 11 m north
            [3.0, 14.0],   # 25 m west
        ]
    )
    return build_corridor_floorplan(
        "basement",
        waypoints,
        width=32.0,
        height=20.0,
        rp_spacing=rp_spacing,
        corridor_halfwidth=1.5,
        wall_material="metal",
        partition_every=6.0,
        partition_depth=5.0,
    )
