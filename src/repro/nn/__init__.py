"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The STONE paper assumes a PyTorch-class training stack; none is available
offline, so this subpackage provides one: functional layers with explicit
caches (enabling shared-weight Siamese training), triplet/contrastive/
cross-entropy losses, first-order optimizers, LR schedules, a sequential
model container with ``.npz`` persistence, a supervised trainer, and
finite-difference gradient checking used by the test suite.
"""

from . import initializers, schedules
from .gradcheck import (
    check_layer_input_grad,
    check_layer_param_grads,
    check_loss_grad,
    numerical_gradient,
    relative_error,
)
from .layers import (
    ELU,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GaussianDropout,
    GaussianNoise,
    GlobalAvgPool2D,
    L2Normalize,
    Layer,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
)
from .losses import (
    BatchHardTripletLoss,
    ContrastiveLoss,
    MSELoss,
    SoftmaxCrossEntropy,
    TripletLoss,
    pairwise_squared_distances,
)
from .model import Sequential
from .optimizers import (
    SGD,
    AdaGrad,
    Adam,
    AdamW,
    Momentum,
    Optimizer,
    RMSProp,
    clip_grads_by_norm,
    get_optimizer,
)
from .trainer import EarlyStopping, History, Trainer, iterate_minibatches

__all__ = [
    "initializers",
    "schedules",
    "Layer",
    "Conv2D",
    "Dense",
    "Dropout",
    "GaussianNoise",
    "GaussianDropout",
    "BatchNorm",
    "L2Normalize",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Reshape",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "ELU",
    "Softmax",
    "TripletLoss",
    "BatchHardTripletLoss",
    "ContrastiveLoss",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "pairwise_squared_distances",
    "Sequential",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "AdamW",
    "RMSProp",
    "AdaGrad",
    "get_optimizer",
    "clip_grads_by_norm",
    "Trainer",
    "History",
    "EarlyStopping",
    "iterate_minibatches",
    "numerical_gradient",
    "relative_error",
    "check_layer_input_grad",
    "check_layer_param_grads",
    "check_loss_grad",
]
