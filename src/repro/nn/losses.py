"""Loss functions.

Each loss exposes ``value(...) -> float`` and ``grad(...)`` returning the
gradient(s) of the *mean* loss w.r.t. its input(s), so parameter gradients
are already averaged over the batch.
"""

from __future__ import annotations

import numpy as np

from .initializers import DTYPE


def _as2d(x: np.ndarray, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=DTYPE)
    if x.ndim != 2:
        raise ValueError(f"{name} must be 2-D (batch, dim), got shape {x.shape}")
    return x


class TripletLoss:
    """FaceNet-style triplet loss (paper Sec. III, eq. 2).

    ``L = mean(max(0, ||a - p||^2 - ||a - n||^2 + margin))``

    The margin keeps the trivial all-zero embedding from satisfying the
    ranking constraint. ``grad`` returns the three gradients
    ``(dL/da, dL/dp, dL/dn)`` so a shared-weight Siamese trainer can run
    three backward passes and sum parameter gradients.
    """

    def __init__(self, margin: float = 0.2) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = float(margin)

    def _terms(
        self, anchor: np.ndarray, positive: np.ndarray, negative: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        a = _as2d(anchor, "anchor")
        p = _as2d(positive, "positive")
        n = _as2d(negative, "negative")
        if not (a.shape == p.shape == n.shape):
            raise ValueError(
                f"triplet shapes differ: {a.shape}, {p.shape}, {n.shape}"
            )
        d_ap = ((a - p) ** 2).sum(axis=1)
        d_an = ((a - n) ** 2).sum(axis=1)
        violation = d_ap - d_an + self.margin
        return violation, d_ap, d_an

    def value(
        self, anchor: np.ndarray, positive: np.ndarray, negative: np.ndarray
    ) -> float:
        violation, _, _ = self._terms(anchor, positive, negative)
        return float(np.maximum(violation, 0.0).mean())

    def active_fraction(
        self, anchor: np.ndarray, positive: np.ndarray, negative: np.ndarray
    ) -> float:
        """Fraction of triplets in the batch that violate the margin.

        A useful training diagnostic: near 0 means the mining strategy has
        gone stale (all triplets already satisfied).
        """
        violation, _, _ = self._terms(anchor, positive, negative)
        return float((violation > 0).mean())

    def grad(
        self, anchor: np.ndarray, positive: np.ndarray, negative: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        a = _as2d(anchor, "anchor")
        p = _as2d(positive, "positive")
        n = _as2d(negative, "negative")
        violation, _, _ = self._terms(a, p, n)
        active = (violation > 0).astype(DTYPE)[:, None]
        batch = a.shape[0]
        scale = 2.0 / batch
        da = scale * active * (n - p)  # d/da [(a-p)^2 - (a-n)^2] = 2(n - p)
        dp = scale * active * (p - a)
        dn = scale * active * (a - n)
        return da.astype(DTYPE), dp.astype(DTYPE), dn.astype(DTYPE)


class ContrastiveLoss:
    """DeepFace-style pairwise contrastive loss.

    ``L = y * d^2 + (1 - y) * max(0, margin - d)^2`` with ``d = ||x1 - x2||``.
    ``y = 1`` marks a similar pair. Used by the SELE-style baseline and for
    ablations against the triplet formulation.
    """

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        self.margin = float(margin)

    def _dist(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        diff = x1 - x2
        return np.sqrt((diff * diff).sum(axis=1) + 1e-12)

    def value(self, x1: np.ndarray, x2: np.ndarray, y: np.ndarray) -> float:
        x1 = _as2d(x1, "x1")
        x2 = _as2d(x2, "x2")
        y = np.asarray(y, dtype=DTYPE).reshape(-1)
        if y.shape[0] != x1.shape[0]:
            raise ValueError("pair labels must match batch size")
        d = self._dist(x1, x2)
        hinge = np.maximum(self.margin - d, 0.0)
        loss = y * d * d + (1.0 - y) * hinge * hinge
        return float(loss.mean())

    def grad(
        self, x1: np.ndarray, x2: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x1 = _as2d(x1, "x1")
        x2 = _as2d(x2, "x2")
        y = np.asarray(y, dtype=DTYPE).reshape(-1)
        diff = x1 - x2
        d = self._dist(x1, x2)
        hinge = np.maximum(self.margin - d, 0.0)
        batch = x1.shape[0]
        # d(d)/dx1 = diff / d ; similar pairs pull together, dissimilar push.
        coeff = (2.0 * y - 2.0 * (1.0 - y) * hinge / d) / batch
        dx1 = coeff[:, None] * diff
        return dx1.astype(DTYPE), (-dx1).astype(DTYPE)


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy over integer class labels.

    Used by the SCNN baseline, which classifies fingerprints into RP
    indices with a conventional entropy loss (paper Sec. II / V.A.3).
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = float(label_smoothing)

    def _probs(self, logits: np.ndarray) -> np.ndarray:
        logits = _as2d(logits, "logits")
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def _target_dist(self, labels: np.ndarray, n_classes: int) -> np.ndarray:
        labels = np.asarray(labels).reshape(-1).astype(np.int64)
        if labels.min() < 0 or labels.max() >= n_classes:
            raise ValueError(
                f"labels out of range [0, {n_classes}): "
                f"[{labels.min()}, {labels.max()}]"
            )
        t = np.zeros((labels.shape[0], n_classes), dtype=DTYPE)
        t[np.arange(labels.shape[0]), labels] = 1.0
        if self.label_smoothing > 0:
            eps = self.label_smoothing
            t = (1.0 - eps) * t + eps / n_classes
        return t

    def value(self, logits: np.ndarray, labels: np.ndarray) -> float:
        probs = self._probs(logits)
        t = self._target_dist(labels, probs.shape[1])
        ll = -(t * np.log(probs + 1e-12)).sum(axis=1)
        return float(ll.mean())

    def grad(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        probs = self._probs(logits)
        t = self._target_dist(labels, probs.shape[1])
        return ((probs - t) / probs.shape[0]).astype(DTYPE)

    def accuracy(self, logits: np.ndarray, labels: np.ndarray) -> float:
        probs = self._probs(logits)
        labels = np.asarray(labels).reshape(-1)
        return float((probs.argmax(axis=1) == labels).mean())


class MSELoss:
    """Mean squared error over all elements; used for regression heads."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred = np.asarray(pred, dtype=DTYPE)
        target = np.asarray(target, dtype=DTYPE)
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        return float(((pred - target) ** 2).mean())

    def grad(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred = np.asarray(pred, dtype=DTYPE)
        target = np.asarray(target, dtype=DTYPE)
        return (2.0 * (pred - target) / pred.size).astype(DTYPE)


def pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    """All-pairs squared Euclidean distances of the rows of ``x``.

    Shared helper for batch-hard mining and KNN heads. Clamped at zero to
    absorb negative values from floating-point cancellation.
    """
    x = _as2d(x, "x")
    sq = (x * x).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    return np.maximum(d2, 0.0)


class BatchHardTripletLoss:
    """Batch-hard triplet loss (Hermans et al. 2017) for ablations.

    For each sample, the hardest positive (farthest same-label) and hardest
    negative (closest different-label) *within the batch* are mined. This
    is the generic alternative to STONE's floorplan-aware selection; the
    ablation bench contrasts the two.
    """

    def __init__(self, margin: float = 0.2) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = float(margin)

    def _mine(
        self, emb: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        emb = _as2d(emb, "embeddings")
        labels = np.asarray(labels).reshape(-1)
        if labels.shape[0] != emb.shape[0]:
            raise ValueError("labels must match batch size")
        d2 = pairwise_squared_distances(emb)
        same = labels[:, None] == labels[None, :]
        eye = np.eye(emb.shape[0], dtype=bool)
        pos_mask = same & ~eye
        neg_mask = ~same
        if not pos_mask.any(axis=1).all() or not neg_mask.any(axis=1).all():
            raise ValueError(
                "every batch row needs at least one positive and one negative; "
                "use a PK-style batch sampler"
            )
        d_pos = np.where(pos_mask, d2, -np.inf)
        d_neg = np.where(neg_mask, d2, np.inf)
        hardest_pos = d_pos.argmax(axis=1)
        hardest_neg = d_neg.argmin(axis=1)
        return d2, same, hardest_pos, hardest_neg

    def value(self, emb: np.ndarray, labels: np.ndarray) -> float:
        d2, _, hp, hn = self._mine(emb, labels)
        idx = np.arange(d2.shape[0])
        viol = d2[idx, hp] - d2[idx, hn] + self.margin
        return float(np.maximum(viol, 0.0).mean())

    def grad(self, emb: np.ndarray, labels: np.ndarray) -> np.ndarray:
        emb = _as2d(emb, "embeddings")
        d2, _, hp, hn = self._mine(emb, labels)
        idx = np.arange(d2.shape[0])
        viol = d2[idx, hp] - d2[idx, hn] + self.margin
        active = viol > 0
        grad = np.zeros_like(emb)
        batch = emb.shape[0]
        for i in np.flatnonzero(active):
            p, n = hp[i], hn[i]
            # d/d(emb) of ||e_i - e_p||^2 - ||e_i - e_n||^2.
            grad[i] += 2.0 * (emb[n] - emb[p])
            grad[p] += 2.0 * (emb[p] - emb[i])
            grad[n] += 2.0 * (emb[i] - emb[n])
        return (grad / batch).astype(DTYPE)
