"""Sequential model container with save/load support."""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from .initializers import DTYPE
from .layers.activations import ELU, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .layers.base import Layer
from .layers.conv import Conv2D
from .layers.dense import Dense
from .layers.dropout import Dropout
from .layers.noise import GaussianDropout, GaussianNoise
from .layers.normalization import BatchNorm, L2Normalize
from .layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .layers.reshape import Flatten, Reshape

_LAYER_CLASSES = {
    cls.__name__: cls
    for cls in (
        ReLU,
        LeakyReLU,
        Sigmoid,
        Tanh,
        ELU,
        Softmax,
        Conv2D,
        Dense,
        Dropout,
        GaussianNoise,
        GaussianDropout,
        BatchNorm,
        L2Normalize,
        MaxPool2D,
        AvgPool2D,
        GlobalAvgPool2D,
        Flatten,
        Reshape,
    )
}


class Sequential:
    """A linear stack of layers with functional forward/backward.

    The model carries *no* activation caches of its own: ``forward``
    returns the list of per-layer caches, and ``backward`` consumes it.
    This allows several independent forward passes through the same
    weights before any backward pass — the property Siamese triplet
    training depends on.
    """

    def __init__(self, layers: Sequence[Layer] | None = None) -> None:
        self.layers: list[Layer] = list(layers) if layers else []

    # -- construction --------------------------------------------------------

    def add(self, layer: Layer) -> Sequential:
        """Append a layer; returns self for chaining."""
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")
        self.layers.append(layer)
        return self

    # -- execution -----------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, list[Any]]:
        """Run all layers; returns (output, caches) for a later backward."""
        caches: list[Any] = []
        out = np.asarray(x, dtype=DTYPE)
        for layer in self.layers:
            out, cache = layer.forward(out, training=training, rng=rng)
            caches.append(cache)
        return out, caches

    def predict(
        self,
        x: np.ndarray,
        *,
        batch_size: int | None = 256,
        backend: Any | None = None,
    ) -> np.ndarray:
        """Inference-mode forward pass, batched to bound memory.

        ``batch_size=None`` runs the whole input in one pass. Chunked
        passes write into a preallocated output so peak memory is one
        chunk's activations plus the result, never 2x the result.

        ``backend`` (a :mod:`repro.kernels` backend name or instance)
        routes every ``Dense`` layer — and a directly following
        ``ReLU`` — through the backend's fused ``dense_forward``.
        ``None`` keeps the layer-by-layer path. The fusion reuses the
        gemm output buffer for bias and activation, so it is bitwise
        identical to the unfused pass (``y + b`` and ``y += b`` produce
        the same floats; ``ReLU`` is ``x * (x > 0)`` in both).
        """
        x = np.asarray(x, dtype=DTYPE)
        if backend is not None:
            from ..kernels import resolve_backend

            backend = resolve_backend(backend)
        if batch_size is None or x.shape[0] <= batch_size:
            return self._predict_block(x, backend)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        first = self._predict_block(x[:batch_size], backend)
        out = np.empty((x.shape[0],) + first.shape[1:], dtype=first.dtype)
        out[:batch_size] = first
        for i in range(batch_size, x.shape[0], batch_size):
            out[i : i + batch_size] = self._predict_block(
                x[i : i + batch_size], backend
            )
        return out

    def _predict_block(self, x: np.ndarray, backend: Any | None) -> np.ndarray:
        """One inference block, optionally Dense(+ReLU)-fused via ``backend``."""
        if backend is None:
            return self.forward(x, training=False)[0]
        out = np.asarray(x, dtype=DTYPE)
        skip_next = False
        for idx, layer in enumerate(self.layers):
            if skip_next:
                skip_next = False
                continue
            if isinstance(layer, Dense):
                fuse = (
                    idx + 1 < len(self.layers)
                    and type(self.layers[idx + 1]) is ReLU
                )
                out = backend.dense_forward(out, layer, fuse_relu=fuse)
                skip_next = fuse
            else:
                out, _ = layer.forward(out, training=False)
        return out

    def backward(
        self, dy: np.ndarray, caches: Sequence[Any]
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Backpropagate ``dy``; returns (dx, grads keyed like parameters())."""
        if len(caches) != len(self.layers):
            raise ValueError(
                f"cache count {len(caches)} != layer count {len(self.layers)}"
            )
        grads: dict[str, np.ndarray] = {}
        dx = np.asarray(dy, dtype=DTYPE)
        for idx in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[idx]
            dx, layer_grads = layer.backward(dx, caches[idx])
            for pname, g in layer_grads.items():
                grads[f"{idx}.{pname}"] = g
        return dx, grads

    # -- parameters ----------------------------------------------------------

    def parameters(self) -> dict[str, np.ndarray]:
        """Flat dict of all trainable parameters, keyed ``"<idx>.<name>"``."""
        params: dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for pname, arr in layer.params.items():
                params[f"{idx}.{pname}"] = arr
        return params

    def n_params(self) -> int:
        """Total scalar parameter count."""
        return sum(layer.n_params() for layer in self.layers)

    def zero_grads(self) -> dict[str, np.ndarray]:
        """Zero gradient dict matching :meth:`parameters` (for accumulation)."""
        return {k: np.zeros_like(v) for k, v in self.parameters().items()}

    @staticmethod
    def accumulate_grads(
        total: dict[str, np.ndarray], part: dict[str, np.ndarray]
    ) -> None:
        """Add ``part`` into ``total`` in place (missing keys are errors)."""
        for key, g in part.items():
            total[key] += g

    def set_parameters(self, values: dict[str, np.ndarray]) -> None:
        """Copy values into the model's parameter arrays (strict keys)."""
        params = self.parameters()
        if set(values) != set(params):
            missing = set(params) - set(values)
            extra = set(values) - set(params)
            raise KeyError(f"parameter mismatch: missing={missing} extra={extra}")
        for key, arr in values.items():
            if params[key].shape != arr.shape:
                raise ValueError(
                    f"{key}: shape {arr.shape} != expected {params[key].shape}"
                )
            params[key][...] = arr

    # -- introspection --------------------------------------------------------

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Propagate a sample shape (no batch dim) through all layers."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def summary(self, input_shape: tuple[int, ...] | None = None) -> str:
        """Human-readable architecture table."""
        lines = ["layer                     output shape        params"]
        shape = tuple(input_shape) if input_shape else None
        total = 0
        for layer in self.layers:
            if shape is not None:
                shape = layer.output_shape(shape)
                shape_str = str(shape)
            else:
                shape_str = "?"
            n = layer.n_params()
            total += n
            lines.append(f"{layer.name:<25} {shape_str:<19} {n:>6}")
        lines.append(f"total params: {total}")
        return "\n".join(lines)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize architecture + weights to a single ``.npz`` file."""
        path = Path(path)
        arch = [
            {"class": layer.__class__.__name__, "config": layer.get_config()}
            for layer in self.layers
        ]
        arrays: dict[str, np.ndarray] = {
            f"param:{k}": v for k, v in self.parameters().items()
        }
        for idx, layer in enumerate(self.layers):
            if isinstance(layer, BatchNorm):
                arrays[f"state:{idx}.running_mean"] = layer.running_mean
                arrays[f"state:{idx}.running_var"] = layer.running_var
        arrays["__architecture__"] = np.frombuffer(
            json.dumps(arch).encode("utf-8"), dtype=np.uint8
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> Sequential:
        """Rebuild a model saved by :meth:`save`."""
        with np.load(Path(path)) as data:
            arch = json.loads(bytes(data["__architecture__"]).decode("utf-8"))
            model = cls()
            for spec in arch:
                layer_cls = _LAYER_CLASSES.get(spec["class"])
                if layer_cls is None:
                    raise ValueError(f"unknown layer class {spec['class']!r}")
                config = dict(spec["config"])
                for key in ("kernel_size", "stride", "pool_size", "target_shape", "padding"):
                    if key in config and isinstance(config[key], list):
                        config[key] = tuple(config[key])
                model.add(layer_cls(**config))
            values = {
                k[len("param:") :]: data[k] for k in data.files if k.startswith("param:")
            }
            model.set_parameters(values)
            for idx, layer in enumerate(model.layers):
                if isinstance(layer, BatchNorm):
                    layer.running_mean = data[f"state:{idx}.running_mean"]
                    layer.running_var = data[f"state:{idx}.running_var"]
        return model

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(layer.name for layer in self.layers)
        return f"Sequential([{inner}])"
