"""First-order optimizers.

Optimizers operate on flat dicts ``{param_id: array}`` so they are agnostic
to model structure. ``Sequential.parameters()`` produces stable string ids
like ``"3.W"`` (layer index + parameter name); slot state (momentum, Adam
moments) is keyed the same way and survives across steps.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .initializers import DTYPE

ParamDict = "dict[str, np.ndarray]"


def clip_grads_by_norm(
    grads: dict[str, np.ndarray], max_norm: float
) -> tuple[dict[str, np.ndarray], float]:
    """Scale the full gradient so its global L2 norm is at most ``max_norm``.

    Returns (possibly rescaled grads, pre-clip norm). Triplet training can
    produce spiky gradients when the mining suddenly finds hard triplets;
    norm clipping keeps Adam's second moment from being poisoned.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads.values())))
    if total <= max_norm or total == 0.0:
        return grads, total
    scale = max_norm / total
    return {k: (g * scale).astype(DTYPE) for k, g in grads.items()}, total


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update_one`."""

    def __init__(self, lr: float, *, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.iterations = 0

    def step(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        """Update ``params`` in place from ``grads`` (same keys)."""
        missing = set(params) - set(grads)
        if missing:
            raise KeyError(f"gradients missing for params: {sorted(missing)}")
        self.iterations += 1
        for key, p in params.items():
            g = np.asarray(grads[key], dtype=DTYPE)
            if g.shape != p.shape:
                raise ValueError(
                    f"{key}: grad shape {g.shape} != param shape {p.shape}"
                )
            if self.weight_decay > 0.0 and not self._decoupled_decay():
                g = g + self.weight_decay * p
            self._update_one(key, p, g)
            if self.weight_decay > 0.0 and self._decoupled_decay():
                p -= self.lr * self.weight_decay * p

    def _decoupled_decay(self) -> bool:
        return False

    def _update_one(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        raise NotImplementedError

    def state_keys(self) -> Iterable[str]:
        return ()


class SGD(Optimizer):
    """Plain stochastic gradient descent: ``p -= lr * g``."""

    def _update_one(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        p -= self.lr * g


class Momentum(Optimizer):
    """SGD with (optionally Nesterov) momentum."""

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.9,
        *,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: dict[str, np.ndarray] = {}

    def _update_one(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(p)
        v = self.momentum * v - self.lr * g
        self._velocity[key] = v
        if self.nesterov:
            p += self.momentum * v - self.lr * g
        else:
            p += v

    def state_keys(self) -> Iterable[str]:
        return self._velocity.keys()


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        *,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr, weight_decay=weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def _update_one(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(p)
            v = np.zeros_like(p)
        m = self.beta1 * m + (1.0 - self.beta1) * g
        v = self.beta2 * v + (1.0 - self.beta2) * (g * g)
        self._m[key] = m
        self._v[key] = v
        t = self.iterations
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_keys(self) -> Iterable[str]:
        return self._m.keys()


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _decoupled_decay(self) -> bool:
        return True


class RMSProp(Optimizer):
    """RMSProp with an exponentially decaying squared-gradient average."""

    def __init__(
        self,
        lr: float = 1e-3,
        rho: float = 0.9,
        eps: float = 1e-8,
        *,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr, weight_decay=weight_decay)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq: dict[str, np.ndarray] = {}

    def _update_one(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        s = self._sq.get(key)
        if s is None:
            s = np.zeros_like(p)
        s = self.rho * s + (1.0 - self.rho) * (g * g)
        self._sq[key] = s
        p -= self.lr * g / (np.sqrt(s) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad: per-parameter learning rates from accumulated squares."""

    def __init__(self, lr: float = 0.01, eps: float = 1e-8, *, weight_decay: float = 0.0) -> None:
        super().__init__(lr, weight_decay=weight_decay)
        self.eps = float(eps)
        self._acc: dict[str, np.ndarray] = {}

    def _update_one(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        a = self._acc.get(key)
        if a is None:
            a = np.zeros_like(p)
        a = a + g * g
        self._acc[key] = a
        p -= self.lr * g / (np.sqrt(a) + self.eps)


_OPTIMIZERS = {
    "sgd": SGD,
    "momentum": Momentum,
    "adam": Adam,
    "adamw": AdamW,
    "rmsprop": RMSProp,
    "adagrad": AdaGrad,
}


def get_optimizer(name: str, lr: float | None = None, **kwargs) -> Optimizer:
    """Build an optimizer by name, e.g. ``get_optimizer('adam', 1e-3)``."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_OPTIMIZERS))
        raise KeyError(f"unknown optimizer {name!r}; known: {known}") from None
    if lr is not None:
        kwargs["lr"] = lr
    return cls(**kwargs)
