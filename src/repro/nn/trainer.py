"""Generic supervised training loop for :class:`~repro.nn.model.Sequential`.

This trainer covers the classification/regression baselines (SCNN) and any
single-branch model. Siamese triplet training has its own specialised loop
in ``repro.core.siamese`` because it runs three forward passes per step.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .initializers import DTYPE
from .model import Sequential
from .optimizers import Optimizer, clip_grads_by_norm
from .schedules import Schedule


class SupervisedLoss(Protocol):
    """Structural type for losses usable with :class:`Trainer`."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float: ...

    def grad(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray: ...


@dataclass
class History:
    """Per-epoch training curves accumulated by the trainer."""

    loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    extra: dict[str, list[float]] = field(default_factory=dict)

    def record_extra(self, name: str, value: float) -> None:
        self.extra.setdefault(name, []).append(float(value))

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")


@dataclass
class EarlyStopping:
    """Stop when the monitored loss has not improved for ``patience`` epochs."""

    patience: int = 10
    min_delta: float = 0.0
    _best: float = field(default=float("inf"), init=False)
    _stale: int = field(default=0, init=False)

    def update(self, value: float) -> bool:
        """Record an epoch value; returns True when training should stop."""
        if value < self._best - self.min_delta:
            self._best = value
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


def iterate_minibatches(
    n: int,
    batch_size: int,
    rng: np.random.Generator,
    *,
    shuffle: bool = True,
    drop_last: bool = False,
):
    """Yield index arrays covering ``range(n)`` in batches."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and batch.shape[0] < batch_size:
            return
        yield batch


class Trainer:
    """Minibatch gradient-descent driver.

    Parameters
    ----------
    model, loss, optimizer:
        The pieces being composed. ``loss`` follows the
        :class:`SupervisedLoss` protocol.
    schedule:
        Optional LR schedule ``epoch -> lr``; overrides ``optimizer.lr``
        at each epoch start.
    grad_clip_norm:
        If set, clips the global gradient norm each step.
    """

    def __init__(
        self,
        model: Sequential,
        loss: SupervisedLoss,
        optimizer: Optimizer,
        *,
        schedule: Schedule | None = None,
        grad_clip_norm: float | None = None,
    ) -> None:
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.schedule = schedule
        self.grad_clip_norm = grad_clip_norm

    def train_step(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> float:
        """One gradient step on a single minibatch; returns the batch loss."""
        pred, caches = self.model.forward(x, training=True, rng=rng)
        batch_loss = self.loss.value(pred, y)
        dpred = self.loss.grad(pred, y)
        _, grads = self.model.backward(dpred, caches)
        if self.grad_clip_norm is not None:
            grads, _ = clip_grads_by_norm(grads, self.grad_clip_norm)
        self.optimizer.step(self.model.parameters(), grads)
        return batch_loss

    def evaluate(self, x: np.ndarray, y: np.ndarray, *, batch_size: int = 256) -> float:
        """Mean loss over a dataset in inference mode."""
        x = np.asarray(x, dtype=DTYPE)
        total = 0.0
        count = 0
        for start in range(0, x.shape[0], batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            pred = self.model.predict(xb, batch_size=batch_size)
            total += self.loss.value(pred, yb) * xb.shape[0]
            count += xb.shape[0]
        return total / max(count, 1)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        early_stopping: EarlyStopping | None = None,
        on_epoch_end: Callable[[int, History], None] | None = None,
        verbose: bool = False,
    ) -> History:
        """Train for ``epochs`` passes over ``(x, y)``; returns the history."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        x = np.asarray(x, dtype=DTYPE)
        if x.shape[0] != np.asarray(y).shape[0]:
            raise ValueError("x and y must have matching first dimensions")
        rng = rng or np.random.default_rng()
        history = History()
        for epoch in range(epochs):
            if self.schedule is not None:
                self.optimizer.lr = float(self.schedule(epoch))
            epoch_loss = 0.0
            seen = 0
            for batch in iterate_minibatches(x.shape[0], batch_size, rng):
                batch_loss = self.train_step(x[batch], np.asarray(y)[batch], rng)
                epoch_loss += batch_loss * batch.shape[0]
                seen += batch.shape[0]
            history.loss.append(epoch_loss / max(seen, 1))
            history.lr.append(self.optimizer.lr)
            if validation is not None:
                history.val_loss.append(self.evaluate(*validation))
            if verbose:  # pragma: no cover - console I/O
                msg = f"epoch {epoch + 1}/{epochs} loss={history.loss[-1]:.4f}"
                if validation is not None:
                    msg += f" val_loss={history.val_loss[-1]:.4f}"
                print(msg)
            if on_epoch_end is not None:
                on_epoch_end(epoch, history)
            if early_stopping is not None:
                monitored = (
                    history.val_loss[-1] if validation is not None else history.loss[-1]
                )
                if early_stopping.update(monitored):
                    break
        return history
