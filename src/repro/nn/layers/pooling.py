"""Spatial pooling layers (NCHW)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE
from .base import Cache, Layer
from .conv import conv_output_hw, im2col


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(v, int):
        return (v, v)
    return (int(v[0]), int(v[1]))


class MaxPool2D(Layer):
    """Max pooling over non-overlapping or strided windows."""

    def __init__(
        self,
        pool_size: int | tuple[int, int] = 2,
        *,
        stride: int | tuple[int, int] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size
        if min(self.pool_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("pool size and stride must be positive")

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected NCHW input, got {x.shape}")
        n, c, h, w = x.shape
        # Treat each channel as an independent 1-channel image so im2col
        # gives (N*C*OH*OW, KH*KW) patch rows.
        flat = x.reshape(n * c, 1, h, w)
        cols, (oh, ow) = im2col(flat, self.pool_size, self.stride, (0, 0))
        argmax = cols.argmax(axis=1)
        y = cols[np.arange(cols.shape[0]), argmax]
        y = y.reshape(n, c, oh, ow)
        return y, (argmax, (n, c, h, w), (oh, ow))

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        argmax, (n, c, h, w), (oh, ow) = cache
        dy = np.asarray(dy, dtype=DTYPE)
        kh, kw = self.pool_size
        sh, sw = self.stride
        dcols = np.zeros((n * c * oh * ow, kh * kw), dtype=DTYPE)
        dcols[np.arange(dcols.shape[0]), argmax] = dy.reshape(-1)
        # Inline col2im for the 1-channel-per-image trick.
        dx = np.zeros((n * c, 1, h, w), dtype=DTYPE)
        cols6 = dcols.reshape(n * c, oh, ow, 1, kh, kw).transpose(0, 3, 1, 2, 4, 5)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols6[
                    :, :, :, :, i, j
                ]
        return dx.reshape(n, c, h, w), {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        oh, ow = conv_output_hw((h, w), self.pool_size, self.stride, (0, 0))
        return (c, oh, ow)

    def get_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pool_size": list(self.pool_size),
            "stride": list(self.stride),
        }


class AvgPool2D(Layer):
    """Average pooling over strided windows."""

    def __init__(
        self,
        pool_size: int | tuple[int, int] = 2,
        *,
        stride: int | tuple[int, int] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size
        if min(self.pool_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("pool size and stride must be positive")

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected NCHW input, got {x.shape}")
        n, c, h, w = x.shape
        flat = x.reshape(n * c, 1, h, w)
        cols, (oh, ow) = im2col(flat, self.pool_size, self.stride, (0, 0))
        y = cols.mean(axis=1).reshape(n, c, oh, ow)
        return y, ((n, c, h, w), (oh, ow))

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        (n, c, h, w), (oh, ow) = cache
        dy = np.asarray(dy, dtype=DTYPE)
        kh, kw = self.pool_size
        sh, sw = self.stride
        share = dy.reshape(-1)[:, None] / float(kh * kw)
        dcols = np.broadcast_to(share, (n * c * oh * ow, kh * kw))
        dx = np.zeros((n * c, 1, h, w), dtype=DTYPE)
        cols6 = dcols.reshape(n * c, oh, ow, 1, kh, kw).transpose(0, 3, 1, 2, 4, 5)
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols6[
                    :, :, :, :, i, j
                ]
        return dx.reshape(n, c, h, w), {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        oh, ow = conv_output_hw((h, w), self.pool_size, self.stride, (0, 0))
        return (c, oh, ow)

    def get_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pool_size": list(self.pool_size),
            "stride": list(self.stride),
        }


class GlobalAvgPool2D(Layer):
    """Average over all spatial positions: ``(N, C, H, W) -> (N, C)``."""

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected NCHW input, got {x.shape}")
        return x.mean(axis=(2, 3)), x.shape

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        n, c, h, w = cache
        dy = np.asarray(dy, dtype=DTYPE)
        dx = np.broadcast_to(dy[:, :, None, None] / float(h * w), (n, c, h, w))
        return np.ascontiguousarray(dx, dtype=DTYPE), {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, _, _ = input_shape
        return (c,)
