"""Stochastic regularization layers that perturb the input signal."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE
from .base import Cache, Layer


class GaussianNoise(Layer):
    """Additive zero-mean Gaussian noise, active only during training.

    STONE adds ``sigma = 0.10`` noise at the encoder input to build
    resilience to short-term RSSI fluctuations (paper Sec. IV.D, Fig. 1).
    The gradient is the identity: noise is constant w.r.t. the input.
    """

    def __init__(self, sigma: float = 0.10, *, name: str | None = None) -> None:
        super().__init__(name)
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        x = np.asarray(x, dtype=DTYPE)
        if not training or self.sigma == 0.0:
            return x, None
        if rng is None:
            raise ValueError(f"{self.name}: training-mode forward requires rng")
        noise = rng.normal(0.0, self.sigma, size=x.shape).astype(DTYPE)
        return x + noise, None

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        del cache
        return np.asarray(dy, dtype=DTYPE), {}

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "sigma": self.sigma}


class GaussianDropout(Layer):
    """Multiplicative Gaussian noise ``x * N(1, sigma^2)`` during training.

    A smooth alternative to binary dropout; provided for ablations on the
    encoder's regularization strategy.
    """

    def __init__(self, sigma: float = 0.1, *, name: str | None = None) -> None:
        super().__init__(name)
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        x = np.asarray(x, dtype=DTYPE)
        if not training or self.sigma == 0.0:
            return x, None
        if rng is None:
            raise ValueError(f"{self.name}: training-mode forward requires rng")
        mult = rng.normal(1.0, self.sigma, size=x.shape).astype(DTYPE)
        return x * mult, mult

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        dy = np.asarray(dy, dtype=DTYPE)
        if cache is None:
            return dy, {}
        return dy * cache, {}

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "sigma": self.sigma}
