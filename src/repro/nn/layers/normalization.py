"""Normalization layers: L2 embedding normalization and batch norm."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE
from .base import Cache, Layer


class L2Normalize(Layer):
    """Project each row onto the unit hypersphere: ``y = x / ||x||_2``.

    FaceNet-style Siamese encoders constrain embeddings to ``||f(x)|| = 1``
    (paper Sec. III) so that triplet distances live on a bounded manifold
    and the margin alpha has a scale-free meaning.
    """

    def __init__(self, eps: float = 1e-8, *, name: str | None = None) -> None:
        super().__init__(name)
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        if x.ndim != 2:
            raise ValueError(f"{self.name}: expected (batch, dim), got {x.shape}")
        norm = np.sqrt((x * x).sum(axis=1, keepdims=True) + self.eps)
        y = x / norm
        return y, (y, norm)

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        y, norm = cache
        dy = np.asarray(dy, dtype=DTYPE)
        # d/dx (x/||x||) = (I - y y^T) / ||x||, applied row-wise.
        dot = (dy * y).sum(axis=1, keepdims=True)
        dx = (dy - y * dot) / norm
        return dx.astype(DTYPE), {}

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "eps": self.eps}


class BatchNorm(Layer):
    """Batch normalization over the feature axis.

    Supports 2-D ``(N, F)`` and 4-D NCHW ``(N, C, H, W)`` inputs (per-channel
    statistics for the latter). Running statistics are kept for inference
    with exponential moving averages.
    """

    def __init__(
        self,
        num_features: int,
        *,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.params["gamma"] = np.ones(self.num_features, dtype=DTYPE)
        self.params["beta"] = np.zeros(self.num_features, dtype=DTYPE)
        # Running stats are state, not trainable parameters.
        self.running_mean = np.zeros(self.num_features, dtype=DTYPE)
        self.running_var = np.ones(self.num_features, dtype=DTYPE)

    def _axes_and_shape(
        self, x: np.ndarray
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if x.ndim == 2:
            if x.shape[1] != self.num_features:
                raise ValueError(
                    f"{self.name}: expected (N, {self.num_features}), got {x.shape}"
                )
            return (0,), (1, self.num_features)
        if x.ndim == 4:
            if x.shape[1] != self.num_features:
                raise ValueError(
                    f"{self.name}: expected (N, {self.num_features}, H, W), "
                    f"got {x.shape}"
                )
            return (0, 2, 3), (1, self.num_features, 1, 1)
        raise ValueError(f"{self.name}: supports 2-D/4-D inputs, got ndim={x.ndim}")

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del rng
        x = np.asarray(x, dtype=DTYPE)
        axes, bshape = self._axes_and_shape(x)
        gamma = self.params["gamma"].reshape(bshape)
        beta = self.params["beta"].reshape(bshape)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = (m * self.running_mean + (1 - m) * mean).astype(DTYPE)
            self.running_var = (m * self.running_var + (1 - m) * var).astype(DTYPE)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var.reshape(bshape) + self.eps)
        x_hat = (x - mean.reshape(bshape)) * inv_std
        y = gamma * x_hat + beta
        cache = (x_hat, inv_std, axes, bshape, training)
        return y.astype(DTYPE), cache

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        x_hat, inv_std, axes, bshape, was_training = cache
        dy = np.asarray(dy, dtype=DTYPE)
        gamma = self.params["gamma"].reshape(bshape)
        grads = {
            "gamma": (dy * x_hat).sum(axis=axes).astype(DTYPE),
            "beta": dy.sum(axis=axes).astype(DTYPE),
        }
        if not was_training:
            # Inference-mode stats are constants: gradient is a plain scale.
            return (dy * gamma * inv_std).astype(DTYPE), grads
        m = float(np.prod([dy.shape[a] for a in axes]))
        dxhat = dy * gamma
        dx = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
        ) * inv_std
        del m
        return dx.astype(DTYPE), grads

    def get_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "num_features": self.num_features,
            "momentum": self.momentum,
            "eps": self.eps,
        }
