"""Inverted dropout."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE
from .base import Cache, Layer


class Dropout(Layer):
    """Inverted dropout: zero a fraction ``rate`` of units during training.

    Activations that survive are scaled by ``1 / (1 - rate)`` so inference
    is a plain identity (no test-time rescaling). STONE interleaves dropout
    between its convolution layers to improve encoder generalizability
    (paper Sec. IV.D).
    """

    def __init__(self, rate: float, *, name: str | None = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        x = np.asarray(x, dtype=DTYPE)
        if not training or self.rate == 0.0:
            return x, None
        if rng is None:
            raise ValueError(f"{self.name}: training-mode forward requires rng")
        keep = 1.0 - self.rate
        mask = (rng.random(x.shape) < keep).astype(DTYPE) / keep
        return x * mask, mask

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        dy = np.asarray(dy, dtype=DTYPE)
        if cache is None:
            return dy, {}
        return dy * cache, {}

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "rate": self.rate}
