"""Layer zoo for the NumPy neural-network substrate."""

from .activations import ELU, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .base import Layer, check_finite
from .conv import Conv2D, col2im, conv_output_hw, im2col, resolve_padding
from .dense import Dense
from .dropout import Dropout
from .noise import GaussianDropout, GaussianNoise
from .normalization import BatchNorm, L2Normalize
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .reshape import Flatten, Reshape

__all__ = [
    "Layer",
    "check_finite",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "ELU",
    "Softmax",
    "Conv2D",
    "Dense",
    "Dropout",
    "GaussianNoise",
    "GaussianDropout",
    "BatchNorm",
    "L2Normalize",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Reshape",
    "im2col",
    "col2im",
    "conv_output_hw",
    "resolve_padding",
]
