"""Elementwise activation layers (all stateless)."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE
from .base import Cache, Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(x, 0)``."""

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        mask = x > 0
        return x * mask, mask

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        mask: np.ndarray = cache
        return np.asarray(dy, dtype=DTYPE) * mask, {}


class LeakyReLU(Layer):
    """Leaky ReLU, ``x if x > 0 else alpha * x``."""

    def __init__(self, alpha: float = 0.01, *, name: str | None = None) -> None:
        super().__init__(name)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        mask = x > 0
        y = np.where(mask, x, self.alpha * x)
        return y.astype(DTYPE), mask

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        mask: np.ndarray = cache
        dy = np.asarray(dy, dtype=DTYPE)
        return np.where(mask, dy, self.alpha * dy).astype(DTYPE), {}

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "alpha": self.alpha}


class Sigmoid(Layer):
    """Logistic sigmoid, ``1 / (1 + exp(-x))``, computed stably."""

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        # Stable piecewise form avoids overflow in exp for large |x|.
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        return y, y

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        y: np.ndarray = cache
        return np.asarray(dy, dtype=DTYPE) * y * (1.0 - y), {}


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        y = np.tanh(np.asarray(x, dtype=DTYPE))
        return y, y

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        y: np.ndarray = cache
        return np.asarray(dy, dtype=DTYPE) * (1.0 - y * y), {}


class ELU(Layer):
    """Exponential linear unit, ``x if x > 0 else alpha * (exp(x) - 1)``."""

    def __init__(self, alpha: float = 1.0, *, name: str | None = None) -> None:
        super().__init__(name)
        self.alpha = float(alpha)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        neg = self.alpha * (np.exp(np.minimum(x, 0.0)) - 1.0)
        y = np.where(x > 0, x, neg).astype(DTYPE)
        return y, (x > 0, y)

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        pos_mask, y = cache
        dy = np.asarray(dy, dtype=DTYPE)
        dx = np.where(pos_mask, dy, dy * (y + self.alpha)).astype(DTYPE)
        return dx, {}

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "alpha": self.alpha}


class Softmax(Layer):
    """Row-wise softmax over the last axis.

    Mostly useful at inference; for training, prefer the fused
    ``SoftmaxCrossEntropy`` loss which has a simpler, more stable gradient.
    """

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        y = e / e.sum(axis=-1, keepdims=True)
        return y, y

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        y: np.ndarray = cache
        dy = np.asarray(dy, dtype=DTYPE)
        dot = (dy * y).sum(axis=-1, keepdims=True)
        return y * (dy - dot), {}
