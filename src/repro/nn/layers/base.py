"""Layer protocol for the functional NumPy neural-network substrate.

Design
------
Layers are *functional with explicit caches*:

- ``forward(x, training=..., rng=...) -> (y, cache)``
- ``backward(dy, cache) -> (dx, grads)``

The cache returned by ``forward`` carries everything ``backward`` needs
(inputs, masks, im2col buffers, ...). Because the cache travels outside the
layer object, a single parameter set can be pushed through several forward
passes before any backward pass runs — exactly what Siamese training needs:
the anchor/positive/negative branches share one set of weights, and the
triplet loss is only computable after all three embeddings exist.

Parameters live in ``layer.params`` (name -> float32 array) and gradients
are returned from ``backward`` keyed identically, so optimizers can zip
them together without knowing layer internals.
"""

from __future__ import annotations

from typing import Any

import numpy as np

Cache = Any
Grads = "dict[str, np.ndarray]"


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`forward` and :meth:`backward`.
    Stateless layers (activations, reshapes) simply keep ``params`` empty.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or self.__class__.__name__
        self.params: dict[str, np.ndarray] = {}

    # -- interface ---------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        """Compute the layer output and a cache for ``backward``."""
        raise NotImplementedError

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Propagate ``dy`` to the input and return parameter gradients.

        The returned gradient dict has exactly the same keys as
        ``self.params`` (empty dict for stateless layers).
        """
        raise NotImplementedError

    # -- introspection ------------------------------------------------------

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of the output for a single sample of ``input_shape``.

        Shapes exclude the batch dimension. The default assumes a
        shape-preserving layer; layers that reshape must override.
        """
        return input_shape

    def n_params(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def zero_grads_like(self) -> dict[str, np.ndarray]:
        """A gradient dict of zeros matching ``self.params``.

        Used by multi-branch training loops that accumulate gradients
        across several backward passes (e.g. triplet training).
        """
        return {k: np.zeros_like(v) for k, v in self.params.items()}

    # -- persistence ---------------------------------------------------------

    def get_config(self) -> dict[str, Any]:
        """JSON-serializable constructor arguments (for model save/load)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r}, params={self.n_params()})"


def check_finite(name: str, arr: np.ndarray) -> None:
    """Raise ``FloatingPointError`` if ``arr`` contains NaN or inf.

    Called by the trainer when ``debug=True``; catching divergence at the
    first bad layer beats silently training to a NaN loss.
    """
    if not np.all(np.isfinite(arr)):
        bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
        raise FloatingPointError(f"{name}: {bad} non-finite values detected")
