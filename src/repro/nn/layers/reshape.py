"""Shape-manipulation layers."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..initializers import DTYPE
from .base import Cache, Layer


class Flatten(Layer):
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        return x.reshape(x.shape[0], -1), x.shape

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        in_shape: tuple[int, ...] = cache
        return np.asarray(dy, dtype=DTYPE).reshape(in_shape), {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Reshape(Layer):
    """Reshape the non-batch dimensions to ``target_shape``."""

    def __init__(
        self, target_shape: Sequence[int], *, name: str | None = None
    ) -> None:
        super().__init__(name)
        self.target_shape = tuple(int(d) for d in target_shape)
        if any(d <= 0 for d in self.target_shape):
            raise ValueError(f"target dims must be positive, got {self.target_shape}")

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        x = np.asarray(x, dtype=DTYPE)
        expected = int(np.prod(self.target_shape))
        actual = int(np.prod(x.shape[1:]))
        if expected != actual:
            raise ValueError(
                f"{self.name}: cannot reshape sample of size {actual} "
                f"to {self.target_shape}"
            )
        return x.reshape((x.shape[0],) + self.target_shape), x.shape

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        in_shape: tuple[int, ...] = cache
        return np.asarray(dy, dtype=DTYPE).reshape(in_shape), {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if int(np.prod(input_shape)) != int(np.prod(self.target_shape)):
            raise ValueError(
                f"{self.name}: {input_shape} incompatible with {self.target_shape}"
            )
        return self.target_shape

    def get_config(self) -> dict[str, Any]:
        return {"name": self.name, "target_shape": list(self.target_shape)}
