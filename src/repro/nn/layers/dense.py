"""Fully connected (dense) layer."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE, InitializerLike, get_initializer
from .base import Cache, Layer


class Dense(Layer):
    """Affine transform ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    use_bias:
        Whether to learn an additive bias (default True).
    kernel_init, bias_init:
        Initializer names or callables (see ``repro.nn.initializers``).
    rng:
        Generator used to draw the initial weights. Required so that model
        construction is deterministic under a fixed seed.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        use_bias: bool = True,
        kernel_init: InitializerLike = "he_normal",
        bias_init: InitializerLike = "zeros",
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got in={in_features} out={out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self._kernel_init = kernel_init
        self._bias_init = bias_init
        rng = rng or np.random.default_rng()
        self.params["W"] = get_initializer(kernel_init)(
            (self.in_features, self.out_features), rng
        )
        if self.use_bias:
            self.params["b"] = get_initializer(bias_init)((self.out_features,), rng)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_features}), got {x.shape}"
            )
        x = np.ascontiguousarray(x, dtype=DTYPE)
        y = x @ self.params["W"]
        if self.use_bias:
            y = y + self.params["b"]
        return y, x

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        x: np.ndarray = cache
        dy = np.ascontiguousarray(dy, dtype=DTYPE)
        grads = {"W": x.T @ dy}
        if self.use_bias:
            grads["b"] = dy.sum(axis=0)
        dx = dy @ self.params["W"].T
        return dx, grads

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ValueError(
                f"{self.name}: expected ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def get_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "in_features": self.in_features,
            "out_features": self.out_features,
            "use_bias": self.use_bias,
            "kernel_init": self._kernel_init if isinstance(self._kernel_init, str) else "he_normal",
            "bias_init": self._bias_init if isinstance(self._bias_init, str) else "zeros",
        }
