"""2-D convolution via im2col + BLAS matmul.

Data layout is NCHW (batch, channels, height, width); kernels are
(out_channels, in_channels, kh, kw). STONE's encoder uses 2x2 kernels with
stride 1 on small (<= 14x14) fingerprint images, so im2col's memory
overhead is negligible and the matmul formulation is by far the fastest
pure-NumPy approach.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..initializers import DTYPE, InitializerLike, get_initializer
from .base import Cache, Layer

PaddingLike = str | int | tuple[int, int]


def resolve_padding(
    padding: PaddingLike, kernel: tuple[int, int], stride: tuple[int, int]
) -> tuple[int, int]:
    """Turn ``'valid'``/``'same'``/int/tuple padding specs into (ph, pw).

    ``'same'`` padding is computed for stride 1 (output size == input size);
    for larger strides it keeps ``ceil(n/stride)`` outputs like common DL
    frameworks when the input size is divisible by the stride.
    """
    if isinstance(padding, str):
        mode = padding.lower()
        if mode == "valid":
            return (0, 0)
        if mode == "same":
            # For stride 1 the standard formula is (k - 1) // 2 per side when
            # k is odd; even kernels need asymmetric padding in general,
            # which we approximate symmetrically with ceil((k-1)/2).
            ph = int(np.ceil((kernel[0] - 1) / 2))
            pw = int(np.ceil((kernel[1] - 1) / 2))
            return (ph, pw)
        raise ValueError(f"unknown padding mode {padding!r}")
    if isinstance(padding, int):
        return (padding, padding)
    ph, pw = padding
    return (int(ph), int(pw))


def conv_output_hw(
    in_hw: tuple[int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    pad: tuple[int, int],
) -> tuple[int, int]:
    """Output spatial size of a convolution/pool with the given geometry."""
    oh = (in_hw[0] + 2 * pad[0] - kernel[0]) // stride[0] + 1
    ow = (in_hw[1] + 2 * pad[1] - kernel[1]) // stride[1] + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"convolution collapses spatial dims: in={in_hw} kernel={kernel} "
            f"stride={stride} pad={pad} -> ({oh}, {ow})"
        )
    return oh, ow


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    pad: tuple[int, int],
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold NCHW input into a (N*OH*OW, C*KH*KW) matrix of patches.

    Implemented with ``stride_tricks.sliding_window_view`` so the heavy
    lifting stays inside NumPy C code.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    oh, ow = conv_output_hw((h, w), kernel, stride, pad)
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]  # (N, C, OH, OW, KH, KW)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols, dtype=DTYPE), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    pad: tuple[int, int],
) -> np.ndarray:
    """Fold patch gradients back into an NCHW input gradient.

    Inverse (adjoint) of :func:`im2col`: overlapping patch contributions
    are summed with ``np.add.at``.
    """
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    oh, ow = conv_output_hw((h, w), kernel, stride, pad)
    dx_pad = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=DTYPE)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Scatter each kernel offset in one vectorized slice-add.
    for i in range(kh):
        for j in range(kw):
            dx_pad[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols6[
                :, :, :, :, i, j
            ]
    if ph or pw:
        return dx_pad[:, :, ph : ph + h, pw : pw + w]
    return dx_pad


class Conv2D(Layer):
    """2-D convolution layer (NCHW), ``y = W * x + b``.

    Parameters mirror the usual DL-framework conventions. STONE uses
    ``Conv2D(1, 64, (2, 2))`` and ``Conv2D(64, 128, (2, 2))`` with stride 1
    and valid padding (Sec. IV.D of the paper).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int] = (2, 2),
        *,
        stride: int | tuple[int, int] = 1,
        padding: PaddingLike = "valid",
        use_bias: bool = True,
        kernel_init: InitializerLike = "he_normal",
        bias_init: InitializerLike = "zeros",
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = (
            (int(kernel_size), int(kernel_size))
            if isinstance(kernel_size, int)
            else (int(kernel_size[0]), int(kernel_size[1]))
        )
        self.stride = (
            (int(stride), int(stride))
            if isinstance(stride, int)
            else (int(stride[0]), int(stride[1]))
        )
        if min(self.kernel_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("kernel and stride must be positive")
        self.padding_spec = padding
        self.pad = resolve_padding(padding, self.kernel_size, self.stride)
        self.use_bias = bool(use_bias)
        self._kernel_init = kernel_init
        rng = rng or np.random.default_rng()
        kh, kw = self.kernel_size
        self.params["W"] = get_initializer(kernel_init)(
            (self.out_channels, self.in_channels, kh, kw), rng
        )
        if self.use_bias:
            self.params["b"] = get_initializer(bias_init)((self.out_channels,), rng)

    def forward(
        self,
        x: np.ndarray,
        *,
        training: bool = False,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, Cache]:
        del training, rng
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        x = np.ascontiguousarray(x, dtype=DTYPE)
        n = x.shape[0]
        cols, (oh, ow) = im2col(x, self.kernel_size, self.stride, self.pad)
        w_mat = self.params["W"].reshape(self.out_channels, -1)  # (O, C*KH*KW)
        out = cols @ w_mat.T  # (N*OH*OW, O)
        if self.use_bias:
            out = out + self.params["b"]
        y = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        return np.ascontiguousarray(y), (cols, x.shape, (oh, ow))

    def backward(
        self, dy: np.ndarray, cache: Cache
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        cols, x_shape, (oh, ow) = cache
        n = x_shape[0]
        dy_mat = (
            np.ascontiguousarray(dy, dtype=DTYPE)
            .transpose(0, 2, 3, 1)
            .reshape(n * oh * ow, self.out_channels)
        )
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        grads = {"W": (dy_mat.T @ cols).reshape(self.params["W"].shape)}
        if self.use_bias:
            grads["b"] = dy_mat.sum(axis=0)
        dcols = dy_mat @ w_mat  # (N*OH*OW, C*KH*KW)
        dx = col2im(dcols, x_shape, self.kernel_size, self.stride, self.pad)
        return dx, grads

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (C={self.in_channels}, H, W), got {input_shape}"
            )
        oh, ow = conv_output_hw(
            (input_shape[1], input_shape[2]), self.kernel_size, self.stride, self.pad
        )
        return (self.out_channels, oh, ow)

    def get_config(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": list(self.kernel_size),
            "stride": list(self.stride),
            "padding": self.padding_spec
            if isinstance(self.padding_spec, (str, int))
            else list(self.padding_spec),
            "use_bias": self.use_bias,
        }
