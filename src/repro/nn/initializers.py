"""Weight initialization schemes for the NumPy neural-network substrate.

Every initializer is a plain function ``(shape, rng) -> np.ndarray`` so that
layers can accept either a name (resolved through :func:`get_initializer`)
or a callable. All arrays are float32: the whole ``repro.nn`` stack runs in
single precision for speed, matching common DL-framework defaults.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

InitializerFn = Callable[[Sequence[int], np.random.Generator], np.ndarray]
InitializerLike = str | InitializerFn

DTYPE = np.float32


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels.

    Dense kernels are ``(in, out)``. Conv kernels are
    ``(out_channels, in_channels, kh, kw)``; the receptive field size
    multiplies into both fans, as in Glorot & Bengio (2010).
    """
    if len(shape) < 1:
        raise ValueError(f"cannot infer fans from shape {shape!r}")
    if len(shape) == 1:
        return int(shape[0]), int(shape[0])
    if len(shape) == 2:
        return int(shape[0]), int(shape[1])
    receptive = int(np.prod(shape[2:]))
    fan_in = int(shape[1]) * receptive
    fan_out = int(shape[0]) * receptive
    return fan_in, fan_out


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (standard for biases)."""
    del rng
    return np.zeros(shape, dtype=DTYPE)


def ones(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-one initialization (standard for batch-norm scale)."""
    del rng
    return np.ones(shape, dtype=DTYPE)


def normal(
    shape: Sequence[int],
    rng: np.random.Generator,
    *,
    std: float = 0.01,
) -> np.ndarray:
    """Zero-mean Gaussian initialization with standard deviation ``std``."""
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


def uniform(
    shape: Sequence[int],
    rng: np.random.Generator,
    *,
    limit: float = 0.05,
) -> np.ndarray:
    """Uniform initialization on ``[-limit, limit]``."""
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: ``U(-sqrt(6/(fan_in+fan_out)), +...)``.

    The classic choice for tanh/sigmoid networks and embedding layers.
    """
    fan_in, fan_out = _fan_in_out(shape)
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


def glorot_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal: ``N(0, 2/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan_in_out(shape)
    std = float(np.sqrt(2.0 / (fan_in + fan_out)))
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He uniform: ``U(-sqrt(6/fan_in), +sqrt(6/fan_in))``; for ReLU nets."""
    fan_in, _ = _fan_in_out(shape)
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal: ``N(0, 2/fan_in)``; the standard ReLU initialization."""
    fan_in, _ = _fan_in_out(shape)
    std = float(np.sqrt(2.0 / fan_in))
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


def lecun_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """LeCun normal: ``N(0, 1/fan_in)``; pairs with SELU activations."""
    fan_in, _ = _fan_in_out(shape)
    std = float(np.sqrt(1.0 / fan_in))
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


_REGISTRY: dict[str, InitializerFn] = {
    "zeros": zeros,
    "ones": ones,
    "normal": normal,
    "uniform": uniform,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "xavier_uniform": glorot_uniform,
    "xavier_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "lecun_normal": lecun_normal,
}


def get_initializer(spec: InitializerLike) -> InitializerFn:
    """Resolve an initializer by name or pass a callable through.

    Raises ``KeyError`` with the list of known names for typos, which is a
    friendlier failure mode than a silent fallback.
    """
    if callable(spec):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown initializer {spec!r}; known: {known}") from None


def available_initializers() -> list[str]:
    """Names accepted by :func:`get_initializer`."""
    return sorted(_REGISTRY)
