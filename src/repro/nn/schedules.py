"""Learning-rate schedules.

A schedule is a callable ``(epoch: int) -> float`` returning the learning
rate to use for that (0-indexed) epoch. The trainer assigns the returned
value to ``optimizer.lr`` at the start of each epoch.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

Schedule = Callable[[int], float]


def constant(lr: float) -> Schedule:
    """Fixed learning rate."""
    if lr <= 0:
        raise ValueError("lr must be positive")
    return lambda epoch: lr


def step_decay(lr: float, *, drop: float = 0.5, every: int = 10) -> Schedule:
    """Multiply the rate by ``drop`` every ``every`` epochs."""
    if lr <= 0 or not 0 < drop <= 1 or every <= 0:
        raise ValueError("need lr > 0, 0 < drop <= 1, every > 0")

    def schedule(epoch: int) -> float:
        return lr * drop ** (epoch // every)

    return schedule


def exponential_decay(lr: float, *, gamma: float = 0.95) -> Schedule:
    """``lr * gamma**epoch``."""
    if lr <= 0 or not 0 < gamma <= 1:
        raise ValueError("need lr > 0 and 0 < gamma <= 1")
    return lambda epoch: lr * gamma**epoch


def cosine_decay(lr: float, *, total_epochs: int, min_lr: float = 0.0) -> Schedule:
    """Cosine annealing from ``lr`` down to ``min_lr`` over ``total_epochs``."""
    if lr <= 0 or total_epochs <= 0 or min_lr < 0 or min_lr > lr:
        raise ValueError("invalid cosine schedule parameters")

    def schedule(epoch: int) -> float:
        t = min(epoch, total_epochs) / total_epochs
        return min_lr + 0.5 * (lr - min_lr) * (1.0 + math.cos(math.pi * t))

    return schedule


def warmup(base: Schedule, *, warmup_epochs: int, start_factor: float = 0.1) -> Schedule:
    """Linearly ramp from ``start_factor * base(0)`` to ``base`` over warmup."""
    if warmup_epochs < 0 or not 0 < start_factor <= 1:
        raise ValueError("invalid warmup parameters")

    def schedule(epoch: int) -> float:
        if warmup_epochs == 0 or epoch >= warmup_epochs:
            return base(epoch)
        frac = epoch / warmup_epochs
        target = base(warmup_epochs)
        return target * (start_factor + (1.0 - start_factor) * frac)

    return schedule


def piecewise(boundaries: Sequence[int], values: Sequence[float]) -> Schedule:
    """Piecewise-constant rates: ``values[i]`` until ``boundaries[i]``.

    ``len(values) == len(boundaries) + 1``; the final value applies forever.
    """
    if len(values) != len(boundaries) + 1:
        raise ValueError("need len(values) == len(boundaries) + 1")
    if any(v <= 0 for v in values):
        raise ValueError("rates must be positive")
    if list(boundaries) != sorted(boundaries):
        raise ValueError("boundaries must be sorted")

    def schedule(epoch: int) -> float:
        for b, v in zip(boundaries, values):
            if epoch < b:
                return v
        return values[-1]

    return schedule
