"""Finite-difference gradient checking utilities.

These are used heavily by the test suite to validate every layer's
``backward`` against a central-difference approximation of ``forward``.
Checks run in float64 to avoid drowning the comparison in float32 noise.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .layers.base import Layer


def numerical_gradient(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    *,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` at ``x``.

    O(n) evaluations of ``f`` per element — fine for the small tensors used
    in tests, never for training.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Globally normalized gradient error.

    ``max|a - b| / max(max|a|, max|b|, 1e-8)``: the largest absolute
    deviation relative to the gradient's overall scale. The elementwise
    form ``|a-b|/(|a|+|b|)`` explodes on near-zero entries, which under a
    float32 forward pass is pure measurement noise, not a bug signal.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = max(float(np.abs(a).max(initial=0.0)), float(np.abs(b).max(initial=0.0)), 1e-8)
    return float(np.abs(a - b).max(initial=0.0) / scale)


def check_layer_input_grad(
    layer: Layer,
    x: np.ndarray,
    *,
    eps: float = 1e-4,
    seed: int = 0,
) -> float:
    """Relative error of the layer's input gradient on a random projection.

    A random cotangent ``dy`` turns the vector-valued layer into the scalar
    ``sum(dy * forward(x))`` whose analytic input gradient is exactly what
    ``backward(dy, cache)`` returns.
    """
    rng = np.random.default_rng(seed)
    y, _ = layer.forward(np.asarray(x, dtype=np.float32), training=False)
    dy = rng.normal(size=y.shape).astype(np.float32)

    def objective(x64: np.ndarray) -> float:
        out, _ = layer.forward(x64.astype(np.float32), training=False)
        return float((out.astype(np.float64) * dy).sum())

    num = numerical_gradient(objective, np.asarray(x, dtype=np.float64), eps=eps)
    _, cache = layer.forward(np.asarray(x, dtype=np.float32), training=False)
    analytic, _ = layer.backward(dy, cache)
    return relative_error(num, analytic)


def check_layer_param_grads(
    layer: Layer,
    x: np.ndarray,
    *,
    eps: float = 1e-4,
    seed: int = 0,
) -> dict[str, float]:
    """Relative errors of each parameter gradient (same projection trick)."""
    rng = np.random.default_rng(seed)
    x32 = np.asarray(x, dtype=np.float32)
    y, cache = layer.forward(x32, training=False)
    dy = rng.normal(size=y.shape).astype(np.float32)
    _, analytic = layer.backward(dy, cache)
    errors: dict[str, float] = {}
    for pname, param in layer.params.items():

        def objective(p64: np.ndarray, _pname: str = pname) -> float:
            saved = layer.params[_pname].copy()
            layer.params[_pname][...] = p64.astype(np.float32)
            out, _ = layer.forward(x32, training=False)
            layer.params[_pname][...] = saved
            return float((out.astype(np.float64) * dy).sum())

        num = numerical_gradient(objective, param.astype(np.float64), eps=eps)
        errors[pname] = relative_error(num, analytic[pname])
    return errors


def check_loss_grad(
    loss_value: Callable[[np.ndarray], float],
    loss_grad: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    *,
    eps: float = 1e-4,
) -> float:
    """Relative error of a scalar loss gradient at ``x``."""
    num = numerical_gradient(
        lambda x64: float(loss_value(x64.astype(np.float32))),
        np.asarray(x, dtype=np.float64),
        eps=eps,
    )
    analytic = loss_grad(np.asarray(x, dtype=np.float32))
    return relative_error(num, analytic)


def assert_close_gradients(
    error: float, *, tol: float = 2e-3, context: str | None = None
) -> None:
    """Raise ``AssertionError`` when a gradcheck error exceeds ``tol``."""
    if error > tol:
        prefix = f"{context}: " if context else ""
        raise AssertionError(f"{prefix}gradient check failed: error={error:.3e} > {tol}")
