"""Refit a slot's model from its base suite plus buffered observations.

A refit builds a *merged* training set — the slot's offline training
fingerprints row-concatenated with the live labeled observations — and
pushes it through the ordinary ``ModelStore.get_or_fit`` path.  Because
the store's ``train_fingerprint`` hashes the training arrays, the
merged content automatically yields a **new** content-addressed
:class:`~repro.serve.store.ModelKey`: the refit artifact lands beside
the old version (same directory, different digest), spec-embedded like
every other artifact, and the old model keeps serving until the swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..datasets.fingerprint import FingerprintDataset, LongitudinalSuite
from ..geometry.floorplan import Floorplan
from ..geometry.point import pairwise_distances
from ..serve.store import ModelStore, StoreEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fleet.registry import FleetSlot


def nearest_rp_indices(floorplan: Floorplan, xy: np.ndarray) -> np.ndarray:
    """Nearest reference-point index for each observed ``(x, y)``.

    Live observations carry free coordinates; the training schema wants
    a reference-point label per row.  Snapping to the nearest RP keeps
    the merged dataset valid without inventing new grid points.
    """

    xy = np.asarray(xy, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
    distances = pairwise_distances(xy, floorplan.reference_points)
    return np.argmin(distances, axis=1).astype(np.int64)


def build_refit_suite(
    base: LongitudinalSuite,
    obs_rssi: np.ndarray,
    obs_xy: np.ndarray,
    *,
    content_hash: str | None = None,
) -> LongitudinalSuite:
    """The slot's suite with observations merged into the training set.

    Observed rows keep their *measured* coordinates as training labels
    (``rp_indices`` snap to the nearest reference point), are stamped
    one hour past the last offline survey and get a fresh epoch label —
    provenance stays visible in the merged arrays and in
    ``metadata["live"]``.
    """

    obs_rssi = np.asarray(obs_rssi, dtype=np.float64)
    obs_xy = np.asarray(obs_xy, dtype=np.float64)
    if obs_rssi.ndim != 2 or obs_rssi.shape[1] != base.n_aps:
        raise ValueError(
            f"observations must be (n, {base.n_aps}) for suite {base.name!r}, "
            f"got shape {obs_rssi.shape}"
        )
    if obs_rssi.shape[0] == 0:
        raise ValueError("refit needs at least one buffered observation")
    n = obs_rssi.shape[0]
    observed = FingerprintDataset(
        rssi=obs_rssi,
        rp_indices=nearest_rp_indices(base.floorplan, obs_xy),
        locations=obs_xy,
        times_hours=np.full(n, float(base.train.times_hours.max()) + 1.0),
        epochs=np.full(n, int(base.train.epochs.max()) + 1, dtype=np.int64),
    )
    merged = base.train.merge(observed)
    metadata = dict(base.metadata)
    metadata["live"] = {
        "n_observations": int(n),
        "base_rows": int(base.train.rssi.shape[0]),
        **({"content_hash": content_hash} if content_hash else {}),
    }
    return LongitudinalSuite(
        name=base.name,
        floorplan=base.floorplan,
        train=merged,
        test_epochs=base.test_epochs,
        epoch_labels=base.epoch_labels,
        metadata=metadata,
    )


@dataclass(frozen=True)
class RefitResult:
    """Outcome of one slot refit (pre-swap)."""

    entry: StoreEntry
    suite: LongitudinalSuite
    old_digest: str
    n_observations: int

    @property
    def new_digest(self) -> str:
        return self.entry.key.digest

    def describe(self) -> dict:
        return {
            "old_digest": self.old_digest[:16],
            "new_digest": self.new_digest[:16],
            "n_observations": self.n_observations,
            "source": self.entry.source,
            "fit_seconds": round(self.entry.fit_seconds, 3),
        }


def refit_slot(
    store: ModelStore,
    slot: "FleetSlot",
    obs_rssi: np.ndarray,
    obs_xy: np.ndarray,
    *,
    content_hash: str | None = None,
) -> RefitResult:
    """Fit a new model version for ``slot`` from base + observations.

    Runs synchronously (callers run it off the event loop); every knob
    of the new fit — framework, seed, fast, index, backend — is carried
    over from the slot's current binding so the only thing that changes
    is the training content.
    """

    suite = build_refit_suite(slot.suite, obs_rssi, obs_xy, content_hash=content_hash)
    key = slot.entry.key
    entry = store.get_or_fit(
        key.framework,
        suite,
        seed=key.seed,
        fast=key.fast,
        index=slot.index,
        backend=key.backend,
    )
    return RefitResult(
        entry=entry,
        suite=suite,
        old_digest=key.digest,
        n_observations=int(np.asarray(obs_rssi).shape[0]),
    )
