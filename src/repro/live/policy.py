"""Drift detection policy for live slots.

The drift metric is the same one the longitudinal eval uses: mean
localization error in meters of the slot's *current* model replayed
over the buffered labeled observations.  The policy is a frozen value
object so it can join ``FleetSpec`` fingerprints (only when
non-default — the all-default policy is inert and leaves serving
byte-for-byte unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.base import BatchedLocalizer
from ..eval.metrics import localization_errors


@dataclass(frozen=True)
class DriftPolicy:
    """When does a slot's buffered evidence justify a refit?

    Attributes
    ----------
    drift_threshold_m:
        Refit when the replayed mean localization error exceeds this
        many meters (requires at least ``min_scans`` buffered).
        ``None`` disables the drift trigger.
    min_scans:
        Minimum buffered scans before drift/age triggers may fire; a
        handful of observations is too noisy to refit on.
    max_scans:
        Refit unconditionally once this many scans are buffered
        (the buffer-full trigger).
    max_age_s:
        Refit when the oldest buffered scan is at least this old and
        ``min_scans`` are buffered.  ``None`` disables the age trigger.
    """

    drift_threshold_m: float | None = None
    min_scans: int = 32
    max_scans: int = 4096
    max_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.drift_threshold_m is not None and self.drift_threshold_m <= 0:
            raise ValueError(f"drift_threshold_m must be positive, got {self.drift_threshold_m}")
        if self.min_scans <= 0:
            raise ValueError(f"min_scans must be positive, got {self.min_scans}")
        if self.max_scans < self.min_scans:
            raise ValueError(
                f"max_scans ({self.max_scans}) must be >= min_scans ({self.min_scans})"
            )
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {self.max_age_s}")

    @property
    def is_default(self) -> bool:
        """True when every knob is at its default (policy is inert)."""

        return self == DriftPolicy()

    def decision(
        self, n_rows: int, age_s: float, score: float | None
    ) -> tuple[bool, str | None]:
        """``(should_refit, reason)`` for the buffered state.

        ``reason`` is one of ``"drift"``, ``"buffer_full"``, ``"age"``
        or ``None``.
        """

        if n_rows >= self.max_scans:
            return True, "buffer_full"
        if n_rows < self.min_scans:
            return False, None
        if (
            self.drift_threshold_m is not None
            and score is not None
            and score > self.drift_threshold_m
        ):
            return True, "drift"
        if self.max_age_s is not None and age_s >= self.max_age_s:
            return True, "age"
        return False, None

    def to_dict(self) -> dict:
        return {
            "drift_threshold_m": self.drift_threshold_m,
            "min_scans": self.min_scans,
            "max_scans": self.max_scans,
            "max_age_s": self.max_age_s,
        }


def drift_score(localizer, rssi: np.ndarray, xy: np.ndarray) -> float:
    """Mean localization error (m) of ``localizer`` on labeled scans.

    This is the longitudinal-eval metric applied to the live buffer:
    the slot's serving model replays the buffered observations and the
    mean error against their ground-truth coordinates is the drift
    score.
    """

    rssi = np.asarray(rssi, dtype=np.float64)
    xy = np.asarray(xy, dtype=np.float64)
    if rssi.shape[0] == 0:
        return 0.0
    if isinstance(localizer, BatchedLocalizer):
        predicted = localizer.predict_batched(rssi)
    else:
        predicted = np.concatenate([localizer.predict(row[None, :]) for row in rssi], axis=0)
    return float(np.mean(localization_errors(predicted, xy)))
