"""Live fleets: streaming observation ingest, drift detection, hot-swap.

The longitudinal suites model month-over-month radio-map drift, but the
serving stack fit its models *offline* until now: a fleet was stood up
once and froze. :mod:`repro.live` closes that loop — the subsystem that
keeps a deployed fleet accurate under the drift the paper is about:

* :class:`ObservationBuffer` — per-slot, size/age-bounded, crash-safe
  append buffer of labeled scans (``POST /observe`` lands here).
* :class:`DriftPolicy` — replays buffered scans through the slot's
  current model, scores them with the longitudinal-eval metric
  (mean localization error in meters) and decides when to refit.
* :func:`build_refit_suite` / :func:`refit_slot` — trains a new model
  version from the base suite plus the buffered observations; the
  merged training content yields a new content-addressed
  :class:`~repro.serve.store.ModelKey`, so the refit artifact lands
  *beside* the old one, spec-embedded like any other.
* :class:`LiveManager` — ties it together behind the fleet dispatcher:
  ingest, drift scoring off the event loop, background refit and the
  atomic hot-swap (old model serves every in-flight and incoming
  request until the new one is warm; unchanged slots stay
  bit-identical throughout).
"""

from .buffer import ObservationBuffer
from .manager import LiveManager, SlotLiveState
from .policy import DriftPolicy
from .refit import RefitResult, build_refit_suite, nearest_rp_indices, refit_slot

__all__ = [
    "DriftPolicy",
    "LiveManager",
    "ObservationBuffer",
    "RefitResult",
    "SlotLiveState",
    "build_refit_suite",
    "nearest_rp_indices",
    "refit_slot",
]
