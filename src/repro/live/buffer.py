"""Crash-safe per-slot append buffer for labeled live observations.

Observations arrive through ``POST /observe`` and land here before the
drift policy decides whether the slot needs a refit.  The buffer is a
directory of JSONL segments: one JSON object per observation, appended
with flush+fsync so a crash mid-write loses at most the torn final
line.  Segments rotate at a fixed row count so age-trimming and the
size bound are O(segment) deletes, never rewrites.

Validation happens *before* any byte is written: a malformed or
mislabeled observation raises ``ValueError`` and the on-disk state is
untouched (the "never poison a buffer" chaos contract).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path

import numpy as np

from ..radio.access_point import NO_SIGNAL_DBM

_SEGMENT_RE = re.compile(r"^obs-(\d{6})\.jsonl$")


def slot_dirname(label: str) -> str:
    """Filesystem-safe directory name for a slot label like ``"HQ/f1"``."""

    return label.replace("/", "__")


class ObservationBuffer:
    """Size/age-bounded crash-safe buffer of ``(rssi, xy)`` observations.

    Parameters
    ----------
    root_dir:
        Parent directory; the buffer lives in ``root_dir/<slot_dirname>``.
    label:
        Slot label (``"HQ/f1"``) — used for the directory name and errors.
    n_aps:
        Width of the slot's AP namespace; every appended scan must match.
    max_rows:
        Hard bound on buffered rows; oldest whole segments are deleted
        once the total would exceed it.
    segment_rows:
        Rotation threshold per JSONL segment.
    """

    def __init__(
        self,
        root_dir: str | Path,
        label: str,
        n_aps: int,
        *,
        max_rows: int = 8192,
        segment_rows: int = 512,
    ) -> None:
        if n_aps <= 0:
            raise ValueError(f"n_aps must be positive, got {n_aps}")
        if max_rows <= 0:
            raise ValueError(f"max_rows must be positive, got {max_rows}")
        if segment_rows <= 0:
            raise ValueError(f"segment_rows must be positive, got {segment_rows}")
        self.label = label
        self.n_aps = int(n_aps)
        self.max_rows = int(max_rows)
        self.segment_rows = int(segment_rows)
        self.dir = Path(root_dir) / slot_dirname(label)
        self.dir.mkdir(parents=True, exist_ok=True)
        # In-memory mirror of the on-disk rows, per segment index.
        self._segments: dict[int, list[dict]] = {}
        self._recover()

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Rescan the directory, tolerating a torn final line per segment."""

        for path in sorted(self.dir.iterdir()):
            match = _SEGMENT_RE.match(path.name)
            if match is None:
                continue
            seg = int(match.group(1))
            rows: list[dict] = []
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        # A crash mid-append can tear the *final* line of
                        # the newest segment; everything before it is
                        # intact because each append is flushed whole.
                        break
                    if self._row_ok(row):
                        rows.append(row)
                    else:
                        break
            if rows:
                self._segments[seg] = rows
            elif path.exists():
                path.unlink()

    def _row_ok(self, row: object) -> bool:
        return (
            isinstance(row, dict)
            and isinstance(row.get("ts"), (int, float))
            and isinstance(row.get("rssi"), list)
            and len(row["rssi"]) == self.n_aps
            and isinstance(row.get("xy"), list)
            and len(row["xy"]) == 2
        )

    # -- append path ---------------------------------------------------

    def append(self, rssi: np.ndarray, xy: np.ndarray, *, now: float | None = None) -> int:
        """Validate and append observation rows; returns rows appended.

        ``rssi`` is ``(n, n_aps)`` in the slot's AP namespace, ``xy`` is
        ``(n, 2)`` ground-truth coordinates.  Raises ``ValueError``
        before touching disk if anything is off.
        """

        rssi = np.asarray(rssi, dtype=np.float64)
        xy = np.asarray(xy, dtype=np.float64)
        if rssi.ndim != 2 or rssi.shape[1] != self.n_aps:
            raise ValueError(
                f"observation rssi must be (n, {self.n_aps}) for slot "
                f"{self.label!r}, got shape {rssi.shape}"
            )
        if xy.ndim != 2 or xy.shape != (rssi.shape[0], 2):
            raise ValueError(
                f"observation locations must be ({rssi.shape[0]}, 2), got shape {xy.shape}"
            )
        if rssi.shape[0] == 0:
            raise ValueError("observation must contain at least one scan")
        if not np.isfinite(rssi).all() or not np.isfinite(xy).all():
            raise ValueError("observation values must be finite")
        if rssi.min() < NO_SIGNAL_DBM or rssi.max() > 0.0:
            raise ValueError(f"observation RSSI must lie in [{NO_SIGNAL_DBM}, 0] dBm")

        ts = time.time() if now is None else float(now)
        # Assign each incoming row to a segment first so every segment
        # file is written (and fsynced) exactly once per append.
        seg = self._tail_segment()
        batches: dict[int, list[dict]] = {}
        fill = len(self._segments.get(seg, []))
        for i in range(rssi.shape[0]):
            if fill >= self.segment_rows:
                seg += 1
                fill = 0
            batches.setdefault(seg, []).append(
                {"ts": ts, "rssi": rssi[i].tolist(), "xy": xy[i].tolist()}
            )
            fill += 1
        for seg_idx in sorted(batches):
            new_rows = batches[seg_idx]
            with open(self._segment_path(seg_idx), "a", encoding="utf-8") as fh:
                for row in new_rows:
                    fh.write(json.dumps(row) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._segments.setdefault(seg_idx, []).extend(new_rows)
        self._trim()
        return int(rssi.shape[0])

    def _tail_segment(self) -> int:
        if not self._segments:
            return 0
        tail = max(self._segments)
        if len(self._segments[tail]) >= self.segment_rows:
            return tail + 1
        return tail

    def _segment_path(self, seg: int) -> Path:
        return self.dir / f"obs-{seg:06d}.jsonl"

    def _trim(self) -> None:
        """Drop oldest whole segments while the bound is exceeded."""

        while self.n_rows > self.max_rows and len(self._segments) > 1:
            oldest = min(self._segments)
            self._segments.pop(oldest)
            path = self._segment_path(oldest)
            if path.exists():
                path.unlink()

    # -- read path -----------------------------------------------------

    @property
    def n_rows(self) -> int:
        return sum(len(rows) for rows in self._segments.values())

    def age_s(self, *, now: float | None = None) -> float:
        """Seconds since the oldest buffered observation (0.0 if empty)."""

        if not self._segments:
            return 0.0
        oldest = min(self._segments)
        first = self._segments[oldest][0]
        ref = time.time() if now is None else float(now)
        return max(0.0, ref - float(first["ts"]))

    def rows(self) -> tuple[np.ndarray, np.ndarray]:
        """All buffered observations as ``(rssi (n, n_aps), xy (n, 2))``."""

        if not self._segments:
            empty = np.empty((0, self.n_aps), dtype=np.float64)
            return empty, np.empty((0, 2), dtype=np.float64)
        rssi = []
        xy = []
        for seg in sorted(self._segments):
            for row in self._segments[seg]:
                rssi.append(row["rssi"])
                xy.append(row["xy"])
        return (
            np.asarray(rssi, dtype=np.float64),
            np.asarray(xy, dtype=np.float64),
        )

    @property
    def content_hash(self) -> str:
        """SHA-256 over the buffered rows — joins the refit identity."""

        digest = hashlib.sha256()
        for seg in sorted(self._segments):
            for row in self._segments[seg]:
                digest.update(
                    json.dumps({"rssi": row["rssi"], "xy": row["xy"]}, sort_keys=True).encode()
                )
        return digest.hexdigest()

    def clear(self) -> None:
        """Drop all buffered observations (after a successful swap)."""

        for seg in list(self._segments):
            path = self._segment_path(seg)
            if path.exists():
                path.unlink()
        self._segments.clear()

    def clear_rows(self, n: int) -> None:
        """Drop the oldest ``n`` rows (the ones a refit consumed).

        Observations that arrived *during* the refit stay buffered as
        evidence for the next cycle. Whole segments are deleted; a
        partially-consumed segment is rewritten atomically.
        """

        if n <= 0:
            return
        remaining = n
        for seg in sorted(self._segments):
            rows = self._segments[seg]
            if remaining >= len(rows):
                remaining -= len(rows)
                self._segments.pop(seg)
                path = self._segment_path(seg)
                if path.exists():
                    path.unlink()
                if remaining == 0:
                    break
            else:
                kept = rows[remaining:]
                path = self._segment_path(seg)
                tmp = path.with_suffix(".tmp")
                with open(tmp, "w", encoding="utf-8") as fh:
                    for row in kept:
                        fh.write(json.dumps(row) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                tmp.replace(path)
                self._segments[seg] = kept
                break

    def describe(self) -> dict:
        return {
            "label": self.label,
            "dir": str(self.dir),
            "n_rows": self.n_rows,
            "n_segments": len(self._segments),
            "n_aps": self.n_aps,
            "max_rows": self.max_rows,
            "segment_rows": self.segment_rows,
        }
