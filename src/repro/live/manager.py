"""Live-update orchestration: ingest → drift → refit → hot-swap.

One :class:`LiveManager` sits beside the fleet dispatcher on the
serving event loop.  ``POST /observe`` lands in :meth:`observe`:
validated scans append to the slot's crash-safe buffer, and a guarded
background task replays the buffer through the slot's current model,
scores the drift, and — when the :class:`~repro.live.policy.DriftPolicy`
says so — refits off the loop and atomically hot-swaps the slot.
Serving never blocks on any of it: drift scoring and refitting run in
executors, and the swap itself is the dispatcher's atomic flip (old
model serves everything admitted before the flip; unchanged slots are
untouched).
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs.metrics import MetricsRegistry
from .buffer import ObservationBuffer
from .policy import DriftPolicy, drift_score
from .refit import refit_slot


@dataclass
class SlotLiveState:
    """Per-slot live bookkeeping surfaced on ``/fleet`` and ``/metrics``."""

    buffer: ObservationBuffer
    observations: int = 0
    drift_score_m: float | None = None
    refits: int = 0
    swaps: int = 0
    last_reason: str | None = None
    refit_inflight: bool = False
    errors: int = 0

    def describe(self) -> dict:
        return {
            "buffered": self.buffer.n_rows,
            "observations": self.observations,
            "drift_score_m": (
                round(self.drift_score_m, 3) if self.drift_score_m is not None else None
            ),
            "refits": self.refits,
            "swaps": self.swaps,
            "last_reason": self.last_reason,
            "refit_inflight": self.refit_inflight,
            "errors": self.errors,
        }


class LiveManager:
    """Streaming observation ingest + drift-triggered refit for a fleet.

    Parameters
    ----------
    dispatcher:
        The :class:`~repro.fleet.frontend.FleetDispatcher` serving the
        fleet; swaps go through its executor-independent
        ``swap_slot``.
    policy:
        The :class:`DriftPolicy`.  The all-default policy only refits
        on a full buffer, so a fleet that never sees ``/observe``
        traffic serves exactly as before.
    buffer_dir:
        Where observation segments persist.  Defaults to
        ``<model_dir>/live`` when the fleet's store is disk-backed
        (buffers then survive restarts beside the artifacts they will
        produce), else a self-cleaning temp directory.
    max_buffer_rows / segment_rows:
        Forwarded to each slot's :class:`ObservationBuffer`.
    """

    def __init__(
        self,
        dispatcher,
        *,
        policy: DriftPolicy | None = None,
        buffer_dir: str | Path | None = None,
        max_buffer_rows: int = 8192,
        segment_rows: int = 512,
    ) -> None:
        self.dispatcher = dispatcher
        self.registry = dispatcher.registry
        self.policy = policy if policy is not None else DriftPolicy()
        self._own_tmpdir: str | None = None
        if buffer_dir is not None:
            self.buffer_dir = Path(buffer_dir)
        elif self.registry.store.model_dir is not None:
            self.buffer_dir = self.registry.store.model_dir / "live"
        else:
            self._own_tmpdir = tempfile.mkdtemp(prefix="repro-live-")
            self.buffer_dir = Path(self._own_tmpdir)
        self.max_buffer_rows = int(max_buffer_rows)
        self.segment_rows = int(segment_rows)
        self._states: dict[str, SlotLiveState] = {}
        self._refit_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-live-refit"
        )
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        # Bound metric families (bind_metrics); None = not recording.
        self._m_observations = None
        self._m_buffered = None
        self._m_drift = None
        self._m_refits = None
        self._m_swaps = None
        self._m_swap_seconds = None

    # -- metrics -----------------------------------------------------------

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        self._m_observations = registry.counter(
            "repro_live_observations_total",
            "Labeled observation rows ingested, by slot.",
            ("slot",),
        )
        self._m_buffered = registry.gauge(
            "repro_live_buffered_scans",
            "Observation rows currently buffered, by slot.",
            ("slot",),
        )
        self._m_drift = registry.gauge(
            "repro_live_drift_score_m",
            "Latest drift score (mean error, meters) of the buffered "
            "observations under the slot's serving model.",
            ("slot",),
        )
        self._m_refits = registry.counter(
            "repro_live_refits_total",
            "Background refits completed, by slot.",
            ("slot",),
        )
        self._m_swaps = registry.counter(
            "repro_live_swaps_total",
            "Model hot-swaps completed, by slot.",
            ("slot",),
        )
        self._m_swap_seconds = registry.histogram(
            "repro_live_swap_seconds",
            "Hot-swap latency (executor flip through registry rebind).",
        )

    # -- state -------------------------------------------------------------

    def state_for(self, building: str, floor: int) -> SlotLiveState:
        """This slot's live state, creating its buffer lazily."""
        slot = self.registry.slot(building, floor)
        label = slot.slot.label
        state = self._states.get(label)
        if state is None:
            deployment = self.registry.building(building)
            state = SlotLiveState(
                buffer=ObservationBuffer(
                    self.buffer_dir,
                    label,
                    deployment.n_aps,
                    max_rows=self.max_buffer_rows,
                    segment_rows=self.segment_rows,
                )
            )
            self._states[label] = state
        return state

    # -- ingest ------------------------------------------------------------

    async def observe(
        self,
        scans: np.ndarray,
        locations: np.ndarray,
        *,
        building: str,
        floor: int,
    ) -> dict:
        """Ingest labeled fleet-wide scans for one slot.

        ``scans`` is ``(n, fleet_aps)`` — the same shape ``/localize``
        takes — and is sliced to the building's AP block before it hits
        the slot's buffer (the slot's AP namespace is what's
        validated).  ``locations`` is the ``(n, 2)`` ground truth.
        Raises ``KeyError`` for unknown building/floor and
        ``ValueError`` for malformed payloads, both *before* any byte
        is buffered.
        """
        if self._closed:
            raise RuntimeError("live manager is closed")
        slot = self.registry.slot(building, floor)
        deployment = self.registry.building(building)
        scans = np.asarray(scans, dtype=np.float64)
        if scans.ndim != 2 or scans.shape[1] != self.registry.n_aps:
            raise ValueError(
                f"observation scans must be (n, {self.registry.n_aps}) "
                f"fleet-wide rows, got shape {scans.shape}"
            )
        block = deployment.block(scans)
        state = self.state_for(building, floor)
        loop = asyncio.get_running_loop()
        # The fsync'd append runs off the loop; validation inside
        # append() raises before any write.
        appended = await loop.run_in_executor(
            None, state.buffer.append, block, np.asarray(locations, dtype=np.float64)
        )
        state.observations += appended
        label = slot.slot.label
        if self._m_observations is not None:
            self._m_observations.labels(label).inc(appended)
            self._m_buffered.labels(label).set(state.buffer.n_rows)
        self._spawn_maybe_refit(building, floor)
        return {
            "slot": label,
            "version": slot.version,
            "appended": appended,
            "buffered": state.buffer.n_rows,
            "drift_score_m": state.drift_score_m,
        }

    def _spawn_maybe_refit(self, building: str, floor: int) -> None:
        task = asyncio.get_running_loop().create_task(
            self._maybe_refit(building, floor)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- drift / refit / swap ----------------------------------------------

    async def _maybe_refit(self, building: str, floor: int) -> dict | None:
        """Score drift and refit+swap if the policy fires.  Guarded."""
        state = self.state_for(building, floor)
        if state.refit_inflight:
            return None
        slot = self.registry.slot(building, floor)
        label = slot.slot.label
        loop = asyncio.get_running_loop()
        n_rows = state.buffer.n_rows
        score = state.drift_score_m
        if n_rows >= self.policy.min_scans and self.policy.drift_threshold_m is not None:
            rssi, xy = state.buffer.rows()
            # Replay through the *serving* model, off the loop (predict
            # is read-only, so it can run beside live inference).
            score = await loop.run_in_executor(
                None, drift_score, slot.entry.localizer, rssi, xy
            )
            state.drift_score_m = score
            if self._m_drift is not None:
                self._m_drift.labels(label).set(score)
        should, reason = self.policy.decision(
            n_rows, state.buffer.age_s(), score
        )
        if not should or state.refit_inflight:
            return None
        return await self._refit_and_swap(building, floor, reason)

    async def refit_now(self, building: str, floor: int) -> dict:
        """Force an immediate refit + hot-swap, bypassing the policy.

        Manual lever for benches, tests and operators; requires a
        non-empty buffer.
        """
        state = self.state_for(building, floor)
        if state.refit_inflight:
            raise RuntimeError(
                f"slot {building}/f{floor} already has a refit in flight"
            )
        if state.buffer.n_rows == 0:
            raise ValueError(
                f"slot {building}/f{floor} has no buffered observations"
            )
        return await self._refit_and_swap(building, floor, "manual")

    async def _refit_and_swap(
        self, building: str, floor: int, reason: str | None
    ) -> dict:
        state = self.state_for(building, floor)
        slot = self.registry.slot(building, floor)
        label = slot.slot.label
        state.refit_inflight = True
        try:
            rssi, xy = state.buffer.rows()
            content_hash = state.buffer.content_hash
            n_used = int(rssi.shape[0])
            loop = asyncio.get_running_loop()
            # The fit runs on the dedicated refit thread — the serving
            # executors never queue behind a training job.
            result = await loop.run_in_executor(
                self._refit_executor,
                lambda: refit_slot(
                    self.registry.store, slot, rssi, xy, content_hash=content_hash
                ),
            )
            state.refits += 1
            if self._m_refits is not None:
                self._m_refits.labels(label).inc()
            t_swap = time.perf_counter()
            summary = await self.dispatcher.swap_slot(
                building, floor, entry=result.entry, suite=result.suite
            )
            swap_elapsed = time.perf_counter() - t_swap
            state.swaps += 1
            state.last_reason = reason
            if self._m_swaps is not None:
                self._m_swaps.labels(label).inc()
                self._m_swap_seconds.observe(swap_elapsed)
            # Only the consumed rows clear; observations that arrived
            # mid-refit stay as evidence for the next cycle.
            state.buffer.clear_rows(n_used)
            state.drift_score_m = None
            if self._m_buffered is not None:
                self._m_buffered.labels(label).set(state.buffer.n_rows)
            return {
                **summary,
                "reason": reason,
                "refit": result.describe(),
            }
        except Exception:
            state.errors += 1
            raise
        finally:
            state.refit_inflight = False

    # -- introspection / lifecycle -----------------------------------------

    def describe(self) -> dict:
        return {
            "policy": self.policy.to_dict(),
            "buffer_dir": str(self.buffer_dir),
            "slots": {
                label: state.describe() for label, state in self._states.items()
            },
        }

    async def drain(self) -> None:
        """Wait for every in-flight ingest-triggered task (tests)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        self._refit_executor.shutdown(wait=False)
        if self._own_tmpdir is not None:
            shutil.rmtree(self._own_tmpdir, ignore_errors=True)
