"""The exact float64 backends: ``reference`` and ``blas64``.

``reference`` is *today's* shipped arithmetic, verbatim: float64 rows,
precomputed reference norms, and the one shared
:func:`repro.index.distance.squared_distances` kernel — the path every
bit-identity pin in the repo compares against.

``blas64`` is the matmul-decomposed kernel at full precision. It runs
the identical float64 ops in the identical order on the identical
layouts, so it is bit-for-bit the reference path (hypothesis-pinned by
``tests/kernels/test_backends.py``); it exists so the seam itself — the
packing, the subset gathers, the dispatch — is pinned against drift
independently of any precision change.
"""

from __future__ import annotations

import numpy as np

from ..index.distance import squared_distances
from .base import KernelBackend, PackedReferences


class ReferenceBackend(KernelBackend):
    """Shipped float64 arithmetic behind the seam (bit-identical)."""

    name = "reference"
    changes_results = False

    def pack(self, refs: np.ndarray) -> PackedReferences:
        refs = np.ascontiguousarray(refs, dtype=np.float64)
        return PackedReferences(
            backend=self.name,
            n_rows=int(refs.shape[0]),
            n_dims=int(refs.shape[1]),
            arrays={
                "refs": refs,
                # The exact precomputation KNNHead.fit has always done.
                "refs_sq": (refs * refs).sum(axis=1),
            },
        )

    def take(self, packed: PackedReferences, rows: np.ndarray) -> PackedReferences:
        return PackedReferences(
            backend=self.name,
            n_rows=int(rows.shape[0]),
            n_dims=packed.n_dims,
            arrays={
                "refs": packed.arrays["refs"][rows],
                "refs_sq": packed.arrays["refs_sq"][rows],
            },
        )

    def sq_distances(
        self, queries: np.ndarray, packed: PackedReferences
    ) -> np.ndarray:
        return squared_distances(
            queries, packed.arrays["refs"], packed.arrays["refs_sq"]
        )


class Blas64Backend(ReferenceBackend):
    """Full-precision matmul decomposition — bit-identical by contract.

    Same float64 arrays, same op order, same clamp as ``reference``
    (both bottom out in :func:`~repro.index.distance.squared_distances`,
    whose ``q @ refs.T`` is already a BLAS dgemm); registering it
    separately keeps the identity claim *testable* — the hypothesis
    property compares two genuinely distinct registry entries.
    """

    name = "blas64"
    changes_results = False
