"""Multi-backend distance/encoder kernels behind a single seam.

Public surface:

* :class:`KernelBackend` / :class:`PackedReferences` — the contract
  every hot path codes against.
* :func:`resolve_backend` / :func:`resolve_backend_name` — name (or
  ``None`` + ``$REPRO_KERNEL_BACKEND``) to backend instance.
* :func:`get_backend` / :func:`register_backend` /
  :func:`available_backends` / :func:`canonical_backend_name` — the
  registry.
* :func:`backend_changes_results` — the fingerprint-participation rule.
* :class:`SharedArtifactRegion` / :func:`publish_packed` /
  :func:`attach_packed` — zero-copy shared-memory publication of packed
  reference tables (the multi-process fleet's radio-map transport).

Registered backends:

========== ========== ==================================================
name       contract   representation
========== ========== ==================================================
reference  bit-exact  float64 rows + cached norms (today's shipped path)
blas64     bit-exact  same float64 arithmetic, pinned through the seam
blas       bounded    transposed contiguous float32 + in-place sgemm
quantized  bounded    int8 codes (8x packing) + code-space float32 gemm
========== ========== ==================================================
"""

from .base import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelBackend,
    PackedReferences,
    available_backends,
    backend_changes_results,
    canonical_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)
from .blas import BlasBackend
from .quantized import QuantizedBackend
from .reference import Blas64Backend, ReferenceBackend
from .shared import (
    AttachedRegion,
    SharedArtifactRegion,
    SharedRegionHandle,
    attach_packed,
    publish_packed,
)

register_backend(ReferenceBackend())
register_backend(Blas64Backend(), aliases=("blas-float64", "blas-f64"))
register_backend(BlasBackend(), aliases=("blas32", "blas-float32", "blas-f32"))
register_backend(QuantizedBackend(), aliases=("int8", "quantized-int8"))

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "AttachedRegion",
    "Blas64Backend",
    "BlasBackend",
    "KernelBackend",
    "PackedReferences",
    "QuantizedBackend",
    "ReferenceBackend",
    "SharedArtifactRegion",
    "SharedRegionHandle",
    "attach_packed",
    "available_backends",
    "backend_changes_results",
    "canonical_backend_name",
    "get_backend",
    "publish_packed",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
]
