"""``blas``: single-precision matmul-decomposed distances + fused dense.

The distance kernel is bandwidth-bound: at serving scale the
``(n_queries, n_refs)`` block dwarfs the operands, so halving every
byte (float32 end to end) roughly doubles throughput before BLAS
threading is even counted. The decomposition
``|q|^2 + |r|^2 - 2 q @ r^T`` is evaluated with:

* a resident **transposed, C-contiguous float32** reference layout
  (packed once at fit) so the sgemm runs at full speed and the float64
  radio map can be dropped — half the per-slot memory;
* **cached float32 reference norms**;
* **in-place accumulation** into the sgemm output (no ``(n, m)``
  temporaries — the naive expression allocates three).

Error is bounded: float32 rounding only, no quantization. Results are
*not* bit-identical to ``reference`` (``changes_results = True``), so
the backend name participates in fingerprints, and accuracy is gated on
the eval suites by ``tests/kernels/test_backends.py``.

``dense_forward`` is the fused encoder-side half: one contiguous gemm,
bias added in place, ReLU folded in — arithmetic identical to running
the ``Dense`` and ``ReLU`` layers back to back (weights are already
float32), just without the intermediate allocations.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend, PackedReferences


class BlasBackend(KernelBackend):
    """Float32 matmul-decomposed distance kernel (bounded-error)."""

    name = "blas"
    changes_results = True

    def pack(self, refs: np.ndarray) -> PackedReferences:
        refs32 = np.asarray(refs, dtype=np.float32)
        # (d, n) C-contiguous: the sgemm's B operand in its natural
        # orientation, and the only resident copy of the radio map.
        refs_t = np.ascontiguousarray(refs32.T)
        return PackedReferences(
            backend=self.name,
            n_rows=int(refs32.shape[0]),
            n_dims=int(refs32.shape[1]),
            arrays={
                "refs_t": refs_t,
                "refs_sq": (refs_t * refs_t).sum(axis=0),
            },
        )

    def take(self, packed: PackedReferences, rows: np.ndarray) -> PackedReferences:
        return PackedReferences(
            backend=self.name,
            n_rows=int(rows.shape[0]),
            n_dims=packed.n_dims,
            arrays={
                "refs_t": packed.arrays["refs_t"][:, rows],
                "refs_sq": packed.arrays["refs_sq"][rows],
            },
        )

    def sq_distances(
        self, queries: np.ndarray, packed: PackedReferences
    ) -> np.ndarray:
        q32 = np.ascontiguousarray(queries, dtype=np.float32)
        d2 = q32 @ packed.arrays["refs_t"]
        d2 *= -2.0
        d2 += packed.arrays["refs_sq"][None, :]
        d2 += np.einsum("ij,ij->i", q32, q32)[:, None]
        # Numerical-noise guard: the decomposition rounds tiny true
        # distances below zero; clamp before any caller reaches sqrt.
        np.maximum(d2, 0.0, out=d2)
        return d2

    def dense_forward(self, x: np.ndarray, layer, *, fuse_relu: bool = False):
        x = np.ascontiguousarray(x, dtype=layer.params["W"].dtype)
        if x.ndim != 2 or x.shape[1] != layer.in_features:
            raise ValueError(
                f"{layer.name}: expected (batch, {layer.in_features}), "
                f"got {x.shape}"
            )
        y = x @ layer.params["W"]
        if layer.use_bias:
            y += layer.params["b"]
        if fuse_relu:
            # Same arithmetic as the ReLU layer's `x * (x > 0)`, folded
            # into the gemm output buffer.
            y *= y > 0
        return y
