"""Shared-memory publication of packed reference tables.

The multi-process fleet wants N worker processes to serve replicas of
the same deployment slots without paying N copies of the radio maps —
the packed reference matrices are by far the largest per-slot artifact
(what caps fleet density per host). This module is the zero-copy seam:

* :class:`SharedArtifactRegion` copies a named set of ndarrays into
  **one** ``multiprocessing.shared_memory`` segment (one page-aligned
  region per slot, not one segment per array — /dev/shm entries stay
  countable) and hands out a picklable :class:`SharedRegionHandle`.
* A worker process calls :meth:`SharedRegionHandle.attach` and gets the
  same arrays back as **views over the shared buffer** — no copy, no
  extra RAM beyond page tables, under both ``fork`` and ``spawn``.
* :func:`publish_packed` / :func:`attach_packed` specialize the region
  to a :class:`~repro.kernels.base.PackedReferences`: the attached
  object is a drop-in for the original one (``KNNHead`` never knows its
  reference matrix lives in shared memory).

Lifecycle is owner-driven: the publishing process (the fleet front-end)
calls :meth:`SharedArtifactRegion.unlink` on shutdown, which removes
the ``/dev/shm`` entry; workers only ever ``close()`` their mappings.
Attached arrays are marked read-only — a worker scribbling on a shared
radio map would corrupt every replica at once.
"""

from __future__ import annotations

import contextlib
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .base import PackedReferences

#: Every segment this repo creates is named with this prefix, so tests
#: (and operators) can audit /dev/shm for leaks unambiguously.
SEGMENT_PREFIX = "repro-shm-"


@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one ndarray inside the region's flat buffer."""

    key: str
    dtype: str
    shape: tuple
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SharedRegionHandle:
    """Picklable address of a published region (ship it to workers)."""

    segment: str
    arrays: tuple
    #: Extra picklable metadata riding along (e.g. PackedReferences
    #: backend/shape fields); never placed in shared memory itself.
    meta: dict | None = None

    def attach(self) -> AttachedRegion:
        """Map the segment and rebuild the arrays as zero-copy views.

        Attaching registers the name with the resource tracker again,
        which is harmless dedup here: fleet workers are multiprocessing
        children, so they *share* the owner's tracker process (its fd
        is inherited under both fork and spawn) and its cache is a set
        — the owner's single unlink-time unregister balances it. The
        bpo-38119 double-unlink wart only bites attachers running their
        own tracker (a foreign, non-descendant process), which this
        layer never creates.
        """
        shm = shared_memory.SharedMemory(name=self.segment)
        arrays: dict[str, np.ndarray] = {}
        for spec in self.arrays:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf[spec.offset : spec.offset + spec.nbytes],
            )
            # Read-only: replicas share these pages; a write in one
            # worker would silently corrupt every other replica.
            view.flags.writeable = False
            arrays[spec.key] = view
        return AttachedRegion(shm=shm, arrays=arrays, meta=self.meta)


@dataclass
class AttachedRegion:
    """A worker-side mapping: arrays viewing one shared segment."""

    shm: shared_memory.SharedMemory
    arrays: dict
    meta: dict | None = None

    def close(self) -> None:
        """Drop this process's mapping (the segment itself lives on).

        The array views must not be used afterwards; drop references to
        them first (the views hold the buffer alive through numpy's
        exports, so closing with live views raises ``BufferError``).
        """
        self.arrays = {}
        with contextlib.suppress(BufferError):  # pragma: no cover - live view
            self.shm.close()


class SharedArtifactRegion:
    """Owner side: one shared segment holding a named set of ndarrays.

    Construct with ``arrays`` (copied in once, 64-byte aligned) and ship
    :attr:`handle` to any number of worker processes. The owner — and
    only the owner — calls :meth:`unlink` when the fleet shuts down.
    """

    #: Alignment of each array inside the region; keeps SIMD loads over
    #: the shared views on the same fast path as private allocations.
    ALIGN = 64

    def __init__(self, arrays: dict, *, meta: dict | None = None) -> None:
        specs: list[_ArraySpec] = []
        offset = 0
        normalized: dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            arr = np.ascontiguousarray(value)
            offset = -(-offset // self.ALIGN) * self.ALIGN
            specs.append(
                _ArraySpec(
                    key=key,
                    dtype=arr.dtype.str,
                    shape=tuple(int(s) for s in arr.shape),
                    offset=offset,
                    nbytes=int(arr.nbytes),
                )
            )
            normalized[key] = arr
            offset += arr.nbytes
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        # size=0 is invalid; an all-empty region still needs one byte.
        # The owner stays registered with the resource tracker: if the
        # front-end dies without running unlink(), the tracker still
        # removes the segment at interpreter exit (crash safety net).
        self.shm = shared_memory.SharedMemory(
            create=True, name=name, size=max(offset, 1)
        )
        for spec in specs:
            dst = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self.shm.buf[spec.offset : spec.offset + spec.nbytes],
            )
            dst[...] = normalized[spec.key]
        self.handle = SharedRegionHandle(
            segment=name, arrays=tuple(specs), meta=meta
        )
        self._unlinked = False

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return int(self.shm.size)

    def unlink(self) -> None:
        """Remove the segment (idempotent). Owner-only, at shutdown."""
        if self._unlinked:
            return
        self._unlinked = True
        with contextlib.suppress(BufferError):  # pragma: no cover - live view
            self.shm.close()
        # unlink() also unregisters from the resource tracker, so a
        # clean shutdown leaves no exit-time sweep work behind.
        with contextlib.suppress(FileNotFoundError):  # pragma: no cover
            self.shm.unlink()


def publish_packed(packed: PackedReferences) -> SharedArtifactRegion:
    """Publish a :class:`PackedReferences`' arrays into shared memory.

    Non-ndarray entries in ``packed.arrays`` (scalar decode parameters
    of the quantized backend, say) ride in the handle's ``meta`` —
    pickled per worker, which is fine because they are tiny.
    """
    ndarrays = {
        k: v for k, v in packed.arrays.items() if isinstance(v, np.ndarray)
    }
    scalars = {
        k: v for k, v in packed.arrays.items() if not isinstance(v, np.ndarray)
    }
    return SharedArtifactRegion(
        ndarrays,
        meta={
            "kind": "packed_references",
            "backend": packed.backend,
            "n_rows": packed.n_rows,
            "n_dims": packed.n_dims,
            "scalars": scalars,
        },
    )


def attach_packed(
    handle: SharedRegionHandle,
) -> tuple[PackedReferences, AttachedRegion]:
    """Rebuild a :class:`PackedReferences` over a worker-side mapping.

    Returns the packed object *and* the region so the caller can
    ``close()`` the mapping on shutdown (the packed arrays are views —
    they must not outlive the region).
    """
    meta = handle.meta or {}
    if meta.get("kind") != "packed_references":
        raise ValueError(
            "handle does not describe a PackedReferences region"
        )
    region = handle.attach()
    arrays = dict(region.arrays)
    arrays.update(meta.get("scalars", {}))
    packed = PackedReferences(
        backend=meta["backend"],
        n_rows=meta["n_rows"],
        n_dims=meta["n_dims"],
        arrays=arrays,
    )
    return packed, region
