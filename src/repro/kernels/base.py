"""The kernel-backend seam: one contract for every distance/encoder hot path.

Every scale claim in this repo bottoms out in two inner loops — the
squared-Euclidean distance kernel behind :class:`~repro.core.knn_head.KNNHead`
and the dense forward inside :meth:`~repro.nn.model.Sequential.predict`.
A :class:`KernelBackend` owns both, so the *representation* of a radio
map (float64, packed float32, int8 codes) and the arithmetic over it
can change without touching any search or serving logic.

The contract has two tiers, mirroring the house bit-identity invariant:

* ``changes_results = False`` backends (``reference``, ``blas64``) must
  be **byte-for-byte identical** to the shipped float64 path — they are
  interchangeable everywhere and share cache/store fingerprints with it.
* ``changes_results = True`` backends (``blas`` float32, ``quantized``
  int8) are **bounded-error** and accuracy-gated on the eval suites;
  their name participates in every fingerprint that addresses results
  (spec fingerprints, model-store keys, index tags), so a float32
  artifact can never shadow a float64 one.

Backends are resolved by name through a registry
(:func:`register_backend` / :func:`get_backend`); the
``REPRO_KERNEL_BACKEND`` environment variable overrides an unset
backend wherever a default would apply (see :func:`resolve_backend`).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

#: Environment variable overriding the default backend selection.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The backend every layer assumes when nothing is configured.
DEFAULT_BACKEND = "reference"


@dataclass
class PackedReferences:
    """One reference matrix in a backend's resident representation.

    ``arrays`` is backend-private (float64 rows + norms for
    ``reference``, a transposed float32 layout for ``blas``, int8 codes
    plus decode scale for ``quantized``). Callers only rely on the
    shape metadata and :attr:`nbytes` (the resident footprint — what
    caps fleet density per process).
    """

    backend: str
    n_rows: int
    n_dims: int
    arrays: dict

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed representation."""
        return int(
            sum(
                a.nbytes
                for a in self.arrays.values()
                if isinstance(a, np.ndarray)
            )
        )


class KernelBackend(ABC):
    """Distance + dense-forward kernels over one data representation."""

    #: Registry name (canonical, lowercase).
    name: str = "abstract"

    #: False when the backend is bit-identical to ``reference`` — such
    #: backends are interchangeable and share fingerprints with it.
    changes_results: bool = True

    # -- radio-map distance kernel ----------------------------------------

    @abstractmethod
    def pack(self, refs: np.ndarray) -> PackedReferences:
        """Convert a float64 ``(n, d)`` reference matrix to resident form.

        Called once per ``fit``; everything per-query must be
        precomputed here (norms, layouts, codes).
        """

    @abstractmethod
    def take(self, packed: PackedReferences, rows: np.ndarray) -> PackedReferences:
        """A packed view of a sorted row subset (the sharded-index path)."""

    @abstractmethod
    def sq_distances(
        self, queries: np.ndarray, packed: PackedReferences
    ) -> np.ndarray:
        """``(n, m)`` squared Euclidean distances, clamped at zero.

        ``queries`` arrive as float64 rows in the reference space; the
        backend owns any dtype conversion. The clamp is part of the
        contract: the matmul decomposition can produce tiny negative
        values from rounding noise, and a negative square root
        downstream is never acceptable (see
        ``tests/kernels/test_backends.py::TestNegativeClamp``).
        """

    # -- dense / encoder forward ------------------------------------------

    def dense_forward(self, x: np.ndarray, layer, *, fuse_relu: bool = False):
        """Inference forward of one Dense layer, optionally fused with ReLU.

        The default replicates the layer's own forward (plus the ReLU
        layer's arithmetic when fused) exactly — byte-for-byte what
        ``Sequential.forward`` produces. Backends may override with a
        faster equivalent; overrides of ``changes_results = False``
        backends must stay bit-identical.
        """
        y, _ = layer.forward(x, training=False)
        if fuse_relu:
            y = y * (y > 0)
        return y

    # -- reporting ---------------------------------------------------------

    def describe(self) -> dict:
        """JSON-ready backend facts for ``/models`` and bench reports."""
        return {"name": self.name, "changes_results": self.changes_results}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, KernelBackend] = {}
_ALIASES: dict[str, str] = {}


def register_backend(backend: KernelBackend, *, aliases: tuple = ()) -> KernelBackend:
    """Add a backend instance to the registry (idempotent by name)."""
    _REGISTRY[backend.name] = backend
    for alias in aliases:
        _ALIASES[alias.lower()] = backend.name
    return backend


def available_backends() -> tuple:
    """Canonical names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def canonical_backend_name(name: str) -> str:
    """Resolve a backend name or alias to its canonical registry name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown kernel backend {name!r}; known: {available_backends()}"
        )
    return key


def get_backend(name: str) -> KernelBackend:
    """The registered backend instance for a name or alias."""
    return _REGISTRY[canonical_backend_name(name)]


def backend_changes_results(name: str) -> bool:
    """True when the named backend's arithmetic can differ from reference.

    This is the fingerprint-participation rule: backends for which this
    is False are interchangeable with ``reference`` and must share its
    cache keys, store digests and index tags.
    """
    return get_backend(name).changes_results


def resolve_backend_name(name: str | None = None) -> str:
    """Canonical backend name after applying the environment override.

    Resolution order: explicit ``name`` → ``$REPRO_KERNEL_BACKEND`` →
    :data:`DEFAULT_BACKEND`. The override only fills an *unset*
    selection; code that was handed an explicit backend keeps it, so a
    spec's recorded backend always matches what actually ran.
    """
    if name is None or name == "":
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return canonical_backend_name(name)


def resolve_backend(
    name: str | KernelBackend | None = None,
) -> KernelBackend:
    """Backend instance for a name/instance/None (None = env/default)."""
    if isinstance(name, KernelBackend):
        return name
    return get_backend(resolve_backend_name(name))
