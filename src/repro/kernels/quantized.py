"""``quantized``: int8-packed radio maps (memory-bound fleet density).

Per-slot memory — not compute — is what caps how many buildings a
single fleet process can keep warm, and the radio map is the dominant
per-slot array. This backend stores it as **per-tensor symmetric int8
codes** (built on :func:`repro.compress.quantize.quantize_tensor`, the
same affine machinery the encoder-weight PTQ uses): 1 byte per value
against the reference path's 8, an 8x packing of every warm slot.

Distances are computed *in code space*. With one symmetric scale ``s``
and zero point 0, quantizing queries onto the same grid gives::

    ||x - y||^2  ~=  s^2 * ||q(x) - q(y)||^2

so the kernel is the usual decomposition over the integer codes (cast
to float32 for the sgemm — NumPy has no int8 GEMM), cached integer code
norms, and a single ``s^2`` rescale at the end. Per-coordinate error is
at most ``s/2`` plus clipping at the code range, which bounds the
distance error by ``s * sqrt(d)`` per operand (pinned, together with
the accuracy gates on the eval suites, in
``tests/kernels/test_backends.py``).

``dense_forward`` is inherited from the ``blas`` backend: this
backend's quantization applies to the *radio map*; encoder-weight
quantization stays in :mod:`repro.compress` where calibration lives.
"""

from __future__ import annotations

import numpy as np

from ..compress.quantize import QuantizationSpec, quantize_tensor
from .base import PackedReferences
from .blas import BlasBackend

#: Radio-map code width. Per-tensor symmetric: zero point 0, the code
#: grid is shared by references and queries.
_SPEC = QuantizationSpec(bits=8, symmetric=True, per_channel=False)


class QuantizedBackend(BlasBackend):
    """Int8 reference codes + float32 code-space distance kernel."""

    name = "quantized"
    changes_results = True

    def pack(self, refs: np.ndarray) -> PackedReferences:
        qt = quantize_tensor(np.asarray(refs, dtype=np.float64), _SPEC)
        codes = np.ascontiguousarray(qt.codes)  # (n, d) int8 — resident
        codes_f = codes.astype(np.float32)
        return PackedReferences(
            backend=self.name,
            n_rows=int(codes.shape[0]),
            n_dims=int(codes.shape[1]),
            arrays={
                "codes": codes,
                "codes_sq": np.einsum("ij,ij->i", codes_f, codes_f),
                # 0-d float64 scale: kept out of nbytes-dominant arrays.
                "scale": np.float64(qt.scale[0]),
            },
        )

    def take(self, packed: PackedReferences, rows: np.ndarray) -> PackedReferences:
        return PackedReferences(
            backend=self.name,
            n_rows=int(rows.shape[0]),
            n_dims=packed.n_dims,
            arrays={
                "codes": packed.arrays["codes"][rows],
                "codes_sq": packed.arrays["codes_sq"][rows],
                "scale": packed.arrays["scale"],
            },
        )

    def sq_distances(
        self, queries: np.ndarray, packed: PackedReferences
    ) -> np.ndarray:
        scale = float(packed.arrays["scale"])
        q_max = _SPEC.q_levels // 2 - 1
        qc = np.clip(
            np.rint(np.asarray(queries, dtype=np.float64) / scale),
            -q_max,
            q_max,
        ).astype(np.float32)
        rc = packed.arrays["codes"].astype(np.float32)
        d2 = qc @ rc.T
        d2 *= -2.0
        d2 += packed.arrays["codes_sq"][None, :]
        d2 += np.einsum("ij,ij->i", qc, qc)[:, None]
        # Clamp in code space: rounding noise from the decomposition
        # must never reach a sqrt as a negative value.
        np.maximum(d2, 0.0, out=d2)
        d2 *= np.float32(scale * scale)
        return d2

    def describe(self) -> dict:
        facts = super().describe()
        facts["bits"] = _SPEC.bits
        return facts
