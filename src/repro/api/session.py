"""`LocalizationSession` — one facade over local and remote inference.

A session exposes the same four calls whether the model runs in this
process or behind a ``repro serve`` HTTP endpoint:

====================  ==================================================
``fit()``             warm the backend (fit/load locally; handshake
                      remotely) — idempotent
``localize(scan)``    one ``(n_aps,)`` scan → ``(2,)`` coordinate
``localize_batch(m)`` ``(n, n_aps)`` scans → ``(n, 2)`` coordinates
``stats()``           JSON-ready backend state
====================  ==================================================

Construction goes through the factories::

    session = LocalizationSession.local(LocalizerSpec(framework="KNN"), suite)
    session = LocalizationSession.remote("http://127.0.0.1:8000")

Both backends normalize scans through the *same* protocol kernel
(:func:`repro.serve.protocol.as_scan_matrix` — the clipping rule the
HTTP layer applies), and JSON float serialization is exact for float64,
so a local session and a remote session over the same fitted model
return **bit-identical** coordinates (pinned by
``tests/api/test_session.py``). Code written against the facade can
move between in-process and served deployments without a diff.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..baselines.base import BatchedLocalizer
from ..serve.protocol import as_scan_matrix
from .client import ReproClient
from .config import LocalizerSpec, engine_index


class LocalizationSession:
    """Abstract facade; use :meth:`local` or :meth:`remote` to build."""

    #: ``"local"`` or ``"remote"`` — which backend answers.
    backend = "abstract"

    @classmethod
    def local(
        cls,
        spec: LocalizerSpec,
        suite,
        *,
        store=None,
        model_dir: str | None = None,
    ) -> LocalLocalizationSession:
        """A session over an in-process model (ModelStore-backed).

        ``suite`` supplies the training data; ``model_dir`` (or a
        shared ``store``) enables warm-loading fitted state across
        processes exactly as ``repro serve --model-dir`` does.
        """
        return LocalLocalizationSession(
            spec, suite, store=store, model_dir=model_dir
        )

    @classmethod
    def remote(
        cls,
        url: str | None = None,
        *,
        client: ReproClient | None = None,
        **client_kwargs,
    ) -> RemoteLocalizationSession:
        """A session over a running server (URL or prebuilt client)."""
        if client is None:
            if url is None:
                raise ValueError("remote() needs a url or a client")
            client = ReproClient.from_url(url, **client_kwargs)
        elif url is not None:
            raise ValueError("pass either url or client, not both")
        return RemoteLocalizationSession(client)

    # -- the facade contract ----------------------------------------------

    def fit(self) -> LocalizationSession:
        """Warm the backend; safe to call repeatedly."""
        raise NotImplementedError

    def localize(self, scan: Sequence[float] | np.ndarray) -> np.ndarray:
        """One scan → one ``(2,)`` coordinate in meters."""
        raise NotImplementedError

    def localize_batch(
        self, scans: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        """``(n, n_aps)`` scans → ``(n, 2)`` coordinates in meters."""
        raise NotImplementedError

    def stats(self) -> dict:
        """JSON-ready backend state (always carries ``"backend"``)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; the session is done."""

    def __enter__(self) -> LocalizationSession:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalLocalizationSession(LocalizationSession):
    """In-process backend: the spec's model out of a ``ModelStore``."""

    backend = "local"

    def __init__(
        self,
        spec: LocalizerSpec,
        suite,
        *,
        store=None,
        model_dir: str | None = None,
    ) -> None:
        from ..serve.store import ModelStore

        self.spec = spec
        self.suite = suite
        self.store = store if store is not None else ModelStore(model_dir)
        self._entry = None

    def fit(self) -> LocalLocalizationSession:
        if self._entry is None:
            self._entry = self.store.get_or_fit(
                self.spec.framework,
                self.suite,
                seed=self.spec.seed,
                fast=self.spec.fast,
                index=engine_index(self.spec.index),
            )
        return self

    @property
    def entry(self):
        """The warm :class:`~repro.serve.store.StoreEntry` (fits lazily)."""
        self.fit()
        return self._entry

    def localize(self, scan: Sequence[float] | np.ndarray) -> np.ndarray:
        return self.localize_batch([np.asarray(scan)])[0]

    def localize_batch(
        self, scans: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        entry = self.entry
        matrix = as_scan_matrix(scans, entry.n_aps)
        localizer = entry.localizer
        # Mirror the dispatcher's backend selection: batch-safe models
        # take the batched kernel, sequential decoders (GIFT) handle
        # the rows as one ordered walk — identical to serving one
        # /localize_batch request.
        if isinstance(localizer, BatchedLocalizer):
            return localizer.predict_batched(matrix)
        return localizer.predict(matrix)

    def stats(self) -> dict:
        entry = self.entry
        return {
            "backend": "local",
            "framework": entry.key.framework,
            "suite": entry.suite_name,
            "n_aps": entry.n_aps,
            "model_source": entry.source,
            "digest": entry.key.digest[:16],
            "fit_seconds": round(entry.fit_seconds, 3),
            "index": entry.localizer.index_describe(),
        }


class RemoteLocalizationSession(LocalizationSession):
    """Remote backend: every call rides the :class:`ReproClient`."""

    backend = "remote"

    def __init__(self, client: ReproClient) -> None:
        self.client = client

    def fit(self) -> RemoteLocalizationSession:
        # The server fit (or warm-loaded) its model at startup; the
        # session handshake just proves liveness + version compatibility.
        self.client.healthz()
        return self

    def localize(self, scan: Sequence[float] | np.ndarray) -> np.ndarray:
        return self.client.localize(scan).location

    def localize_batch(
        self, scans: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        return self.client.localize_batch(scans).locations

    def stats(self) -> dict:
        return {"backend": "remote", **self.client.healthz()}

    def close(self) -> None:
        self.client.close()


__all__ = [
    "LocalizationSession",
    "LocalLocalizationSession",
    "RemoteLocalizationSession",
]
