"""Typed, versioned configuration specs — the public construction surface.

Four frozen dataclasses describe everything a client can ask this
system to build, each with a ``to_dict``/``from_dict`` JSON round-trip
and a canonical :meth:`fingerprint`:

* :class:`IndexSpec` — how a reference radio map is sharded and probed
  (the public face of :class:`repro.index.IndexConfig`).
* :class:`LocalizerSpec` — one framework + its training configuration.
  :meth:`LocalizerSpec.build` replaces the deprecated
  ``make_localizer``; :meth:`LocalizerSpec.model_key` produces the
  *exact* content-addressed :class:`~repro.serve.store.ModelKey` the
  serving layer's ``ModelStore`` has always used, so artifacts fitted
  before this API existed keep warm-loading.
* :class:`ServeSpec` — a single-model HTTP deployment
  (model + dispatcher + bind address), buildable into a running
  :class:`~repro.serve.server.LocalizationServer`.
* :class:`FleetSpec` — a multi-building deployment
  (buildings grammar + fleet-wide tuning), buildable into a
  :class:`~repro.fleet.registry.FleetRegistry` and
  :class:`~repro.fleet.server.FleetServer`.

Canonicalization happens at construction: framework aliases resolve to
their registry names, and an exhaustive :class:`IndexSpec` is
interchangeable with ``index=None`` everywhere (both fingerprint as
``"exhaustive"``), mirroring the normalization the cache/store layers
already apply. Two specs that cannot differ in behaviour therefore
share one fingerprint — and one cached artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from ..baselines.base import Localizer
from ..baselines.registry import (
    build_localizer,
    canonical_name,
    supports_candidate_index,
    supports_kernel_backend,
)
from ..index import IndexConfig
from ..kernels import backend_changes_results, resolve_backend_name


def _canonical_digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON rendering of a spec dict."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def _check_known_keys(cls: type, data: dict) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{cls.__name__}.from_dict: unknown keys {unknown}; "
            f"known keys: {sorted(known)}"
        )


@dataclass(frozen=True)
class IndexSpec:
    """How a reference radio map is partitioned and probed.

    The typed public face of :class:`repro.index.IndexConfig` —
    identical fields, identical validation, plus the dict round-trip.
    ``kind="exhaustive"`` means *no sharding* and is behaviourally (and
    fingerprint-) equivalent to passing no index at all.
    """

    kind: str = "exhaustive"
    n_shards: int = 16
    n_probe: int = 4
    seed: int = 0
    #: Kernel backend for the probe distances (``None`` inherits the
    #: owning head's backend); canonicalized at construction.
    backend: str | None = None

    def __post_init__(self) -> None:
        # IndexConfig owns the validation rules; constructing one here
        # keeps the two surfaces impossible to drift apart.
        config = self.to_config()
        object.__setattr__(self, "backend", config.backend)

    @property
    def is_exhaustive(self) -> bool:
        return self.kind == "exhaustive"

    def to_config(self) -> IndexConfig:
        """The internal :class:`~repro.index.IndexConfig` equivalent."""
        return IndexConfig(
            kind=self.kind,
            n_shards=self.n_shards,
            n_probe=self.n_probe,
            seed=self.seed,
            backend=self.backend,
        )

    @classmethod
    def from_config(cls, config: IndexConfig | None) -> IndexSpec | None:
        """Wrap an internal config (``None`` stays ``None``)."""
        if config is None:
            return None
        return cls(
            kind=config.kind,
            n_shards=config.n_shards,
            n_probe=config.n_probe,
            seed=config.seed,
            backend=config.backend,
        )

    def fingerprint(self) -> str:
        """Canonical identity — exactly ``IndexConfig.tag()``.

        This *is* the cache-key component every layer already hashes
        (engine result cache, model store), so spec-built artifacts
        collide with — i.e. reuse — legacy-built ones by construction.
        """
        return self.to_config().tag()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "n_probe": self.n_probe,
            "seed": self.seed,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> IndexSpec:
        _check_known_keys(cls, data)
        return cls(**data)


def engine_index(spec: IndexSpec | None) -> IndexConfig | None:
    """Normalize a spec to the engine's convention (``None`` = exhaustive).

    The cache/store layers treat "no index" and "exhaustive index" as
    one artifact; this is the single conversion point that keeps
    spec-driven callers on that convention.
    """
    if spec is None or spec.is_exhaustive:
        return None
    return spec.to_config()


@dataclass(frozen=True)
class LocalizerSpec:
    """One localization framework plus its training configuration.

    ``framework`` accepts any registry name or alias and is stored
    canonically (``LocalizerSpec(framework="ltknn")`` equals
    ``LocalizerSpec(framework="LT-KNN")``). A non-exhaustive ``index``
    on a framework without a shardable radio map raises ``ValueError``
    at construction — the earliest possible moment.

    ``backend`` selects the kernel backend (:mod:`repro.kernels`) for
    the framework's hot distance/encoder path. ``None`` resolves
    through ``$REPRO_KERNEL_BACKEND`` before defaulting to
    ``"reference"``, so the stored spec always records the backend that
    actually runs. An *explicit* result-changing backend on a framework
    without the seam raises; an env-derived one silently normalizes to
    ``"reference"`` (one exported variable must not break GIFT/SCNN
    sweeps).
    """

    framework: str
    suite_name: str | None = None
    fast: bool = False
    seed: int = 0
    index: IndexSpec | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "framework", canonical_name(self.framework))
        if (
            self.index is not None
            and not self.index.is_exhaustive
            and not supports_candidate_index(self.framework)
        ):
            raise ValueError(
                f"{self.framework} has no reference radio map to shard "
                f"(supports_index is False); drop index= or pick one of "
                f"the NN-search frameworks (STONE, KNN, LT-KNN)"
            )
        explicit = self.backend is not None
        resolved = resolve_backend_name(self.backend)
        if not supports_kernel_backend(self.framework) and backend_changes_results(
            resolved
        ):
            if explicit:
                raise ValueError(
                    f"{self.framework} has no kernel-backend seam "
                    f"(supports_kernel_backend is False); drop backend= "
                    f"or pick one of the radio-map frameworks (STONE, "
                    f"KNN, LT-KNN)"
                )
            resolved = "reference"
        object.__setattr__(self, "backend", resolved)

    # -- construction ------------------------------------------------------

    def build(self) -> Localizer:
        """Build the (unfitted) localizer this spec describes.

        Bit-identical to what the deprecated ``make_localizer`` builds
        for the same arguments (both delegate to the same registry
        kernel) — pinned by ``tests/api/test_shims.py``.
        """
        return build_localizer(
            self.framework,
            suite_name=self.suite_name,
            fast=self.fast,
            index=engine_index(self.index),
            backend=self.backend,
        )

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Canonical data-free digest of this spec's configuration.

        Aliases, ``index=None`` vs an explicit exhaustive index, and
        unused shard parameters are all normalized away first — equal
        behaviour, equal fingerprint. The kernel backend joins the
        payload only when it can change results: reference (and blas64)
        specs keep their pre-seam fingerprints.
        """
        payload = {
            "spec": "localizer",
            "framework": self.framework,
            "suite_name": self.suite_name,
            "fast": self.fast,
            "seed": self.seed,
            "index": self.index_tag,
        }
        if backend_changes_results(self.backend):
            payload["backend"] = self.backend
        return _canonical_digest(payload)

    @property
    def index_tag(self) -> str:
        """Canonical index tag (``"exhaustive"`` when unsharded)."""
        config = engine_index(self.index)
        return config.tag() if config is not None else "exhaustive"

    def model_key(self, suite):
        """The content-addressed serving identity for this spec + data.

        Returns the exact :class:`~repro.serve.store.ModelKey` the
        ``ModelStore`` computes today — same ``train_fingerprint``, same
        digest — so every artifact persisted under the legacy scheme
        stays addressable through the spec surface (fingerprint
        subsumption is an equality, not a migration).
        """
        # Local import: repro.serve.store imports repro.eval.engine,
        # which reaches back into this module lazily; importing it at
        # module scope would freeze the cycle into import order.
        from ..eval.engine import train_fingerprint
        from ..serve.store import ModelKey

        return ModelKey(
            framework=self.framework,
            train_hash=train_fingerprint(suite),
            seed=self.seed,
            fast=self.fast,
            index=engine_index(self.index),
            backend=self.backend,
        )

    def task_key(self, suite_hash: str, *, seed_index: int = 0) -> str:
        """The evaluation engine's result-cache key for this spec.

        Identical to :meth:`repro.eval.engine.EvalTask.cache_key` for
        the equivalent task — spec-driven sweeps hit traces cached by
        pre-spec runs.
        """
        from ..eval.engine import task_fingerprint

        return task_fingerprint(
            self.framework,
            suite_hash,
            seed=self.seed,
            fast=self.fast,
            seed_index=seed_index,
            index=engine_index(self.index),
            backend=self.backend,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "framework": self.framework,
            "suite_name": self.suite_name,
            "fast": self.fast,
            "seed": self.seed,
            "index": self.index.to_dict() if self.index else None,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> LocalizerSpec:
        _check_known_keys(cls, data)
        data = dict(data)
        if data.get("index") is not None:
            data["index"] = IndexSpec.from_dict(data["index"])
        return cls(**data)


@dataclass(frozen=True)
class ServeSpec:
    """One single-model HTTP deployment: what to serve, and how.

    ``localizer.suite_name`` names the dataset suite to fit on (the
    CLI's positional argument); the remaining fields are the serving
    knobs that used to live only in ``repro serve`` flags.
    """

    localizer: LocalizerSpec
    host: str = "127.0.0.1"
    port: int = 8000
    batch_window_ms: float = 2.0
    max_batch: int = 256
    chunk_size: int | None = None
    model_dir: str | None = None
    #: Structured JSON request logging to stderr (``repro serve --log-json``).
    log_json: bool = False
    #: Only log successful requests slower than this many milliseconds
    #: (errors always log); ``None`` logs every request when enabled.
    slow_ms: float | None = None

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.slow_ms is not None and self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")

    def build(self, suite, *, store=None):
        """Fit (or warm-load) the model and assemble the HTTP server.

        Returns an unstarted
        :class:`~repro.serve.server.LocalizationServer`; call ``run()``
        or ``start_background()`` on it. ``store`` overrides the
        :class:`~repro.serve.store.ModelStore` (defaults to one rooted
        at ``model_dir``).
        """
        from ..serve.dispatcher import BatchingDispatcher
        from ..serve.server import LocalizationServer
        from ..serve.store import ModelStore

        store = store if store is not None else ModelStore(self.model_dir)
        entry = store.get_or_fit(
            self.localizer.framework,
            suite,
            seed=self.localizer.seed,
            fast=self.localizer.fast,
            index=engine_index(self.localizer.index),
            backend=self.localizer.backend,
        )
        dispatcher = BatchingDispatcher(
            entry.localizer,
            batch_window_ms=self.batch_window_ms,
            max_batch=self.max_batch,
            chunk_size=self.chunk_size,
        )
        return LocalizationServer(
            entry, dispatcher, store=store, host=self.host, port=self.port,
            log_json=self.log_json, slow_ms=self.slow_ms,
        )

    def fingerprint(self) -> str:
        """Canonical digest of the whole deployment configuration."""
        payload = {
            "spec": "serve",
            "localizer": self.localizer.fingerprint(),
            "host": self.host,
            "port": self.port,
            "batch_window_ms": self.batch_window_ms,
            "max_batch": self.max_batch,
            "chunk_size": self.chunk_size,
            "model_dir": self.model_dir,
        }
        # Observability knobs never change answers, so — like exact
        # backends — they join the digest only when switched on and
        # pre-obs serve fingerprints stay valid.
        if self.log_json:
            payload["log_json"] = True
        if self.slow_ms is not None:
            payload["slow_ms"] = self.slow_ms
        return _canonical_digest(payload)

    def to_dict(self) -> dict:
        return {
            "localizer": self.localizer.to_dict(),
            "host": self.host,
            "port": self.port,
            "batch_window_ms": self.batch_window_ms,
            "max_batch": self.max_batch,
            "chunk_size": self.chunk_size,
            "model_dir": self.model_dir,
            "log_json": self.log_json,
            "slow_ms": self.slow_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> ServeSpec:
        _check_known_keys(cls, data)
        data = dict(data)
        data["localizer"] = LocalizerSpec.from_dict(data["localizer"])
        return cls(**data)


@dataclass(frozen=True)
class FleetSpec:
    """One multi-building fleet deployment.

    ``buildings`` carries the same grammar as the CLI spec string
    (``"HQ:2,LAB:3:kmeans"`` — see :mod:`repro.fleet.spec`), held as
    parsed :class:`~repro.fleet.spec.BuildingSpec` entries; the
    remaining fields are the fleet-wide generation and serving knobs.
    """

    buildings: tuple
    framework: str = "KNN"
    seed: int = 0
    fast: bool = False
    index: IndexSpec | None = None
    backend: str | None = None
    months: int = 4
    aps_per_floor: int = 24
    model_dir: str | None = None
    host: str = "127.0.0.1"
    port: int = 8000
    batch_window_ms: float = 2.0
    max_batch: int = 256
    chunk_size: int | None = None
    #: ``None`` = the dispatcher's default (two protocol-max batches).
    max_pending_rows: int | None = None
    #: ``0`` = in-process slot execution (the default); ``N > 0`` runs
    #: the slots in N worker processes sharing radio maps over
    #: ``multiprocessing.shared_memory`` (answers are bit-identical).
    workers: int = 0
    #: Multiprocessing start method for worker processes (``"fork"`` /
    #: ``"spawn"`` / ``"forkserver"``); ``None`` defers to the
    #: ``REPRO_MP_START`` env var, then the platform default.
    start_method: str | None = None
    #: Structured JSON request logging to stderr (``repro serve --log-json``).
    log_json: bool = False
    #: Only log successful requests slower than this many milliseconds
    #: (errors always log); ``None`` logs every request when enabled.
    slow_ms: float | None = None
    #: Live ingest (``POST /observe``) drift policy: refit + hot-swap a
    #: slot once the buffered observations' mean error under its serving
    #: model exceeds this many meters. ``None`` disables drift scoring
    #: (the buffer-full trigger still applies).
    drift_threshold_m: float | None = None
    #: Never judge drift (or refit) on fewer buffered scans than this.
    live_min_scans: int = 32
    #: Refit unconditionally once this many scans are buffered.
    live_max_scans: int = 4096
    #: Refit once the oldest buffered scan is this old (seconds);
    #: ``None`` disables the age trigger.
    live_max_age_s: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "framework", canonical_name(self.framework))
        object.__setattr__(self, "buildings", tuple(self.buildings))
        if not self.buildings:
            raise ValueError("FleetSpec needs at least one building")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if self.slow_ms is not None and self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        # DriftPolicy owns the live-knob validation rules; constructing
        # one here keeps the two surfaces impossible to drift apart.
        self.drift_policy()
        # Same resolution + gating rules as LocalizerSpec.backend.
        explicit = self.backend is not None
        resolved = resolve_backend_name(self.backend)
        if not supports_kernel_backend(self.framework) and backend_changes_results(
            resolved
        ):
            if explicit:
                raise ValueError(
                    f"{self.framework} has no kernel-backend seam "
                    f"(supports_kernel_backend is False); drop backend= "
                    f"or pick one of the radio-map frameworks (STONE, "
                    f"KNN, LT-KNN)"
                )
            resolved = "reference"
        object.__setattr__(self, "backend", resolved)

    @classmethod
    def from_string(cls, spec: str, **kwargs) -> FleetSpec:
        """Parse the CLI grammar (``"HQ:2,LAB:3:kmeans"``) into a spec."""
        from ..fleet.spec import parse_fleet_spec

        return cls(buildings=tuple(parse_fleet_spec(spec)), **kwargs)

    @property
    def buildings_string(self) -> str:
        """The canonical round-trip form of the buildings grammar."""
        from ..fleet.spec import format_fleet_spec

        return format_fleet_spec(list(self.buildings))

    # -- construction ------------------------------------------------------

    def build_registry(self, *, store=None):
        """Generate, fit and register every building this spec names."""
        from ..fleet.registry import FleetRegistry

        return FleetRegistry.from_specs(
            list(self.buildings),
            framework=self.framework,
            seed=self.seed,
            fast=self.fast,
            index=engine_index(self.index),
            backend=self.backend,
            months=self.months,
            aps_per_floor=self.aps_per_floor,
            store=store,
            model_dir=self.model_dir if store is None else None,
        )

    def drift_policy(self):
        """The :class:`~repro.live.DriftPolicy` these knobs describe."""
        from ..live import DriftPolicy

        return DriftPolicy(
            drift_threshold_m=self.drift_threshold_m,
            min_scans=self.live_min_scans,
            max_scans=self.live_max_scans,
            max_age_s=self.live_max_age_s,
        )

    def build_server(self, registry=None, *, store=None):
        """Assemble the fleet dispatcher + HTTP server (unstarted).

        Pass a prebuilt ``registry`` to reuse already-warm slots;
        otherwise :meth:`build_registry` runs first. The live-update
        loop behind ``POST /observe`` runs the spec's drift policy.
        """
        from ..fleet.dispatch import FleetDispatcher
        from ..fleet.server import FleetServer
        from ..live import LiveManager

        if registry is None:
            registry = self.build_registry(store=store)
        dispatcher_kwargs: dict = dict(
            batch_window_ms=self.batch_window_ms,
            max_batch=self.max_batch,
            chunk_size=self.chunk_size,
        )
        if self.max_pending_rows is not None:
            dispatcher_kwargs["max_pending_rows"] = self.max_pending_rows
        if self.workers:
            dispatcher_kwargs["workers"] = self.workers
            dispatcher_kwargs["start_method"] = self.start_method
        dispatcher = FleetDispatcher(registry, **dispatcher_kwargs)
        live = LiveManager(dispatcher, policy=self.drift_policy())
        return FleetServer(
            registry, dispatcher, host=self.host, port=self.port,
            log_json=self.log_json, slow_ms=self.slow_ms, live=live,
        )

    # -- identity / serialization ------------------------------------------

    def fingerprint(self) -> str:
        payload = {
                "spec": "fleet",
                "buildings": self.buildings_string,
                "framework": self.framework,
                "seed": self.seed,
                "fast": self.fast,
                "index": (
                    engine_index(self.index).tag()
                    if engine_index(self.index) is not None
                    else "exhaustive"
                ),
                "months": self.months,
                "aps_per_floor": self.aps_per_floor,
                "model_dir": self.model_dir,
                "host": self.host,
                "port": self.port,
                "batch_window_ms": self.batch_window_ms,
                "max_batch": self.max_batch,
                "chunk_size": self.chunk_size,
                "max_pending_rows": self.max_pending_rows,
        }
        # Same rule as LocalizerSpec: only result-changing backends
        # participate, so pre-seam fleet fingerprints stay valid.
        if backend_changes_results(self.backend):
            payload["backend"] = self.backend
        # Worker processes never change answers (bit-identity is the
        # pool's contract), so — like exact backends — they join the
        # fingerprint only when nonzero and single-process fleet
        # fingerprints stay valid.
        if self.workers:
            payload["workers"] = self.workers
        # Observability knobs never change answers either; same
        # only-when-switched-on rule keeps pre-obs fingerprints valid.
        if self.log_json:
            payload["log_json"] = True
        if self.slow_ms is not None:
            payload["slow_ms"] = self.slow_ms
        # Live-update knobs join only when tuned away from the inert
        # default policy, so pre-live fleet fingerprints stay valid.
        # (A refit *does* change what a slot answers — but that identity
        # lives in the refit model's content-addressed ModelKey, which
        # hashes the merged training data. The spec only fingerprints
        # the policy that decides *when* to refit.)
        if not self.drift_policy().is_default:
            payload["live"] = self.drift_policy().to_dict()
        return _canonical_digest(payload)

    def to_dict(self) -> dict:
        return {
            "buildings": self.buildings_string,
            "framework": self.framework,
            "seed": self.seed,
            "fast": self.fast,
            "index": self.index.to_dict() if self.index else None,
            "backend": self.backend,
            "months": self.months,
            "aps_per_floor": self.aps_per_floor,
            "model_dir": self.model_dir,
            "host": self.host,
            "port": self.port,
            "batch_window_ms": self.batch_window_ms,
            "max_batch": self.max_batch,
            "chunk_size": self.chunk_size,
            "max_pending_rows": self.max_pending_rows,
            "workers": self.workers,
            "start_method": self.start_method,
            "log_json": self.log_json,
            "slow_ms": self.slow_ms,
            "drift_threshold_m": self.drift_threshold_m,
            "live_min_scans": self.live_min_scans,
            "live_max_scans": self.live_max_scans,
            "live_max_age_s": self.live_max_age_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> FleetSpec:
        _check_known_keys(cls, data)
        data = dict(data)
        if data.get("index") is not None:
            data["index"] = IndexSpec.from_dict(data["index"])
        buildings = data.pop("buildings")
        if isinstance(buildings, str):
            from ..fleet.spec import parse_fleet_spec

            data["buildings"] = tuple(parse_fleet_spec(buildings))
        else:
            from ..fleet.spec import BuildingSpec

            data["buildings"] = tuple(
                b if isinstance(b, BuildingSpec) else BuildingSpec(**b)
                for b in buildings
            )
        return cls(**data)


__all__ = [
    "IndexSpec",
    "LocalizerSpec",
    "ServeSpec",
    "FleetSpec",
    "engine_index",
]
