"""`ReproClient` — the typed stdlib HTTP client for the serving layer.

One keep-alive connection, wire protocol v1, typed errors, and
backoff-aware retry on 429 — everything the examples used to hand-roll
with ``http.client``, in one place:

    from repro.api import ReproClient

    with ReproClient(port=8000) as client:
        result = client.localize([-62.0, -71.5, -100.0, -55.2])
        print(result.location)          # np.ndarray (2,), meters

Every request declares ``api_version`` (wire protocol v1), so error
responses arrive as the structured ``{"error": {"code", "message",
"retryable"}}`` object and surface as :class:`ReproAPIError` (or the
:class:`ReproOverloadError` subclass for 429, which the client retries
automatically with the server's ``retry_after_ms`` hint before giving
up). Transport failures raise :class:`ReproConnectionError`; a dropped
keep-alive connection is reopened and the request retried once —
``/localize`` is a pure function of its payload, so the retry is safe.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..serve.protocol import API_VERSION


class ReproError(Exception):
    """Base class of every error this client raises."""


class ReproConnectionError(ReproError):
    """The server could not be reached (or dropped mid-request)."""


class ReproAPIError(ReproError):
    """The server answered with a structured (non-2xx) error.

    Attributes mirror wire protocol v1's error object: ``status`` is
    the HTTP status, ``code`` the machine-readable error code,
    ``retryable`` whether the identical request can succeed later, and
    ``payload`` the full decoded response body. ``request_id`` is the
    server-echoed correlation id (``None`` from pre-observability
    servers) — it appears in ``str(exc)`` so a client-side stack trace
    can be joined to the server's structured log and ``/metrics``
    counters without re-running anything.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retryable: bool = False,
        payload: dict | None = None,
    ) -> None:
        request_id = (payload or {}).get("request_id")
        self.request_id = request_id if isinstance(request_id, str) else None
        suffix = f" (request_id={self.request_id})" if self.request_id else ""
        super().__init__(f"[{status} {code}] {message}{suffix}")
        self.status = status
        self.code = code
        self.message = message
        self.retryable = retryable
        self.payload = payload or {}


class ReproOverloadError(ReproAPIError):
    """HTTP 429: the admission queue is full right now.

    Raised only after the client's automatic retries are exhausted.
    ``retry_after_ms`` carries the server's last backoff hint.
    """

    def __init__(self, status: int, code: str, message: str, *,
                 payload: dict | None = None) -> None:
        super().__init__(
            status, code, message, retryable=True, payload=payload
        )
        self.retry_after_ms = float((payload or {}).get("retry_after_ms", 50))


@dataclass
class LocalizeResult:
    """One ``/localize`` answer: the coordinate plus fleet routing."""

    location: np.ndarray
    #: Fleet mode only: ``{"building", "floor", "forced"}``; ``None``
    #: against a single-model server.
    routing: dict | None = None
    #: Per-stage span timings when the request opted in with
    #: ``trace=True``: ``{"request_id", "total_ms", "spans"}``.
    trace: dict | None = None
    raw: dict = field(default_factory=dict)


@dataclass
class LocalizeBatchResult:
    """One ``/localize_batch`` answer: ``(n, 2)`` coordinates + routing."""

    locations: np.ndarray
    n: int
    #: Fleet mode only: one routing entry per row.
    routing: list | None = None
    #: Per-stage span timings when the request opted in with
    #: ``trace=True``.
    trace: dict | None = None
    raw: dict = field(default_factory=dict)


def _error_fields(status: int, payload: dict) -> tuple[str, str, bool]:
    """Extract (code, message, retryable) from the v1 error object.

    The structured object is the only shape the servers emit (the
    legacy string/``error_detail`` forms are retired); the fallback
    covers non-repro proxies answering in front of the server.
    """
    err = payload.get("error")
    if isinstance(err, dict):
        return (
            str(err.get("code", "error")),
            str(err.get("message", "")),
            bool(err.get("retryable", False)),
        )
    return "error", str(err if err is not None else payload), status == 429


class ReproClient:
    """Keep-alive HTTP client for the single-model and fleet servers.

    Parameters
    ----------
    host / port:
        The server's bind address (``repro serve`` defaults).
    timeout:
        Socket timeout in seconds for each request.
    max_retries:
        How many times a 429, a retryable 503 (fleet worker
        respawning) or a dropped connection is retried before the
        error surfaces. ``0`` disables retrying.
    retry_backoff_s:
        Fallback sleep between retries when the server sends no
        ``retry_after_ms`` hint; each retry doubles it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        timeout: float = 30.0,
        max_retries: int = 3,
        retry_backoff_s: float = 0.05,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff_s = retry_backoff_s
        self.api_version = API_VERSION
        #: Requests that received an HTTP response (any status).
        self.requests_sent = 0
        #: Automatic retries performed (429 backoffs + reconnects).
        self.retries = 0
        self._conn: http.client.HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, **kwargs) -> ReproClient:
        """Build from ``"http://host:port"`` (scheme optional).

        Only plain HTTP is spoken; an ``https://`` URL is rejected
        rather than silently downgraded, and so is a URL with a path —
        the servers route on absolute paths only.
        """
        stripped = url.strip()
        if stripped.startswith("https://"):
            raise ValueError(
                f"{url!r}: https is not supported; the serving layer "
                f"speaks plain HTTP (terminate TLS in front of it)"
            )
        if stripped.startswith("http://"):
            stripped = stripped[len("http://"):]
        stripped = stripped.rstrip("/")
        if "/" in stripped:
            raise ValueError(
                f"{url!r}: URL paths are not supported; "
                f"pass just http://host:port"
            )
        host, _, port = stripped.partition(":")
        return cls(host=host or "127.0.0.1",
                   port=int(port) if port else 8000, **kwargs)

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            with contextlib.suppress(OSError):  # pragma: no cover - teardown
                self._conn.close()
            self._conn = None

    def _once(self, method: str, path: str,
              body: bytes | None) -> tuple[int, dict]:
        conn = self._connection()
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        self.requests_sent += 1
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError as exc:
            raise ReproConnectionError(
                f"non-JSON response from {self.host}:{self.port}: {exc}"
            ) from exc
        return response.status, payload

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        """One request/response cycle with reconnect + 429 retry."""
        body: bytes | None = None
        if payload is not None:
            body = json.dumps(
                {"api_version": self.api_version, **payload}
            ).encode("utf-8")
        attempts = self.max_retries + 1
        backoff_s = self.retry_backoff_s
        busy_status = 429
        last_busy: dict | None = None
        for attempt in range(attempts):
            try:
                status, answer = self._once(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                # A kept-alive connection the server idled out is the
                # common cause; reopen and retry on a fresh socket.
                self._drop_connection()
                if attempt + 1 >= attempts:
                    raise ReproConnectionError(
                        f"request to http://{self.host}:{self.port}{path} "
                        f"failed: {exc}"
                    ) from exc
                self.retries += 1
                continue
            # 429 (admission queue full) and retryable 503 (a fleet
            # worker crashed; its slot is respawning warm) both mean
            # "the identical request succeeds shortly" — back off with
            # the server's hint and retry.
            if status == 429 or (
                status == 503
                and bool((answer.get("error") or {}).get("retryable"))
            ):
                busy_status, last_busy = status, answer
                if attempt + 1 >= attempts:
                    break
                hint_ms = answer.get("retry_after_ms")
                sleep_s = (
                    float(hint_ms) / 1e3 if hint_ms is not None else backoff_s
                )
                backoff_s *= 2
                self.retries += 1
                time.sleep(sleep_s)
                continue
            if status >= 400:
                code, message, retryable = _error_fields(status, answer)
                raise ReproAPIError(
                    status, code, message, retryable=retryable, payload=answer
                )
            return answer
        code, message, _ = _error_fields(busy_status, last_busy or {})
        if busy_status == 429:
            raise ReproOverloadError(429, code, message, payload=last_busy)
        raise ReproAPIError(
            busy_status, code, message, retryable=True, payload=last_busy
        )

    # -- endpoints ---------------------------------------------------------

    def localize(
        self,
        scan: Sequence[float] | np.ndarray,
        *,
        building: str | None = None,
        floor: int | None = None,
        trace: bool = False,
        request_id: str | None = None,
    ) -> LocalizeResult:
        """``POST /localize``: one scan row → one coordinate.

        ``building``/``floor`` pin fleet routing (fleet servers only);
        a single-model server rejects unknown fields by ignoring them.
        ``trace=True`` asks the server for per-stage span timings
        (``result.trace``); ``request_id`` pins the correlation id
        instead of letting the server mint one.
        """
        payload: dict[str, Any] = {"rssi": np.asarray(scan).tolist()}
        if building is not None:
            payload["building"] = building
        if floor is not None:
            payload["floor"] = floor
        if trace:
            payload["trace"] = True
        if request_id is not None:
            payload["request_id"] = request_id
        answer = self._request("POST", "/localize", payload)
        return LocalizeResult(
            location=np.asarray(answer["location"], dtype=np.float64),
            routing=answer.get("routing"),
            trace=answer.get("trace"),
            raw=answer,
        )

    def localize_batch(
        self,
        scans: Sequence[Sequence[float]] | np.ndarray,
        *,
        building: str | None = None,
        floor: int | None = None,
        trace: bool = False,
        request_id: str | None = None,
    ) -> LocalizeBatchResult:
        """``POST /localize_batch``: ``(n, n_aps)`` scans → ``(n, 2)``."""
        payload: dict[str, Any] = {"rssi": np.asarray(scans).tolist()}
        if building is not None:
            payload["building"] = building
        if floor is not None:
            payload["floor"] = floor
        if trace:
            payload["trace"] = True
        if request_id is not None:
            payload["request_id"] = request_id
        answer = self._request("POST", "/localize_batch", payload)
        return LocalizeBatchResult(
            locations=np.asarray(answer["locations"], dtype=np.float64),
            n=int(answer["n"]),
            routing=answer.get("routing"),
            trace=answer.get("trace"),
            raw=answer,
        )

    def observe(
        self,
        scans: Sequence[Sequence[float]] | np.ndarray,
        locations: Sequence[Sequence[float]] | np.ndarray,
        *,
        building: str,
        floor: int,
        request_id: str | None = None,
    ) -> dict:
        """``POST /observe``: labeled scans into a slot's live buffer.

        ``scans`` is ``(n, fleet_aps)`` — the same rows ``/localize``
        takes — and ``locations`` the matching ``(n, 2)`` ground-truth
        coordinates. Unlike localization, observations are facts about
        one deployment slot, so ``building`` and ``floor`` are required.
        The answer reports the slot's serving version and buffer depth;
        a drift-triggered refit/hot-swap happens asynchronously behind
        it (fleet servers only).
        """
        payload: dict[str, Any] = {
            "rssi": np.asarray(scans).tolist(),
            "locations": np.asarray(locations).tolist(),
            "building": building,
            "floor": floor,
        }
        if request_id is not None:
            payload["request_id"] = request_id
        return self._request("POST", "/observe", payload)

    def metrics_text(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition."""
        conn = self._connection()
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        data = response.read()
        self.requests_sent += 1
        if response.status != 200:
            try:
                payload = json.loads(data)
            except json.JSONDecodeError:
                payload = {}
            code, message, retryable = _error_fields(response.status, payload)
            raise ReproAPIError(
                response.status, code, message,
                retryable=retryable, payload=payload,
            )
        return data.decode("utf-8")

    def healthz(self) -> dict:
        """``GET /healthz``: liveness, counters and ``api_version``."""
        return self._request("GET", "/healthz")

    def models(self) -> dict:
        """``GET /models``: warm store entries + dispatcher counters."""
        return self._request("GET", "/models")

    def fleet(self) -> dict:
        """``GET /fleet``: fleet topology (fleet servers only)."""
        return self._request("GET", "/fleet")

    def server_api_version(self) -> int:
        """The wire-protocol version the server reports (negotiation)."""
        return int(self.healthz().get("api_version", 0))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the kept-alive connection (the client stays usable)."""
        self._drop_connection()

    def __enter__(self) -> ReproClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "ReproClient",
    "ReproError",
    "ReproConnectionError",
    "ReproAPIError",
    "ReproOverloadError",
    "LocalizeResult",
    "LocalizeBatchResult",
]
