"""``repro.api`` — the one typed, versioned public surface.

Everything a client builds against lives here; the layers underneath
(:mod:`repro.eval`, :mod:`repro.serve`, :mod:`repro.fleet`) are
implementation and may move between releases. The surface has four
parts:

* **Specs** (:mod:`~repro.api.config`) — frozen, typed descriptions of
  what to build: :class:`LocalizerSpec`, :class:`IndexSpec`,
  :class:`ServeSpec`, :class:`FleetSpec`. Every spec round-trips
  through ``to_dict``/``from_dict`` and has a canonical
  ``fingerprint()``; ``LocalizerSpec.model_key(suite)`` reproduces the
  serving layer's content-addressed artifact identity exactly, so
  pre-existing cached fits stay warm.
* **Session** (:mod:`~repro.api.session`) —
  :class:`LocalizationSession` exposes ``fit`` / ``localize`` /
  ``localize_batch`` / ``stats`` identically over an in-process model
  and a remote server; answers are bit-identical between the two.
* **Client** (:mod:`~repro.api.client`) — :class:`ReproClient`, the
  stdlib keep-alive HTTP client with typed errors and automatic
  backoff on 429.
* **Wire protocol v1** — :data:`API_VERSION`; every request declares
  ``api_version`` and errors arrive as the structured envelope
  (version-less legacy requests are rejected with a migration hint).
* **Scenarios** (:mod:`repro.synth`) — :class:`ScenarioSpec` (with the
  :func:`quick_city` / :func:`full_city` presets) describes a whole
  synthetic city in the same frozen/fingerprinted spec grammar;
  generation is deterministic per ``(spec.fingerprint(), seed)``.

Quickstart::

    from repro.api import LocalizerSpec, LocalizationSession
    from repro.datasets import generate_path_suite

    suite = generate_path_suite("office", seed=0)
    spec = LocalizerSpec(framework="KNN", suite_name="office", fast=True)
    with LocalizationSession.local(spec, suite) as session:
        print(session.localize(suite.test_epochs[0].rssi[0]))

Legacy entry points (``repro.baselines.make_localizer``, raw version-
less HTTP payloads) keep working for one release behind
``DeprecationWarning`` shims; see ``docs/api.md`` for the migration
table.
"""

from ..serve.protocol import API_VERSION
from ..synth.spec import ScenarioSpec, full_city, quick_city
from .client import (
    LocalizeBatchResult,
    LocalizeResult,
    ReproAPIError,
    ReproClient,
    ReproConnectionError,
    ReproError,
    ReproOverloadError,
)
from .config import FleetSpec, IndexSpec, LocalizerSpec, ServeSpec, engine_index
from .session import (
    LocalizationSession,
    LocalLocalizationSession,
    RemoteLocalizationSession,
)

__all__ = [
    "API_VERSION",
    "FleetSpec",
    "IndexSpec",
    "LocalizeBatchResult",
    "LocalizeResult",
    "LocalizerSpec",
    "LocalizationSession",
    "LocalLocalizationSession",
    "RemoteLocalizationSession",
    "ReproAPIError",
    "ReproClient",
    "ReproConnectionError",
    "ReproError",
    "ReproOverloadError",
    "ScenarioSpec",
    "ServeSpec",
    "engine_index",
    "full_city",
    "quick_city",
]
