"""Process-local metrics registry with Prometheus text exposition.

Dependency-free observability primitives for the serving stack:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — labeled
  metric families. Children (one per label-value tuple) are cached on
  first use and updated under a per-child lock, so hot-path recording
  is one dict hit plus one locked float add — cheap enough for the
  serve hot path (``benchmarks/bench_obs.py`` pins the overhead at
  <= 5% of request p50).
* :class:`MetricsRegistry` — a named collection of metric families.
  ``registry.counter(name, ...)`` is idempotent (same name + same
  shape returns the existing family), so layers that are wired
  independently (HTTP server, dispatcher, worker pool) can share one
  registry without coordination. A registry built with
  ``enabled=False`` hands out no-op children — the metrics-off arm of
  the overhead bench, and the escape hatch for benchmarks that want
  zero instrumentation.
* :class:`MetricsSnapshot` — a picklable, mergeable copy of a
  registry's state. Fleet worker processes keep their own registries
  and ship snapshots back over the existing pipe protocol; the parent
  merges them into its own snapshot at ``/metrics`` scrape time
  (counters and histogram bins add, gauges add — worker gauges are
  per-process quantities like queue depths, so summing is the fleet
  view).
* :func:`MetricsSnapshot.to_text` — Prometheus text exposition
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, escaped label
  values, cumulative ``_bucket`` series with ``+Inf``, ``_sum`` and
  ``_count``. :func:`parse_prometheus_text` is the matching validating
  parser (tests and the bench use it to pin the format).

Metrics are strictly *off* the bit-identity invariant: nothing in this
module ever enters a fingerprint, cache key or model artifact.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Default latency buckets, in seconds. Chosen for a serving stack
#: whose request latencies span ~0.2 ms (warm micro-batch hit) to
#: seconds (overloaded fleet): roughly logarithmic, 14 buckets.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def format_float(value: float) -> str:
    """Render a sample value the way Prometheus expects.

    Integral values print without a trailing ``.0`` (``17`` not
    ``17.0``); infinities as ``+Inf``/``-Inf``.
    """
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _NoopChild:
    """The child every disabled metric hands out — records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_CHILD = _NoopChild()


class _CounterChild:
    """One (label-values) cell of a counter family."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class _GaugeChild:
    """One cell of a gauge family (set/inc/dec)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class _HistogramChild:
    """One cell of a histogram family: fixed buckets + sum + count."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.bounds = bounds
        # counts[i] observations in (bounds[i-1], bounds[i]];
        # counts[-1] is the +Inf overflow bin (non-cumulative).
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class _MetricFamily:
    """Shared plumbing: child cache keyed by label-value tuples."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus's own field name
        labelnames: tuple[str, ...] = (),
        *,
        enabled: bool = True,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._enabled = enabled
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values):
        """The child cell for these label values (created on first use)."""
        if not self._enabled:
            return _NOOP_CHILD
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {self.labelnames}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    @property
    def _default(self):
        """The label-less cell (only valid when labelnames is empty)."""
        return self.labels()

    def _child_data(self, child):
        raise NotImplementedError

    def snapshot_children(self) -> dict:
        return {
            key: self._child_data(child)
            for key, child in sorted(self._children.items())
        }


class Counter(_MetricFamily):
    """Monotonically increasing count (events, rows, errors)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def _child_data(self, child: _CounterChild) -> float:
        with child._lock:
            return child.value


class Gauge(_MetricFamily):
    """A value that goes up and down (queue depth, liveness)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def _child_data(self, child: _GaugeChild) -> float:
        with child._lock:
            return child.value


class Histogram(_MetricFamily):
    """Fixed-bucket distribution (latencies, batch sizes).

    ``buckets`` are strictly increasing finite upper bounds; an
    implicit ``+Inf`` bucket catches the overflow. The same bucket
    schema is reused by the load generator's latency report so stress
    runs and live ``/metrics`` scrapes are directly comparable.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        enabled: bool = True,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        super().__init__(name, help, labelnames, enabled=enabled)
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def _child_data(self, child: _HistogramChild) -> dict:
        with child._lock:
            return {
                "buckets": self.buckets,
                "counts": list(child.counts),
                "sum": child.sum,
                "count": child.count,
            }


def histogram_percentile(data: dict, q: float) -> float:
    """Estimate the ``q``-quantile (``0 < q < 1``) from histogram data.

    ``data`` is the snapshot form (``buckets``/``counts``/``count``).
    Linear interpolation inside the containing bucket; observations in
    the ``+Inf`` overflow bin report the last finite bound (the
    histogram cannot resolve beyond its top bucket). Returns ``0.0``
    for an empty histogram.
    """
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    total = data["count"]
    if total == 0:
        return 0.0
    bounds = data["buckets"]
    counts = data["counts"]
    rank = q * total
    cumulative = 0.0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= rank:
            if i >= len(bounds):
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = (rank - cumulative) / n
            return float(lower + (upper - lower) * fraction)
        cumulative += n
    return float(bounds[-1])


@dataclass
class MetricsSnapshot:
    """A frozen, picklable, mergeable copy of a registry's state.

    ``metrics`` maps family name to ``{"kind", "help", "labelnames",
    "children"}`` where ``children`` maps label-value tuples to plain
    values (counter/gauge) or histogram data dicts. Everything inside
    is builtin types, so a snapshot crosses the fleet's worker pipes
    as-is.
    """

    metrics: dict = field(default_factory=dict)

    def merge(self, other: MetricsSnapshot) -> MetricsSnapshot:
        """Fold ``other`` into this snapshot (sums, in place).

        Counters and histogram bins add; gauges add too — a worker's
        gauge is a per-process quantity (its share of queue depth,
        resident rows), so the fleet-level value is the sum. Families
        unknown to ``self`` are copied over; mismatched kinds or
        bucket schemas raise rather than silently corrupting.
        """
        for name, theirs in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = {
                    "kind": theirs["kind"],
                    "help": theirs["help"],
                    "labelnames": tuple(theirs["labelnames"]),
                    "children": {
                        key: _copy_child(value)
                        for key, value in theirs["children"].items()
                    },
                }
                continue
            if mine["kind"] != theirs["kind"]:
                raise ValueError(
                    f"cannot merge {name!r}: kind {mine['kind']} vs "
                    f"{theirs['kind']}"
                )
            if tuple(mine["labelnames"]) != tuple(theirs["labelnames"]):
                raise ValueError(
                    f"cannot merge {name!r}: label names differ"
                )
            children = mine["children"]
            for key, value in theirs["children"].items():
                held = children.get(key)
                if held is None:
                    children[key] = _copy_child(value)
                elif isinstance(held, dict):
                    if tuple(held["buckets"]) != tuple(value["buckets"]):
                        raise ValueError(
                            f"cannot merge {name!r}: bucket schemas differ"
                        )
                    held["counts"] = [
                        a + b for a, b in zip(held["counts"], value["counts"])
                    ]
                    held["sum"] += value["sum"]
                    held["count"] += value["count"]
                else:
                    children[key] = held + value
        return self

    def as_dict(self) -> dict:
        """JSON-ready view: label values joined into ``a="x",b="y"`` keys."""
        out: dict = {}
        for name, family in sorted(self.metrics.items()):
            children = {}
            for key, value in family["children"].items():
                label = ",".join(
                    f'{ln}="{_escape_label_value(lv)}"'
                    for ln, lv in zip(family["labelnames"], key)
                )
                children[label] = (
                    {
                        "buckets": list(value["buckets"]),
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                    if isinstance(value, dict)
                    else value
                )
            out[name] = {"kind": family["kind"], "children": children}
        return out

    def to_text(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for name, family in sorted(self.metrics.items()):
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            labelnames = tuple(family["labelnames"])
            for key, value in family["children"].items():
                base = _label_string(labelnames, key)
                if isinstance(value, dict):
                    cumulative = 0
                    for bound, count in zip(
                        value["buckets"], value["counts"]
                    ):
                        cumulative += count
                        bucket = _label_string(
                            labelnames + ("le",),
                            key + (format_float(bound),),
                        )
                        lines.append(
                            f"{name}_bucket{bucket} {cumulative}"
                        )
                    bucket = _label_string(
                        labelnames + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{bucket} {value['count']}")
                    lines.append(
                        f"{name}_sum{base} {format_float(value['sum'])}"
                    )
                    lines.append(f"{name}_count{base} {value['count']}")
                else:
                    lines.append(f"{name}{base} {format_float(value)}")
        return "\n".join(lines) + "\n"


def _copy_child(value):
    if isinstance(value, dict):
        return {
            "buckets": tuple(value["buckets"]),
            "counts": list(value["counts"]),
            "sum": value["sum"],
            "count": value["count"],
        }
    return value


def _label_string(labelnames: tuple, labelvalues: tuple) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """A named collection of metric families, one per process.

    ``enabled=False`` builds a registry whose families hand out no-op
    children — every recording site stays in place and costs one
    attribute load plus an early return (the metrics-off arm the
    overhead bench compares against).
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._families: dict[str, _MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name, help, labelnames, **kwargs):  # noqa: A002
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)
                    or kwargs.get("buckets", getattr(existing, "buckets", None))
                    != getattr(existing, "buckets", None)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different shape"
                    )
                return existing
            family = cls(
                name, help, tuple(labelnames), enabled=self.enabled, **kwargs
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: tuple[str, ...] = (),
    ) -> Counter:
        """Get-or-create a counter family (idempotent per name)."""
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: tuple[str, ...] = (),
    ) -> Gauge:
        """Get-or-create a gauge family (idempotent per name)."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get-or-create a histogram family (idempotent per name)."""
        return self._register(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    def snapshot(self) -> MetricsSnapshot:
        """A mergeable, picklable copy of every family's current state."""
        with self._lock:
            families = list(self._families.values())
        return MetricsSnapshot(
            metrics={
                family.name: {
                    "kind": family.kind,
                    "help": family.help,
                    "labelnames": family.labelnames,
                    "children": family.snapshot_children(),
                }
                for family in families
            }
        )


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_prometheus_text(text: str) -> dict:
    """Parse (and validate) text exposition back into samples.

    Returns ``{family_name: {"type": kind, "samples": {(sample_name,
    labels_tuple): value}}}``. Raises ``ValueError`` on malformed
    lines, samples preceding their ``# TYPE``, or histogram bucket
    series whose cumulative counts decrease — the shape checks the
    format tests and the bench gate rely on.
    """
    families: dict = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            families[name] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
                family_name = sample_name[: -len(suffix)]
                break
        if family_name not in types:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} precedes its TYPE"
            )
        raw = match.group("labels")
        labels: tuple = ()
        if raw:
            pos = 0
            pairs = []
            while pos < len(raw):
                pair = _LABEL_PAIR_RE.match(raw, pos)
                if pair is None:
                    raise ValueError(
                        f"line {lineno}: malformed labels {raw!r}"
                    )
                pairs.append((pair.group(1), pair.group(2)))
                pos = pair.end()
            labels = tuple(pairs)
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        families[family_name]["samples"][(sample_name, labels)] = value
    _check_histograms(families)
    return families


def _check_histograms(families: dict) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: dict[tuple, list[tuple[float, float]]] = {}
        for (sample_name, labels), value in family["samples"].items():
            if not sample_name.endswith("_bucket"):
                continue
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"{name}: bucket sample without le label")
            bound = math.inf if le == "+Inf" else float(le)
            base = tuple(pair for pair in labels if pair[0] != "le")
            series.setdefault(base, []).append((bound, value))
        for base, buckets in series.items():
            buckets.sort()
            if buckets[-1][0] != math.inf:
                raise ValueError(f"{name}: histogram missing +Inf bucket")
            counts = [count for _, count in buckets]
            if any(b < a for a, b in zip(counts, counts[1:])):
                raise ValueError(
                    f"{name}: cumulative bucket counts decrease"
                )
            count_value = family["samples"].get((f"{name}_count", base))
            if count_value is not None and count_value != counts[-1]:
                raise ValueError(
                    f"{name}: _count disagrees with +Inf bucket"
                )


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "format_float",
    "histogram_percentile",
    "parse_prometheus_text",
]
