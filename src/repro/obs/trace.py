"""Request tracing: ids and per-stage span timings.

A ``request_id`` is minted (or accepted from the client) when a request
is admitted at the HTTP layer and rides along through every serving
layer — frontend routing, worker pipes, per-slot micro-batching — so
one slow request can be followed across processes in the structured
log, the error envelope, and the response's opt-in ``trace`` field.

The :class:`Trace` object is deliberately tiny: a list of
``{"stage", "ms"}`` spans appended with :meth:`Trace.add`. It is
single-owner per request (built on the event loop, handed by reference
into coroutines that serve that one request), so it needs no lock.
Stage timings use ``time.perf_counter`` at the call sites; the trace
only stores the resulting durations.
"""

from __future__ import annotations

import os
import re

#: Client-supplied request ids must match this: printable, no spaces,
#: bounded length — safe to echo into logs, labels and JSON.
REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_.:-]{1,64}$")


def new_request_id() -> str:
    """A fresh 16-hex-char request id (collision-safe per deployment).

    64 random bits straight from ``os.urandom`` — same entropy a
    truncated uuid4 would carry at ~a fifth of the cost, which matters
    because an id is minted on every admitted request.
    """
    return os.urandom(8).hex()


def valid_request_id(value: object) -> bool:
    """True when ``value`` is usable as a client-supplied request id."""
    return isinstance(value, str) and REQUEST_ID_RE.match(value) is not None


class Trace:
    """Per-stage span timings for one request.

    ``add(stage, seconds, **extra)`` appends a span; ``to_dict()``
    renders the wire form attached to responses under ``"trace"``:

        {"request_id": "ab12...", "total_ms": 3.2,
         "spans": [{"stage": "admission", "ms": 0.1},
                   {"stage": "compute", "ms": 2.9, "slot": "b0/f1"}]}

    Durations are reported in milliseconds rounded to 3 decimals —
    they are diagnostics, never inputs to anything fingerprinted.
    """

    __slots__ = ("request_id", "spans")

    def __init__(self, request_id: str | None = None) -> None:
        self.request_id = request_id or new_request_id()
        self.spans: list[dict] = []

    def add(self, stage: str, seconds: float, **extra) -> None:
        """Record one span; ``extra`` adds fields like ``slot=...``."""
        span = {"stage": stage, "ms": round(seconds * 1e3, 3)}
        if extra:
            span.update(extra)
        self.spans.append(span)

    def to_dict(self, *, total_s: float | None = None) -> dict:
        """Wire form. ``total_s`` overrides the summed-span total with
        a measured wall-clock duration (spans can overlap or leave
        gaps, so the sum is only an approximation)."""
        total_ms = (
            total_s * 1e3
            if total_s is not None
            else sum(span["ms"] for span in self.spans)
        )
        return {
            "request_id": self.request_id,
            "total_ms": round(total_ms, 3),
            "spans": list(self.spans),
        }


__all__ = ["REQUEST_ID_RE", "Trace", "new_request_id", "valid_request_id"]
