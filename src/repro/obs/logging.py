"""Structured JSON logging with a slow-request sampler.

One line of JSON per event on a chosen stream (stderr by default), no
``logging`` module configuration to fight over, and an explicit
``enabled`` switch so the serving stack can thread a logger through
every layer unconditionally and let ``--log-json`` decide whether
anything is emitted.

The request-line sampler keeps production logs proportionate: errors
(status >= 400) are always logged; successes are logged only when they
are slow (``duration_ms >= slow_ms``) or when no threshold is set.
"""

from __future__ import annotations

import json
import sys
import threading
import time


class JsonLogger:
    """Line-per-event JSON logger for one component.

    Parameters
    ----------
    component:
        Stamped on every line (``"serve"``, ``"fleet"``, ``"worker"``).
    enabled:
        When false, every method returns immediately — recording
        sites stay in place at near-zero cost.
    slow_ms:
        Slow-request threshold for :meth:`request`. ``None`` logs
        every request; a number drops successful requests faster
        than the threshold (errors always log).
    stream:
        Target text stream; defaults to ``sys.stderr`` (resolved at
        emit time so pytest's capture replacement is honored).
    """

    def __init__(
        self,
        component: str,
        *,
        enabled: bool = False,
        slow_ms: float | None = None,
        stream=None,
    ) -> None:
        self.component = component
        self.enabled = bool(enabled)
        self.slow_ms = None if slow_ms is None else float(slow_ms)
        self._stream = stream
        self._lock = threading.Lock()

    def child(self, component: str) -> JsonLogger:
        """A logger for a sub-component sharing this one's settings."""
        return JsonLogger(
            component,
            enabled=self.enabled,
            slow_ms=self.slow_ms,
            stream=self._stream,
        )

    def event(self, event: str, **fields) -> None:
        """Emit one JSON line: ``{"ts", "component", "event", ...}``."""
        if not self.enabled:
            return
        record = {
            "ts": round(time.time(), 3),
            "component": self.component,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")

    def request(
        self,
        *,
        request_id: str,
        endpoint: str,
        status: int,
        duration_ms: float,
        **fields,
    ) -> None:
        """One served request, subject to the slow-request sampler.

        Errors (status >= 400) always log; successes log when no
        ``slow_ms`` threshold is set or the request met it.
        """
        if not self.enabled:
            return
        if (
            status < 400
            and self.slow_ms is not None
            and duration_ms < self.slow_ms
        ):
            return
        self.event(
            "request",
            request_id=request_id,
            endpoint=endpoint,
            status=int(status),
            duration_ms=round(duration_ms, 3),
            **fields,
        )


__all__ = ["JsonLogger"]
