"""`repro.obs` — dependency-free observability for the serving stack.

Three small pieces, threaded through every serving layer:

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms in a
  process-local :class:`MetricsRegistry`; picklable, mergeable
  :class:`MetricsSnapshot` (worker processes ship theirs back over the
  fleet pipe protocol) with Prometheus text exposition for the
  ``/metrics`` endpoint.
* :mod:`repro.obs.trace` — request ids and per-stage span timings,
  attached to responses under ``"trace"`` when the request opts in.
* :mod:`repro.obs.logging` — structured JSON log lines with a
  slow-request sampler (``--log-json`` / ``--slow-ms``).

House rule: nothing here ever enters a fingerprint, cache key or model
artifact — observability is strictly off the bit-identity invariant.
"""

from .logging import JsonLogger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    histogram_percentile,
    parse_prometheus_text,
)
from .trace import Trace, new_request_id, valid_request_id

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Trace",
    "histogram_percentile",
    "new_request_id",
    "parse_prometheus_text",
    "valid_request_id",
]
