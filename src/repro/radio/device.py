"""Mobile-device measurement characteristics.

The paper collects with a single LG V20, so device heterogeneity is not a
studied variable — but the sampler still models the *device-side* part of
the measurement chain (RSSI offset, quantization, detection threshold) so
that substituting a different profile exercises the heterogeneity concern
raised in Sec. II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .access_point import DEFAULT_DETECTION_THRESHOLD_DBM, NO_SIGNAL_DBM


@dataclass(frozen=True)
class DeviceProfile:
    """An RSSI measurement chain for one phone model.

    Attributes
    ----------
    name:
        Device label.
    rssi_offset_db:
        Constant chipset bias added to every reading.
    gain_slope:
        Multiplicative distortion of signal dynamics around -70 dBm
        (1.0 = faithful; real chipsets compress strong signals slightly).
    noise_std_db:
        Receiver measurement noise per scan.
    detection_threshold_dbm:
        Signals below this are not reported by the WiFi scan at all.
    quantization_db:
        Reported RSSI granularity (Android reports whole dB).
    """

    name: str = "lg-v20"
    rssi_offset_db: float = 0.0
    gain_slope: float = 1.0
    noise_std_db: float = 1.0
    detection_threshold_dbm: float = DEFAULT_DETECTION_THRESHOLD_DBM
    quantization_db: float = 1.0

    def __post_init__(self) -> None:
        if self.gain_slope <= 0:
            raise ValueError("gain_slope must be positive")
        if self.noise_std_db < 0 or self.quantization_db < 0:
            raise ValueError("noise/quantization must be non-negative")
        if not NO_SIGNAL_DBM < self.detection_threshold_dbm <= 0:
            raise ValueError("detection threshold must be in (-100, 0]")

    def measure(
        self, true_rssi_dbm: float, rng: np.random.Generator
    ) -> float:
        """One reported RSSI reading for a true received power.

        Returns ``NO_SIGNAL_DBM`` (-100) when the signal falls below the
        detection threshold after noise — the paper's convention for
        unobserved APs (Sec. IV.A).
        """
        anchored = -70.0 + (true_rssi_dbm + 70.0) * self.gain_slope
        reading = anchored + self.rssi_offset_db
        if self.noise_std_db > 0:
            reading += rng.normal(0.0, self.noise_std_db)
        if reading < self.detection_threshold_dbm:
            return NO_SIGNAL_DBM
        if self.quantization_db > 0:
            reading = round(reading / self.quantization_db) * self.quantization_db
        return float(np.clip(reading, NO_SIGNAL_DBM, 0.0))

    def measure_array(
        self, true_rssi_dbm: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized :meth:`measure` over an array of true powers."""
        true = np.asarray(true_rssi_dbm, dtype=np.float64)
        anchored = -70.0 + (true + 70.0) * self.gain_slope
        reading = anchored + self.rssi_offset_db
        if self.noise_std_db > 0:
            reading = reading + rng.normal(0.0, self.noise_std_db, size=reading.shape)
        if self.quantization_db > 0:
            quantized = np.round(reading / self.quantization_db) * self.quantization_db
        else:
            quantized = reading
        out = np.clip(quantized, NO_SIGNAL_DBM, 0.0)
        out[reading < self.detection_threshold_dbm] = NO_SIGNAL_DBM
        return out


#: A couple of ready-made profiles for heterogeneity experiments.
DEVICE_PRESETS = {
    "lg-v20": DeviceProfile(name="lg-v20"),
    "pixel-2": DeviceProfile(
        name="pixel-2", rssi_offset_db=-2.5, gain_slope=0.95, noise_std_db=1.2
    ),
    "galaxy-s7": DeviceProfile(
        name="galaxy-s7", rssi_offset_db=3.0, gain_slope=1.05, noise_std_db=0.9
    ),
}
