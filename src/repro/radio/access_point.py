"""WiFi access points and deployment generation."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from ..geometry.floorplan import Floorplan

NO_SIGNAL_DBM = -100.0
DEFAULT_DETECTION_THRESHOLD_DBM = -95.0


@dataclass(frozen=True)
class AccessPoint:
    """A deployed WiFi access point.

    ``generation`` distinguishes an original AP from its replacement: when
    network administrators swap hardware, the BSSID changes and the old
    fingerprint dimension permanently reads "no signal" while a new
    dimension lights up — exactly the catastrophic fingerprint change the
    paper studies (Sec. IV.C). The replacement keeps the slot but changes
    location/power, so we bump ``generation`` instead of allocating a new
    column (the column count is fixed by the offline phase).
    """

    ap_id: int
    location: tuple[float, float]
    tx_power_dbm: float = -8.0
    channel: int = 1
    generation: int = 0

    def __post_init__(self) -> None:
        if self.ap_id < 0:
            raise ValueError("ap_id must be non-negative")
        if not -40.0 <= self.tx_power_dbm <= 0.0:
            raise ValueError(
                f"tx_power_dbm {self.tx_power_dbm} outside plausible [-40, 0] range"
            )

    def replaced(
        self,
        *,
        location: tuple[float, float] | None = None,
        tx_power_dbm: float | None = None,
        channel: int | None = None,
    ) -> AccessPoint:
        """A next-generation AP occupying the same fingerprint slot."""
        return replace(
            self,
            location=location if location is not None else self.location,
            tx_power_dbm=tx_power_dbm if tx_power_dbm is not None else self.tx_power_dbm,
            channel=channel if channel is not None else self.channel,
            generation=self.generation + 1,
        )


def place_access_points(
    floorplan: Floorplan,
    n_aps: int,
    rng: np.random.Generator,
    *,
    tx_power_dbm: tuple[float, float] = (-14.0, -2.0),
    indoor_fraction: float = 0.7,
    outside_margin: float = 6.0,
) -> list[AccessPoint]:
    """Scatter ``n_aps`` access points in and around a floorplan.

    Real buildings see APs both on the surveyed floor and in neighbouring
    spaces (other floors, adjacent wings) whose signals bleed in weakly;
    ``indoor_fraction`` of APs land inside the bounds, the rest in a margin
    band around them. Channels cycle over the 2.4 GHz non-overlapping set.
    """
    if n_aps <= 0:
        raise ValueError("n_aps must be positive")
    if not 0.0 <= indoor_fraction <= 1.0:
        raise ValueError("indoor_fraction must be in [0, 1]")
    aps: list[AccessPoint] = []
    n_inside = int(round(n_aps * indoor_fraction))
    for ap_id in range(n_aps):
        if ap_id < n_inside:
            x = rng.uniform(0.0, floorplan.width)
            y = rng.uniform(0.0, floorplan.height)
        else:
            # Ring around the floorplan: offset one side at random.
            side = rng.integers(0, 4)
            if side == 0:
                x = rng.uniform(-outside_margin, 0.0)
                y = rng.uniform(-outside_margin, floorplan.height + outside_margin)
            elif side == 1:
                x = rng.uniform(floorplan.width, floorplan.width + outside_margin)
                y = rng.uniform(-outside_margin, floorplan.height + outside_margin)
            elif side == 2:
                x = rng.uniform(-outside_margin, floorplan.width + outside_margin)
                y = rng.uniform(-outside_margin, 0.0)
            else:
                x = rng.uniform(-outside_margin, floorplan.width + outside_margin)
                y = rng.uniform(floorplan.height, floorplan.height + outside_margin)
        power = rng.uniform(*tx_power_dbm)
        channel = (1, 6, 11)[ap_id % 3]
        aps.append(
            AccessPoint(
                ap_id=ap_id,
                location=(float(x), float(y)),
                tx_power_dbm=float(power),
                channel=channel,
            )
        )
    return aps


def ap_locations(aps: Sequence[AccessPoint]) -> np.ndarray:
    """``(n_aps, 2)`` array of AP coordinates."""
    return np.array([ap.location for ap in aps], dtype=np.float64)
