"""Large-scale path loss models.

The simulator's mean received power follows the classic log-distance model
optionally augmented with multi-wall attenuation from the floorplan:

``PL(d) = PL(d0) + 10 n log10(d / d0) + sum(wall losses)``

Path-loss exponents are environment presets: open library areas sit near
free space (n ~ 2.1), drywall office corridors around 2.9, and the metal-
heavy basement above 3.2 — matching the paper's description of the three
environments' distinct "environmental noise and multipath conditions"
(Sec. V.A.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.floorplan import Floorplan
from ..geometry.point import as_point, euclidean


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path-loss model.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (2.0 = free space).
    reference_loss_db:
        Loss at the reference distance ``d0`` (40 dB at 1 m is a common
        2.4 GHz indoor figure).
    reference_distance_m:
        ``d0`` in meters.
    min_distance_m:
        Distances are clamped below this to avoid the log singularity —
        physically, the near-field region where the model does not apply.
    """

    exponent: float = 2.8
    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0
    min_distance_m: float = 0.5

    def __post_init__(self) -> None:
        if self.exponent < 1.0 or self.exponent > 6.0:
            raise ValueError(f"implausible path-loss exponent {self.exponent}")
        if self.reference_distance_m <= 0 or self.min_distance_m <= 0:
            raise ValueError("distances must be positive")

    def loss_db(self, distance_m: float) -> float:
        """Mean path loss at ``distance_m`` meters."""
        d = max(float(distance_m), self.min_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )

    def loss_db_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`loss_db`."""
        d = np.maximum(np.asarray(distances_m, dtype=np.float64), self.min_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )

    def distance_for_loss(self, loss_db: float) -> float:
        """Invert the model: distance at which the mean loss equals ``loss_db``."""
        exp10 = (loss_db - self.reference_loss_db) / (10.0 * self.exponent)
        return float(self.reference_distance_m * 10.0**exp10)


#: Environment presets (exponent, reference loss).
ENVIRONMENT_PRESETS = {
    "open": LogDistancePathLoss(exponent=2.1, reference_loss_db=40.0),
    "office": LogDistancePathLoss(exponent=2.9, reference_loss_db=41.0),
    "basement": LogDistancePathLoss(exponent=3.3, reference_loss_db=42.0),
}


@dataclass
class MultiWallPropagation:
    """Log-distance path loss plus per-wall attenuation from a floorplan.

    When ``floorplan`` is None the model degenerates to pure log-distance —
    useful for unit tests and the open UJI hall where interior baffles are
    already sparse.
    """

    path_loss: LogDistancePathLoss
    floorplan: Floorplan | None = None
    wall_loss_cap_db: float = 30.0

    def mean_rssi_dbm(
        self,
        tx_power_dbm: float,
        src: "tuple[float, float] | np.ndarray",
        dst: "tuple[float, float] | np.ndarray",
    ) -> float:
        """Mean received power (no shadowing/fading) from src to dst.

        Wall attenuation is capped at ``wall_loss_cap_db``: beyond a few
        walls, diffraction and reflections dominate the direct ray and the
        multi-wall model would otherwise over-attenuate (standard COST 231
        practice).
        """
        src = as_point(src)
        dst = as_point(dst)
        loss = self.path_loss.loss_db(euclidean(src, dst))
        if self.floorplan is not None:
            loss += min(self.floorplan.attenuation_db(src, dst), self.wall_loss_cap_db)
        return float(tx_power_dbm - loss)


def make_propagation(
    environment: str, floorplan: Floorplan | None = None
) -> MultiWallPropagation:
    """Build a propagation model from an environment preset name."""
    try:
        preset = ENVIRONMENT_PRESETS[environment]
    except KeyError:
        known = ", ".join(sorted(ENVIRONMENT_PRESETS))
        raise KeyError(f"unknown environment {environment!r}; known: {known}") from None
    return MultiWallPropagation(path_loss=preset, floorplan=floorplan)
