"""Spatially correlated log-normal shadowing fields.

Shadowing — the slowly varying dB offset caused by the specific obstacle
layout between an AP and a location — is what makes fingerprinting work at
all: it is *stable in space* (nearby points see similar offsets) yet
*distinctive across APs*. We synthesize one independent Gaussian random
field per AP by bilinear interpolation of an i.i.d. normal lattice whose
cell size equals the decorrelation distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .seeding import stable_seed


@dataclass
class ShadowingField:
    """One AP's spatial shadowing field over a rectangular domain.

    Bilinear interpolation of a coarse normal lattice yields a continuous
    field with approximately exponential spatial autocorrelation of range
    ``correlation_m`` — the standard Gudmundson (1991) model behaviour —
    at a tiny fraction of the cost of a dense Cholesky factorization.
    """

    width: float
    height: float
    sigma_db: float
    correlation_m: float
    seed: int
    margin: float = 10.0
    _lattice: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.correlation_m <= 0:
            raise ValueError("correlation_m must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("domain extents must be positive")

    def _ensure_lattice(self) -> np.ndarray:
        if self._lattice is None:
            nx = int(np.ceil((self.width + 2 * self.margin) / self.correlation_m)) + 2
            ny = int(np.ceil((self.height + 2 * self.margin) / self.correlation_m)) + 2
            rng = np.random.default_rng(self.seed)
            self._lattice = rng.normal(0.0, 1.0, size=(ny, nx))
        return self._lattice

    def value_db(self, x: float, y: float) -> float:
        """Shadowing offset in dB at position ``(x, y)``."""
        lattice = self._ensure_lattice()
        gx = (x + self.margin) / self.correlation_m
        gy = (y + self.margin) / self.correlation_m
        ny, nx = lattice.shape
        ix = int(np.clip(np.floor(gx), 0, nx - 2))
        iy = int(np.clip(np.floor(gy), 0, ny - 2))
        fx = float(np.clip(gx - ix, 0.0, 1.0))
        fy = float(np.clip(gy - iy, 0.0, 1.0))
        v00 = lattice[iy, ix]
        v01 = lattice[iy, ix + 1]
        v10 = lattice[iy + 1, ix]
        v11 = lattice[iy + 1, ix + 1]
        interp = (
            v00 * (1 - fx) * (1 - fy)
            + v01 * fx * (1 - fy)
            + v10 * (1 - fx) * fy
            + v11 * fx * fy
        )
        return float(self.sigma_db * interp)

    def values_db(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_db` over an ``(n, 2)`` array."""
        pts = np.asarray(points, dtype=np.float64)
        return np.array([self.value_db(px, py) for px, py in pts])


@dataclass
class ShadowingModel:
    """Per-AP shadowing fields with deterministic per-AP seeds.

    A second field layer ("furniture") can be superimposed with a weight
    that the temporal model raises after furniture-rearrangement events,
    shifting the spatial pattern without touching the base field — nearby
    fingerprints change coherently, as they do when a real room is
    rearranged.
    """

    width: float
    height: float
    sigma_db: float = 4.0
    correlation_m: float = 6.0
    base_seed: int = 0
    _fields: dict = field(default_factory=dict, repr=False)

    def field_for(self, ap_id: int, *, layer: int = 0) -> ShadowingField:
        key = (ap_id, layer)
        fld = self._fields.get(key)
        if fld is None:
            fld = ShadowingField(
                width=self.width,
                height=self.height,
                sigma_db=self.sigma_db,
                correlation_m=self.correlation_m,
                seed=stable_seed(self.base_seed, ap_id, layer),
            )
            self._fields[key] = fld
        return fld

    def shadow_db(
        self, ap_id: int, x: float, y: float, *, furniture_weight: float = 0.0, generation: int = 0
    ) -> float:
        """Total shadowing at (x, y) for one AP.

        ``generation`` shifts the base layer seed so a *replaced* AP gets a
        brand-new spatial pattern. ``furniture_weight`` in [0, 1] blends in
        the furniture layer: total variance is kept at sigma^2 by mixing
        ``sqrt(1-w^2) * base + w * furniture``.
        """
        if not 0.0 <= furniture_weight <= 1.0:
            raise ValueError("furniture_weight must be in [0, 1]")
        base = self.field_for(ap_id, layer=generation * 100)
        value = float(np.sqrt(1.0 - furniture_weight**2)) * base.value_db(x, y)
        if furniture_weight > 0.0:
            furn = self.field_for(ap_id, layer=generation * 100 + 1)
            value += furniture_weight * furn.value_db(x, y)
        return value
