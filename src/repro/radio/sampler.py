"""Fingerprint sampling: the full simulated measurement chain.

``RadioEnvironment`` composes floorplan geometry, AP deployment,
propagation, shadowing, temporal variation, the AP lifecycle schedule and
a device profile into a single object whose :meth:`scan` produces one WiFi
scan — the (n_aps,) RSSI vector in dBm with -100 for unobserved APs —
exactly the raw record the paper's offline/online phases capture.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..geometry.floorplan import Floorplan
from .access_point import NO_SIGNAL_DBM, AccessPoint
from .device import DeviceProfile
from .ephemerality import EphemeralitySchedule
from .propagation import MultiWallPropagation
from .seeding import stable_seed
from .shadowing import ShadowingModel
from .temporal import TemporalModel
from .time import SimTime


@dataclass
class RadioEnvironment:
    """A fully specified simulated radio deployment.

    ``fading_std_db`` is the small-scale (per-scan) fading magnitude; the
    per-scan noise also includes device noise, co-channel interference,
    and the activity-dependent component from the temporal model, all
    added in quadrature.
    """

    floorplan: Floorplan
    access_points: list[AccessPoint]
    propagation: MultiWallPropagation
    shadowing: ShadowingModel
    temporal: TemporalModel
    device: DeviceProfile = field(default_factory=DeviceProfile)
    schedule: EphemeralitySchedule | None = None
    fading_std_db: float = 1.5
    base_seed: int = 0
    _replacements: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.fading_std_db < 0:
            raise ValueError("fading_std_db must be non-negative")
        if not self.access_points:
            raise ValueError("environment needs at least one access point")
        if self.schedule is not None and self.schedule.n_aps != len(self.access_points):
            raise ValueError(
                f"schedule covers {self.schedule.n_aps} APs but deployment has "
                f"{len(self.access_points)}"
            )

    @property
    def n_aps(self) -> int:
        return len(self.access_points)

    # -- AP lifecycle -----------------------------------------------------------

    def _effective_ap(self, ap_id: int, epoch: int | None) -> AccessPoint | None:
        """The AP transmitting in slot ``ap_id`` at ``epoch`` (None if removed)."""
        ap = self.access_points[ap_id]
        if self.schedule is None or epoch is None:
            return ap
        if not self.schedule.is_active(epoch, ap_id):
            return None
        gen = self.schedule.generation(epoch, ap_id)
        if gen == 0:
            return ap
        key = (ap_id, gen)
        replacement = self._replacements.get(key)
        if replacement is None:
            rng = np.random.default_rng(stable_seed(self.base_seed, "replace", ap_id, gen))
            # Replacement hardware: nearby but not identical placement,
            # fresh transmit power, new generation tag (new shadow field).
            dx, dy = rng.normal(0.0, 3.0, size=2)
            x = float(np.clip(ap.location[0] + dx, 0.0, self.floorplan.width))
            y = float(np.clip(ap.location[1] + dy, 0.0, self.floorplan.height))
            replacement = ap.replaced(
                location=(x, y),
                tx_power_dbm=float(np.clip(rng.uniform(-14.0, -2.0), -40.0, 0.0)),
            )
            replacement = AccessPoint(
                ap_id=ap.ap_id,
                location=replacement.location,
                tx_power_dbm=replacement.tx_power_dbm,
                channel=replacement.channel,
                generation=gen,
            )
            self._replacements[key] = replacement
        return replacement

    # -- signal chain ----------------------------------------------------------

    def mean_rssi_dbm(
        self,
        ap_id: int,
        location: Sequence[float],
        time: SimTime,
        *,
        epoch: int | None = None,
    ) -> float:
        """Expected received power before per-scan noise and detection.

        Includes path loss, walls, spatial shadowing (with the furniture
        layer at its current weight), slow drift, and the mean activity
        attenuation. Returns ``NO_SIGNAL_DBM`` when the AP is removed.
        """
        ap = self._effective_ap(ap_id, epoch)
        if ap is None:
            return NO_SIGNAL_DBM
        x, y = float(location[0]), float(location[1])
        rssi = self.propagation.mean_rssi_dbm(ap.tx_power_dbm, ap.location, (x, y))
        rssi += self.shadowing.shadow_db(
            ap_id,
            x,
            y,
            furniture_weight=self.temporal.furniture_weight(time),
            generation=ap.generation,
        )
        rssi += self.temporal.drift_db(ap_id, time)
        rssi -= self._activity_sensitivity(ap_id, x, y) * (
            self.temporal.activity_attenuation_db(time)
        )
        return float(rssi)

    def _activity_sensitivity(self, ap_id: int, x: float, y: float) -> float:
        """How strongly human activity attenuates one AP at one spot.

        Crowds block some AP->receiver paths and not others (a body in the
        Fresnel zone of one link leaves another untouched). A logistic
        squash of an independent shadowing layer gives a per-(AP, place)
        sensitivity in (0, 1) that is stable in space and across time —
        the *pattern* of busy-hour attenuation repeats daily, which is
        exactly why morning-trained models mislocate in the afternoon.
        """
        fld = self.shadowing.field_for(ap_id, layer=7777)
        raw = fld.value_db(x, y) / max(self.shadowing.sigma_db, 1e-9)
        return float(1.0 / (1.0 + np.exp(-2.0 * raw)))

    def scan_noise_std_db(self, time: SimTime) -> float:
        """Total per-scan noise sigma at ``time`` (quadrature sum)."""
        parts = np.array(
            [
                self.fading_std_db,
                self.device.noise_std_db,
                self.temporal.interference_std_db(),
                self.temporal.activity_noise_std_db(time),
            ]
        )
        return float(np.sqrt((parts**2).sum()))

    def scan(
        self,
        location: Sequence[float],
        time: SimTime,
        rng: np.random.Generator,
        *,
        epoch: int | None = None,
    ) -> np.ndarray:
        """One WiFi scan: ``(n_aps,)`` RSSI in dBm, -100 for unobserved.

        The device's detection threshold is applied after noise, so weak
        APs flicker between scans — the short-term variability STONE's
        Gaussian-noise input layer is designed to absorb.
        """
        fading_sigma = float(
            np.sqrt(
                self.fading_std_db**2
                + self.temporal.interference_std_db() ** 2
                + self.temporal.activity_noise_std_db(time) ** 2
            )
        )
        out = np.full(self.n_aps, NO_SIGNAL_DBM, dtype=np.float64)
        for ap_id in range(self.n_aps):
            mean = self.mean_rssi_dbm(ap_id, location, time, epoch=epoch)
            if mean <= NO_SIGNAL_DBM:
                continue
            true_power = mean + rng.normal(0.0, fading_sigma)
            out[ap_id] = self.device.measure(true_power, rng)
        return out

    # -- vectorized RP fast path --------------------------------------------

    def _epoch_arrays(
        self, epoch: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Effective (locations, tx powers, generations, active mask) per epoch.

        Cached: the AP lifecycle only changes between epochs, never within
        one, so dataset generation reuses these arrays for every scan of a
        collection instance.
        """
        key = ("epoch", epoch)
        hit = self._replacements.get(key)
        if hit is not None:
            return hit
        locs = np.empty((self.n_aps, 2), dtype=np.float64)
        tx = np.empty(self.n_aps, dtype=np.float64)
        gens = np.zeros(self.n_aps, dtype=np.int64)
        active = np.ones(self.n_aps, dtype=bool)
        for ap_id in range(self.n_aps):
            ap = self._effective_ap(ap_id, epoch)
            if ap is None:
                active[ap_id] = False
                locs[ap_id] = self.access_points[ap_id].location
                tx[ap_id] = NO_SIGNAL_DBM
                continue
            locs[ap_id] = ap.location
            tx[ap_id] = ap.tx_power_dbm
            gens[ap_id] = ap.generation
        result = (locs, tx, gens, active)
        self._replacements[key] = result
        return result

    def _structure_db(
        self, rp_index: int, epoch: int | None, furniture_weight: float
    ) -> np.ndarray:
        """Wall attenuation + shadowing vector at an RP, cached.

        Walls and shadowing are evaluated at the exact RP location; the
        sub-meter capture jitter is folded into the fading noise instead,
        which preserves the scan statistics while making the expensive
        geometric terms cacheable.
        """
        weight_key = round(furniture_weight, 3)
        key = ("structure", rp_index, epoch, weight_key)
        hit = self._replacements.get(key)
        if hit is not None:
            return hit
        locs, _, gens, active = self._epoch_arrays(epoch)
        rp_loc = self.floorplan.reference_points[rp_index]
        out = np.zeros(self.n_aps, dtype=np.float64)
        for ap_id in range(self.n_aps):
            if not active[ap_id]:
                continue
            wall = min(
                self.floorplan.attenuation_db(locs[ap_id], rp_loc),
                self.propagation.wall_loss_cap_db,
            )
            shadow = self.shadowing.shadow_db(
                ap_id,
                float(rp_loc[0]),
                float(rp_loc[1]),
                furniture_weight=furniture_weight,
                generation=int(gens[ap_id]),
            )
            out[ap_id] = shadow - wall
        self._replacements[key] = out
        return out

    def _activity_sens_vector(self, rp_index: int) -> np.ndarray:
        """Per-AP activity sensitivity at an RP (cached; epoch-invariant)."""
        key = ("act-sens", rp_index)
        hit = self._replacements.get(key)
        if hit is not None:
            return hit
        rp_loc = self.floorplan.reference_points[rp_index]
        out = np.array(
            [
                self._activity_sensitivity(ap_id, float(rp_loc[0]), float(rp_loc[1]))
                for ap_id in range(self.n_aps)
            ]
        )
        self._replacements[key] = out
        return out

    def _drift_vector(self, time: SimTime) -> np.ndarray:
        """Per-AP slow-drift offsets at ``time``, cached per query time."""
        key = ("drift", round(time.hours, 6))
        hit = self._replacements.get(key)
        if hit is not None:
            return hit
        out = np.array(
            [self.temporal.drift_db(ap_id, time) for ap_id in range(self.n_aps)]
        )
        self._replacements[key] = out
        return out

    def scan_at_rp(
        self,
        rp_index: int,
        time: SimTime,
        rng: np.random.Generator,
        *,
        epoch: int | None = None,
        position_jitter_m: float = 0.15,
    ) -> np.ndarray:
        """A scan captured while standing at RP ``rp_index`` (vectorized).

        Surveyors do not stand on the exact same square centimetre twice;
        ``position_jitter_m`` wiggles the path-loss distance accordingly
        (walls/shadowing use the nominal RP location — a sub-meter
        approximation that keeps those terms cacheable).
        """
        locs, tx, _, active = self._epoch_arrays(epoch)
        rp_loc = self.floorplan.rp_location(rp_index)
        if position_jitter_m > 0:
            rp_loc = rp_loc + rng.normal(0.0, position_jitter_m, size=2)
        diff = locs - rp_loc[None, :]
        dist = np.sqrt((diff * diff).sum(axis=1))
        pl = self.propagation.path_loss.loss_db_array(dist)
        weight = self.temporal.furniture_weight(time)
        structure = self._structure_db(rp_index, epoch, weight)
        mean = tx - pl + structure + self._drift_vector(time)
        mean -= self._activity_sens_vector(rp_index) * (
            self.temporal.activity_attenuation_db(time)
        )
        fading_sigma = float(
            np.sqrt(
                self.fading_std_db**2
                + self.temporal.interference_std_db() ** 2
                + self.temporal.activity_noise_std_db(time) ** 2
            )
        )
        true_power = mean + rng.normal(0.0, fading_sigma, size=self.n_aps)
        out = self.device.measure_array(true_power, rng)
        out[~active] = NO_SIGNAL_DBM
        return out

    def visible_ap_count(self, time: SimTime, *, epoch: int | None = None) -> int:
        """APs with detectable mean power at any RP — Fig. 3's annotation."""
        count = 0
        threshold = self.device.detection_threshold_dbm
        for ap_id in range(self.n_aps):
            for rp in range(self.floorplan.n_reference_points):
                mean = self.mean_rssi_dbm(
                    ap_id, self.floorplan.reference_points[rp], time, epoch=epoch
                )
                if mean > threshold:
                    count += 1
                    break
        return count
