"""``repro.radio`` — simulated WiFi RSSI measurement substrate.

Stands in for the paper's physical measurement campaigns (UJI corpus, LG
V20 Office/Basement surveys). Composes propagation, shadowing, temporal
variation, AP lifecycle schedules and a device model into reproducible
scan sampling. See DESIGN.md section 5 for the substitution argument.
"""

from .access_point import (
    DEFAULT_DETECTION_THRESHOLD_DBM,
    NO_SIGNAL_DBM,
    AccessPoint,
    ap_locations,
    place_access_points,
)
from .device import DEVICE_PRESETS, DeviceProfile
from .ephemerality import (
    APStatus,
    EphemeralitySchedule,
    ephemerality_report,
    office_like_schedule,
    stable_schedule,
    uji_like_schedule,
)
from .propagation import (
    ENVIRONMENT_PRESETS,
    LogDistancePathLoss,
    MultiWallPropagation,
    make_propagation,
)
from .sampler import RadioEnvironment
from .shadowing import ShadowingField, ShadowingModel
from .temporal import TEMPORAL_PRESETS, OUDrift, TemporalConfig, TemporalModel, occupancy
from .time import (
    HOURS_PER_DAY,
    HOURS_PER_MONTH,
    SimTime,
    collection_instance_times,
    monthly_times,
)

__all__ = [
    "NO_SIGNAL_DBM",
    "DEFAULT_DETECTION_THRESHOLD_DBM",
    "AccessPoint",
    "place_access_points",
    "ap_locations",
    "DeviceProfile",
    "DEVICE_PRESETS",
    "APStatus",
    "EphemeralitySchedule",
    "stable_schedule",
    "office_like_schedule",
    "uji_like_schedule",
    "ephemerality_report",
    "LogDistancePathLoss",
    "MultiWallPropagation",
    "make_propagation",
    "ENVIRONMENT_PRESETS",
    "ShadowingField",
    "ShadowingModel",
    "OUDrift",
    "TemporalConfig",
    "TemporalModel",
    "TEMPORAL_PRESETS",
    "occupancy",
    "SimTime",
    "collection_instance_times",
    "monthly_times",
    "HOURS_PER_DAY",
    "HOURS_PER_MONTH",
    "RadioEnvironment",
]
