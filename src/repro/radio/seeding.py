"""Stable seed derivation for named random streams.

Python's built-in ``hash`` is randomized per process for strings
(PYTHONHASHSEED), so ``hash((seed, "drift", ap_id))`` would give each
*process* a different simulation — silently breaking cross-run
reproducibility. ``stable_seed`` derives a 32-bit seed from its arguments
with CRC32, which is deterministic everywhere.
"""

from __future__ import annotations

import zlib

Token = int | str


def stable_seed(*tokens: Token) -> int:
    """A deterministic 32-bit seed from a sequence of ints/strings."""
    payload = "\x1f".join(
        f"i{t}" if isinstance(t, int) else f"s{t}" for t in tokens
    ).encode("utf-8")
    return zlib.crc32(payload) & 0xFFFFFFFF
