"""Simulation time model.

All temporal effects key off :class:`SimTime`, a thin wrapper over *hours
since deployment*. The paper's two timelines both map onto it:

- **Office/Basement**: 16 collection instances (CIs). CIs 0-2 on day 0 at
  8 AM / 3 PM / 9 PM, CIs 3-8 on the following six days, CIs 9-15 roughly
  monthly (paper Sec. V.A.2).
- **UJI**: one training day plus 15 monthly test sets (Sec. V.A.1).
"""

from __future__ import annotations

from dataclasses import dataclass

HOURS_PER_DAY = 24.0
HOURS_PER_MONTH = 30.0 * HOURS_PER_DAY


@dataclass(frozen=True, order=True)
class SimTime:
    """A point in simulated time, measured in hours since deployment."""

    hours: float

    def __post_init__(self) -> None:
        if self.hours < 0:
            raise ValueError(f"time must be non-negative, got {self.hours}")

    @property
    def days(self) -> float:
        return self.hours / HOURS_PER_DAY

    @property
    def months(self) -> float:
        return self.hours / HOURS_PER_MONTH

    @property
    def hour_of_day(self) -> float:
        """Clock time in [0, 24); deployment starts at 8 AM."""
        return (8.0 + self.hours) % HOURS_PER_DAY

    @classmethod
    def at(cls, *, months: float = 0.0, days: float = 0.0, hours: float = 0.0) -> SimTime:
        """Build a time from mixed units."""
        return cls(months * HOURS_PER_MONTH + days * HOURS_PER_DAY + hours)

    def __add__(self, other_hours: float) -> SimTime:
        return SimTime(self.hours + float(other_hours))


def collection_instance_times(n_instances: int = 16) -> list[SimTime]:
    """The paper's CI schedule for the Office and Basement paths.

    CIs 0-2: same day, 6 h apart (8 AM, 3 PM ~ +7 h is approximated by the
    paper itself as "6 hours apart", we use +6 h steps: 8 AM, 2 PM, 8 PM).
    CIs 3-8: one per day on the following 6 days (morning).
    CIs 9+: every ~30 days thereafter.
    """
    if n_instances <= 0:
        raise ValueError("n_instances must be positive")
    times: list[SimTime] = []
    for ci in range(n_instances):
        if ci <= 2:
            times.append(SimTime.at(hours=6.0 * ci))
        elif ci <= 8:
            times.append(SimTime.at(days=float(ci - 2)))
        else:
            times.append(SimTime.at(days=6.0, months=float(ci - 8)))
    return times


def monthly_times(n_months: int = 15, *, hour: float = 4.0) -> list[SimTime]:
    """UJI-style schedule: one time per month, months 1..n_months.

    ``hour`` offsets within the day so test captures don't always land on
    the deployment hour.
    """
    if n_months <= 0:
        raise ValueError("n_months must be positive")
    return [SimTime.at(months=float(m), hours=hour) for m in range(1, n_months + 1)]
