"""AP removal/replacement schedules (fingerprint "ephemerality").

The paper's Fig. 4 plots which APs are visible at each collection
instance: visibility is stable early, then ~20% of APs disappear after
CI:11 on the measured paths, while the UJI dataset loses/changes ~50% of
its APs around month 11 (Sec. V.A.2). These schedules reproduce that
structure, plus the low-level "flicker" of weak APs that drop in and out
of individual scans.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np


class APStatus(Enum):
    """Lifecycle state of an AP at a given epoch."""

    ACTIVE = "active"
    REMOVED = "removed"
    REPLACED = "replaced"


@dataclass
class EphemeralitySchedule:
    """Per-epoch AP lifecycle matrix.

    ``status[e, a]`` gives the :class:`APStatus` of AP ``a`` during epoch
    ``e`` (an epoch is a CI for the measured paths, a month for UJI).
    ``REMOVED`` APs read no-signal forever after; ``REPLACED`` APs keep
    transmitting but with new hardware — new location/power/spatial
    pattern — so the old fingerprint dimension changes character rather
    than going dark.
    """

    status: np.ndarray  # (n_epochs, n_aps) of APStatus

    def __post_init__(self) -> None:
        self.status = np.asarray(self.status, dtype=object)
        if self.status.ndim != 2:
            raise ValueError("status must be (n_epochs, n_aps)")

    @property
    def n_epochs(self) -> int:
        return int(self.status.shape[0])

    @property
    def n_aps(self) -> int:
        return int(self.status.shape[1])

    def is_active(self, epoch: int, ap_id: int) -> bool:
        return self.status[epoch, ap_id] is not APStatus.REMOVED

    def generation(self, epoch: int, ap_id: int) -> int:
        """How many times AP ``ap_id`` has been replaced by ``epoch``."""
        col = self.status[: epoch + 1, ap_id]
        gen = 0
        prev_replaced = False
        for s in col:
            replaced = s is APStatus.REPLACED
            if replaced and not prev_replaced:
                gen += 1
            prev_replaced = replaced
        return gen

    def visibility_matrix(self) -> np.ndarray:
        """Boolean (n_epochs, n_aps): True where the AP transmits (Fig. 4)."""
        return np.vectorize(lambda s: s is not APStatus.REMOVED)(self.status)

    def removed_fraction(self, epoch: int) -> float:
        """Fraction of APs not transmitting at ``epoch``."""
        row = self.status[epoch]
        removed = sum(1 for s in row if s is APStatus.REMOVED)
        return removed / self.n_aps


def stable_schedule(n_epochs: int, n_aps: int) -> EphemeralitySchedule:
    """All APs active at every epoch (control condition)."""
    status = np.full((n_epochs, n_aps), APStatus.ACTIVE, dtype=object)
    return EphemeralitySchedule(status)


def office_like_schedule(
    n_aps: int,
    rng: np.random.Generator,
    *,
    n_epochs: int = 16,
    drop_after_epoch: int = 11,
    drop_fraction: float = 0.20,
    sporadic_rate: float = 0.02,
) -> EphemeralitySchedule:
    """Fig. 4-style schedule for the measured paths.

    Stable visibility up to ``drop_after_epoch``; beyond it,
    ``drop_fraction`` of APs are permanently removed (the paper: "beyond
    [CI:11], ~20% of WiFi APs become unavailable"). ``sporadic_rate``
    adds the occasional one-epoch outage of a random AP, which Fig. 4
    also shows as isolated black marks before CI:11.
    """
    if not 0.0 <= drop_fraction <= 1.0:
        raise ValueError("drop_fraction must be in [0, 1]")
    if not 0 <= drop_after_epoch < n_epochs:
        raise ValueError("drop_after_epoch must be a valid epoch")
    status = np.full((n_epochs, n_aps), APStatus.ACTIVE, dtype=object)
    n_drop = int(round(n_aps * drop_fraction))
    dropped = rng.choice(n_aps, size=n_drop, replace=False)
    for ap in dropped:
        # Removal epoch staggered over the post-CI:11 window.
        start = int(rng.integers(drop_after_epoch + 1, n_epochs))
        status[start:, ap] = APStatus.REMOVED
    for epoch in range(n_epochs):
        for ap in range(n_aps):
            if status[epoch, ap] is APStatus.ACTIVE and rng.random() < sporadic_rate:
                status[epoch, ap] = APStatus.REMOVED
    return EphemeralitySchedule(status)


def uji_like_schedule(
    n_aps: int,
    rng: np.random.Generator,
    *,
    n_epochs: int = 16,
    change_epoch: int = 11,
    change_fraction: float = 0.50,
    replace_share: float = 0.5,
    sporadic_rate: float = 0.01,
) -> EphemeralitySchedule:
    """UJI-style schedule: ~50% of APs change around month 11.

    Epoch 0 is the training month. Of the changed APs, ``replace_share``
    are *replaced* (new hardware, same slot) and the rest are *removed*
    outright — the paper's Sec. II notes the UJI change includes both.
    """
    if not 0.0 <= change_fraction <= 1.0 or not 0.0 <= replace_share <= 1.0:
        raise ValueError("fractions must be in [0, 1]")
    if not 0 <= change_epoch < n_epochs:
        raise ValueError("change_epoch must be a valid epoch")
    status = np.full((n_epochs, n_aps), APStatus.ACTIVE, dtype=object)
    n_change = int(round(n_aps * change_fraction))
    changed = rng.choice(n_aps, size=n_change, replace=False)
    n_replace = int(round(n_change * replace_share))
    for idx, ap in enumerate(changed):
        start = int(
            np.clip(change_epoch + rng.integers(0, 2), 0, n_epochs - 1)
        )
        if idx < n_replace:
            status[start:, ap] = APStatus.REPLACED
        else:
            status[start:, ap] = APStatus.REMOVED
    for epoch in range(n_epochs):
        for ap in range(n_aps):
            if status[epoch, ap] is APStatus.ACTIVE and rng.random() < sporadic_rate:
                status[epoch, ap] = APStatus.REMOVED
    return EphemeralitySchedule(status)


def ephemerality_report(
    schedule: EphemeralitySchedule, epoch_labels: Sequence[str] | None = None
) -> str:
    """ASCII rendition of Fig. 4: rows = epochs, columns = APs.

    ``#`` marks an AP that is *not* observed (matching the figure's black
    marks), ``.`` an active AP, ``R`` a replaced one.
    """
    lines = []
    labels = epoch_labels or [f"e{e:02d}" for e in range(schedule.n_epochs)]
    if len(labels) != schedule.n_epochs:
        raise ValueError("epoch_labels length must match n_epochs")
    for e in range(schedule.n_epochs):
        row = []
        for a in range(schedule.n_aps):
            s = schedule.status[e, a]
            if s is APStatus.REMOVED:
                row.append("#")
            elif s is APStatus.REPLACED:
                row.append("R")
            else:
                row.append(".")
        lines.append(f"{labels[e]:>6} |{''.join(row)}|")
    return "\n".join(lines)
