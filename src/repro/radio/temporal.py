"""Temporal variation models for RSSI.

The paper attributes post-deployment accuracy loss to "human activity,
signal interferences, changes to furniture and materials in the
environment, and also removal or replacement of WiFi APs" (Sec. I). This
module implements the first three; removal/replacement lives in
``repro.radio.ephemerality``.

Components
----------
- **Slow drift** — an Ornstein-Uhlenbeck process per AP over days; models
  firmware/power changes and seasonal building effects. Mean-reverting, so
  drift wanders within a band instead of diverging.
- **Diurnal human activity** — a smooth occupancy curve over the hour of
  day; bodies attenuate 2.4 GHz, so busy hours add mean attenuation *and*
  measurement variance. This is why the paper's CI:0 (8 AM) and CI:1
  (afternoon) differ enough to trip overfitted models.
- **Furniture events** — Poisson-arriving rearrangements that permanently
  blend a second spatial shadowing layer in (see ``ShadowingModel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .seeding import stable_seed
from .time import HOURS_PER_DAY, SimTime


def occupancy(hour_of_day: float) -> float:
    """Relative human activity level in [0, 1] by clock hour.

    Low overnight, ramping through the morning, peaking early afternoon,
    tapering in the evening — a standard office/library occupancy shape.
    """
    h = float(hour_of_day) % HOURS_PER_DAY
    morning = np.exp(-0.5 * ((h - 11.0) / 2.5) ** 2)
    afternoon = np.exp(-0.5 * ((h - 15.5) / 2.8) ** 2)
    level = 0.9 * max(morning, afternoon) + 0.05
    return float(np.clip(level, 0.0, 1.0))


@dataclass
class OUDrift:
    """Ornstein-Uhlenbeck drift evaluated lazily on a daily grid.

    ``x_{k+1} = x_k * exp(-dt/tau) + N(0, sigma^2 (1 - exp(-2 dt/tau)))``

    sampled once per simulated day and linearly interpolated between
    samples, so any query time is deterministic for a given seed.
    """

    sigma_db: float
    tau_days: float
    seed: int
    _samples: list[float] = field(default_factory=list, repr=False)
    _rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.tau_days <= 0:
            raise ValueError("tau_days must be positive")

    def _ensure(self, day_index: int) -> None:
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)
            self._samples.append(0.0)  # deployment-day drift is zero
        decay = float(np.exp(-1.0 / self.tau_days))
        step_sigma = self.sigma_db * float(np.sqrt(1.0 - decay**2))
        while len(self._samples) <= day_index + 1:
            prev = self._samples[-1]
            nxt = prev * decay + self._rng.normal(0.0, step_sigma)
            self._samples.append(float(nxt))

    def value_db(self, time: SimTime) -> float:
        """Drift offset (dB) at ``time``, interpolated between daily samples."""
        if self.sigma_db == 0.0:
            return 0.0
        day = time.days
        k = int(np.floor(day))
        self._ensure(k)
        frac = day - k
        return float((1.0 - frac) * self._samples[k] + frac * self._samples[k + 1])


@dataclass(frozen=True)
class TemporalConfig:
    """Magnitudes of the temporal variation sources (all in dB)."""

    drift_sigma_db: float = 3.0
    drift_tau_days: float = 45.0
    trend_sigma_db_per_month: float = 0.0
    activity_atten_db: float = 3.5
    activity_extra_std_db: float = 2.0
    interference_std_db: float = 0.8
    furniture_rate_per_month: float = 0.35
    furniture_weight_step: float = 0.25
    furniture_weight_max: float = 0.8

    def __post_init__(self) -> None:
        if min(
            self.drift_sigma_db,
            self.trend_sigma_db_per_month,
            self.activity_atten_db,
            self.activity_extra_std_db,
            self.interference_std_db,
            self.furniture_rate_per_month,
        ) < 0:
            raise ValueError("temporal magnitudes must be non-negative")
        if not 0.0 <= self.furniture_weight_max <= 1.0:
            raise ValueError("furniture_weight_max must be in [0, 1]")


class TemporalModel:
    """Aggregates all time-dependent RSSI effects for a deployment.

    One instance is shared by every AP; per-AP randomness comes from
    deterministic per-AP seeds, so fingerprints are reproducible given the
    deployment seed.
    """

    def __init__(self, config: TemporalConfig, *, base_seed: int = 0) -> None:
        self.config = config
        self.base_seed = int(base_seed)
        self._drifts: dict[int, OUDrift] = {}
        self._furniture_times: np.ndarray | None = None

    # -- slow drift ------------------------------------------------------------

    def drift_scale(self, ap_id: int) -> float:
        """Per-AP drift magnitude multiplier in [0.4, 2.0].

        Independently administered APs age differently — some are rock
        stable, others wander (firmware updates, power changes). A
        deterministic per-AP scale reproduces that heterogeneity.
        """
        rng = np.random.default_rng(stable_seed(self.base_seed, "drift-scale", ap_id))
        return float(rng.uniform(0.4, 2.0))

    def trend_slope_db_per_month(self, ap_id: int) -> float:
        """Per-AP secular trend slope (dB/month), deterministic per seed.

        Environments accumulate permanent changes (antenna knocks, power
        policy updates, new equipment near the AP) that do *not* revert;
        a saturating linear trend captures the paper's observation that
        errors keep climbing at the month scale even before APs vanish.
        """
        if self.config.trend_sigma_db_per_month == 0.0:
            return 0.0
        rng = np.random.default_rng(stable_seed(self.base_seed, "trend", ap_id))
        return float(rng.normal(0.0, self.config.trend_sigma_db_per_month))

    def trend_db(self, ap_id: int, time: SimTime, *, saturation_months: float = 10.0) -> float:
        """Secular trend offset at ``time`` (saturates to bound the effect)."""
        slope = self.trend_slope_db_per_month(ap_id)
        if slope == 0.0:
            return 0.0
        months = min(time.months, saturation_months)
        return slope * months

    def drift_db(self, ap_id: int, time: SimTime) -> float:
        """Per-AP slow variation at ``time``: OU drift + secular trend."""
        drift = self._drifts.get(ap_id)
        if drift is None:
            drift = OUDrift(
                sigma_db=self.config.drift_sigma_db * self.drift_scale(ap_id),
                tau_days=self.config.drift_tau_days,
                seed=stable_seed(self.base_seed, "drift", ap_id),
            )
            self._drifts[ap_id] = drift
        return drift.value_db(time) + self.trend_db(ap_id, time)

    # -- human activity ----------------------------------------------------------

    def activity_level(self, time: SimTime) -> float:
        """Occupancy level in [0, 1] at ``time``."""
        return occupancy(time.hour_of_day)

    def activity_attenuation_db(self, time: SimTime) -> float:
        """Mean extra attenuation from human bodies at ``time``."""
        return self.config.activity_atten_db * self.activity_level(time)

    def activity_noise_std_db(self, time: SimTime) -> float:
        """Extra per-scan noise standard deviation from movement."""
        return self.config.activity_extra_std_db * self.activity_level(time)

    # -- furniture events ----------------------------------------------------------

    def _ensure_furniture(self, horizon_months: float) -> np.ndarray:
        needed = max(horizon_months, 1.0)
        if self._furniture_times is None or (
            self._furniture_times.size > 0 and self._furniture_times[-1] < needed
        ):
            rng = np.random.default_rng(stable_seed(self.base_seed, "furniture"))
            # Draw enough Poisson arrivals to cover 3x the horizon.
            rate = self.config.furniture_rate_per_month
            if rate == 0:
                self._furniture_times = np.array([])
            else:
                n_expected = int(np.ceil(3 * needed * rate)) + 8
                gaps = rng.exponential(1.0 / rate, size=n_expected)
                self._furniture_times = np.cumsum(gaps)
        return self._furniture_times

    def furniture_weight(self, time: SimTime) -> float:
        """Blend weight of the furniture shadowing layer at ``time``.

        Each event adds ``furniture_weight_step``, saturating at
        ``furniture_weight_max``; the environment progressively diverges
        from its deployment-day layout.
        """
        events = self._ensure_furniture(time.months)
        n_events = int((events <= time.months).sum()) if events.size else 0
        weight = n_events * self.config.furniture_weight_step
        return float(min(weight, self.config.furniture_weight_max))

    # -- interference ----------------------------------------------------------

    def interference_std_db(self) -> float:
        """Always-on per-scan noise floor from co-channel interference."""
        return self.config.interference_std_db


#: Environment presets: the basement's metal surroundings amplify both the
#: multipath noise and the impact of furniture/equipment moves.
TEMPORAL_PRESETS = {
    "uji": TemporalConfig(
        drift_sigma_db=4.5,
        drift_tau_days=55.0,
        trend_sigma_db_per_month=0.6,
        activity_atten_db=6.0,
        activity_extra_std_db=1.8,
        interference_std_db=0.8,
        furniture_rate_per_month=0.5,
        furniture_weight_step=0.3,
    ),
    "office": TemporalConfig(
        drift_sigma_db=4.5,
        drift_tau_days=40.0,
        trend_sigma_db_per_month=1.0,
        activity_atten_db=8.0,
        activity_extra_std_db=2.2,
        interference_std_db=0.8,
        furniture_rate_per_month=0.5,
        furniture_weight_step=0.3,
    ),
    "basement": TemporalConfig(
        drift_sigma_db=4.2,
        drift_tau_days=40.0,
        trend_sigma_db_per_month=0.8,
        activity_atten_db=5.0,
        activity_extra_std_db=2.6,
        interference_std_db=1.2,
        furniture_rate_per_month=0.7,
        furniture_weight_step=0.3,
    ),
}
