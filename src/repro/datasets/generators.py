"""Longitudinal fingerprint suite generators.

These functions reproduce the *shapes* of the paper's three evaluation
corpora (Sec. V.A) from the radio simulator:

- :func:`generate_path_suite` — Office/Basement: 16 collection instances
  (3 intra-day, 6 daily, 7 monthly), 6 fingerprints per RP per CI,
  ~20% of APs removed after CI:11, training on a subset of CI:0.
- :func:`generate_uji_suite` — UJI-like: up to 9 same-day fingerprints per
  RP for training, 15 monthly test epochs, ~50% of APs changed
  (removed/replaced) around month 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.builders import (
    build_basement_path,
    build_office_path,
    build_uji_library_floor,
)
from ..radio.access_point import place_access_points
from ..radio.device import DeviceProfile
from ..radio.ephemerality import (
    EphemeralitySchedule,
    office_like_schedule,
    uji_like_schedule,
)
from ..radio.propagation import make_propagation
from ..radio.sampler import RadioEnvironment
from ..radio.shadowing import ShadowingModel
from ..radio.temporal import TEMPORAL_PRESETS, TemporalModel
from ..radio.time import SimTime, collection_instance_times, monthly_times
from .fingerprint import FingerprintDataset, LongitudinalSuite

PATH_BUILDERS = {
    "office": (build_office_path, "office"),
    "basement": (build_basement_path, "basement"),
}


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs shared by the suite generators."""

    n_aps: int = 60
    fpr: int = 6
    train_fpr: int = 4
    position_jitter_m: float = 0.15
    device: DeviceProfile | None = None

    def __post_init__(self) -> None:
        if self.n_aps <= 0 or self.fpr <= 0 or self.train_fpr <= 0:
            raise ValueError("counts must be positive")
        if self.train_fpr > self.fpr:
            raise ValueError("train_fpr cannot exceed fpr")


def build_environment(
    kind: str,
    seed: int,
    *,
    n_aps: int = 60,
    schedule: EphemeralitySchedule | None = None,
    device: DeviceProfile | None = None,
) -> RadioEnvironment:
    """A ready radio environment for ``kind`` in {office, basement, uji}.

    Seeds are split deterministically: AP placement, shadowing, temporal
    processes and the lifecycle schedule each get an independent stream so
    that changing one knob does not silently reshuffle the others.
    """
    root = np.random.SeedSequence(seed)
    s_place, s_shadow, s_temporal, s_schedule, s_env = root.spawn(5)
    if kind in PATH_BUILDERS:
        builder, env_name = PATH_BUILDERS[kind]
        floorplan = builder()
        if schedule is None:
            schedule = office_like_schedule(
                n_aps, np.random.default_rng(s_schedule), n_epochs=16
            )
        temporal_preset = TEMPORAL_PRESETS[env_name]
        fading = 1.8 if kind == "basement" else 1.5
    elif kind == "uji":
        floorplan = build_uji_library_floor()
        env_name = "open"
        if schedule is None:
            schedule = uji_like_schedule(
                n_aps, np.random.default_rng(s_schedule), n_epochs=16
            )
        temporal_preset = TEMPORAL_PRESETS["uji"]
        fading = 1.4
    else:
        known = ", ".join(sorted(list(PATH_BUILDERS) + ["uji"]))
        raise KeyError(f"unknown environment kind {kind!r}; known: {known}")
    aps = place_access_points(
        floorplan, n_aps, np.random.default_rng(s_place)
    )
    return RadioEnvironment(
        floorplan=floorplan,
        access_points=aps,
        propagation=make_propagation(
            env_name if env_name in ("office", "basement") else "open", floorplan
        ),
        shadowing=ShadowingModel(
            floorplan.width,
            floorplan.height,
            base_seed=int(s_shadow.generate_state(1)[0]),
        ),
        temporal=TemporalModel(
            temporal_preset, base_seed=int(s_temporal.generate_state(1)[0])
        ),
        device=device or DeviceProfile(),
        schedule=schedule,
        fading_std_db=fading,
        base_seed=int(s_env.generate_state(1)[0]),
    )


def _capture_epoch(
    env: RadioEnvironment,
    time: SimTime,
    epoch: int,
    fpr: int,
    rng: np.random.Generator,
    *,
    jitter: float,
) -> FingerprintDataset:
    """Capture ``fpr`` fingerprints at every RP at one epoch."""
    fp = env.floorplan
    n_rp = fp.n_reference_points
    rows = n_rp * fpr
    rssi = np.empty((rows, env.n_aps), dtype=np.float64)
    rp_idx = np.empty(rows, dtype=np.int64)
    locs = np.empty((rows, 2), dtype=np.float64)
    row = 0
    for rp in range(n_rp):
        for _ in range(fpr):
            # Scans within one visit are ~5 s apart (paper: 6 scans in 30 s).
            t = SimTime(time.hours + row % fpr * (5.0 / 3600.0))
            rssi[row] = env.scan_at_rp(
                rp, t, rng, epoch=epoch, position_jitter_m=jitter
            )
            rp_idx[row] = rp
            locs[row] = fp.reference_points[rp]
            row += 1
    return FingerprintDataset(
        rssi=rssi,
        rp_indices=rp_idx,
        locations=locs,
        times_hours=np.full(rows, time.hours),
        epochs=np.full(rows, epoch, dtype=np.int64),
    )


def generate_path_suite(
    kind: str,
    seed: int = 0,
    *,
    config: SuiteConfig | None = None,
    n_cis: int = 16,
) -> LongitudinalSuite:
    """Office/Basement longitudinal suite (paper Sec. V.A.2, Fig. 6).

    Training uses ``config.train_fpr`` of the ``config.fpr`` fingerprints
    captured at CI:0 (8 AM); the held-out CI:0 fingerprints and all of
    CIs 1..15 form the test sequence, exactly mirroring "we utilized a
    subset of CI:0 ... for the offline phase. The rest of the data from
    CI:0 and CIs:1-15 was used for testing."
    """
    if kind not in PATH_BUILDERS:
        raise KeyError(f"kind must be one of {sorted(PATH_BUILDERS)}")
    config = config or SuiteConfig()
    env = build_environment(kind, seed, n_aps=config.n_aps, device=config.device)
    times = collection_instance_times(n_cis)
    rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(6)[5])
    epochs_data = [
        _capture_epoch(
            env, times[ci], ci, config.fpr, rng, jitter=config.position_jitter_m
        )
        for ci in range(n_cis)
    ]
    ci0 = epochs_data[0]
    train_rows: list[int] = []
    heldout_rows: list[int] = []
    for rp in ci0.rp_set:
        rows = np.flatnonzero(ci0.rp_indices == rp)
        picked = rng.choice(rows, size=config.train_fpr, replace=False)
        train_rows.extend(picked.tolist())
        heldout_rows.extend(sorted(set(rows.tolist()) - set(picked.tolist())))
    train = ci0.select(np.sort(np.asarray(train_rows, dtype=np.int64)))
    test_epochs = [ci0.select(np.sort(np.asarray(heldout_rows, dtype=np.int64)))]
    test_epochs.extend(epochs_data[1:])
    labels = [f"CI:{ci}" for ci in range(n_cis)]
    return LongitudinalSuite(
        name=kind,
        floorplan=env.floorplan,
        train=train,
        test_epochs=test_epochs,
        epoch_labels=labels,
        metadata={
            "seed": seed,
            "fpr": config.fpr,
            "train_fpr": config.train_fpr,
            "n_aps": config.n_aps,
            "ci_hours": [t.hours for t in times],
            "schedule": env.schedule,
            "environment": env,
        },
    )


def generate_uji_suite(
    seed: int = 0,
    *,
    n_aps: int = 90,
    train_fpr: int = 9,
    test_fpr: int = 3,
    n_months: int = 15,
    device: DeviceProfile | None = None,
) -> LongitudinalSuite:
    """UJI-like longitudinal suite (paper Sec. V.A.1, Fig. 5).

    Epoch 0 is the training month (fingerprints captured on one day);
    epochs 1..15 are the monthly test sets. The AP lifecycle schedule is
    indexed by month, with the ~50% change near month 11.
    """
    if train_fpr <= 0 or train_fpr > 9:
        raise ValueError("train_fpr must be in 1..9 (dataset has up to 9)")
    root = np.random.SeedSequence(seed)
    schedule_rng = np.random.default_rng(root.spawn(4)[3])
    # The ~50% AP change lands at month 11 on the full timeline (paper
    # Sec. V.A.2); shorter test timelines place it at ~70% of the horizon.
    change_epoch = min(11, max(1, int(round(0.7 * n_months))))
    schedule = uji_like_schedule(
        n_aps, schedule_rng, n_epochs=n_months + 1, change_epoch=change_epoch
    )
    env = build_environment(
        "uji", seed, n_aps=n_aps, schedule=schedule, device=device
    )
    rng = np.random.default_rng(root.spawn(6)[5])
    train = _capture_epoch(
        env, SimTime.at(hours=2.0), 0, train_fpr, rng, jitter=0.15
    )
    test_epochs = [
        _capture_epoch(env, t, month_idx, test_fpr, rng, jitter=0.15)
        for month_idx, t in enumerate(monthly_times(n_months), start=1)
    ]
    labels = [f"month {m}" for m in range(1, n_months + 1)]
    return LongitudinalSuite(
        name="uji",
        floorplan=env.floorplan,
        train=train,
        test_epochs=test_epochs,
        epoch_labels=labels,
        metadata={
            "seed": seed,
            "train_fpr": train_fpr,
            "test_fpr": test_fpr,
            "n_aps": n_aps,
            "schedule": schedule,
            "environment": env,
        },
    )
