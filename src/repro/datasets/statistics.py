"""Dataset statistics and Fig.-4-style visibility analysis."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..radio.access_point import NO_SIGNAL_DBM
from .fingerprint import FingerprintDataset, LongitudinalSuite


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of one fingerprint dataset."""

    n_samples: int
    n_aps: int
    n_rps: int
    mean_visible_aps: float
    median_rssi_dbm: float
    min_rssi_dbm: float
    max_rssi_dbm: float
    fpr_min: int
    fpr_max: int

    def as_row(self) -> str:
        return (
            f"{self.n_samples:>7} {self.n_aps:>5} {self.n_rps:>5} "
            f"{self.mean_visible_aps:>8.1f} {self.median_rssi_dbm:>8.1f} "
            f"{self.fpr_min:>4}-{self.fpr_max:<4}"
        )


def compute_stats(ds: FingerprintDataset) -> DatasetStats:
    """Compute :class:`DatasetStats` for a dataset."""
    observed = ds.observed_mask()
    vals = ds.rssi[observed]
    counts = list(ds.fingerprints_per_rp().values()) or [0]
    return DatasetStats(
        n_samples=ds.n_samples,
        n_aps=ds.n_aps,
        n_rps=int(ds.rp_set.size),
        mean_visible_aps=float(observed.sum(axis=1).mean()) if ds.n_samples else 0.0,
        median_rssi_dbm=float(np.median(vals)) if vals.size else NO_SIGNAL_DBM,
        min_rssi_dbm=float(vals.min()) if vals.size else NO_SIGNAL_DBM,
        max_rssi_dbm=float(vals.max()) if vals.size else NO_SIGNAL_DBM,
        fpr_min=int(min(counts)),
        fpr_max=int(max(counts)),
    )


def observed_visibility_matrix(suite: LongitudinalSuite) -> np.ndarray:
    """Empirical Fig. 4: AP observed in >= 1 scan of each test epoch.

    Unlike the *scheduled* visibility (which APs transmit), this is what
    the surveyor actually saw — weak APs may be missing from every scan of
    an epoch even though they still transmit.
    """
    mat = np.zeros((suite.n_epochs, suite.n_aps), dtype=bool)
    for e, ds in enumerate(suite.test_epochs):
        mat[e] = ds.observed_mask().any(axis=0)
    return mat


def ap_churn_fraction(suite: LongitudinalSuite) -> np.ndarray:
    """Per-epoch fraction of train-visible APs that vanished by that epoch."""
    train_visible = set(suite.train.visible_ap_union().tolist())
    if not train_visible:
        return np.zeros(suite.n_epochs)
    out = np.empty(suite.n_epochs, dtype=np.float64)
    for e, ds in enumerate(suite.test_epochs):
        now_visible = set(ds.visible_ap_union().tolist())
        out[e] = len(train_visible - now_visible) / len(train_visible)
    return out


def suite_summary_table(suite: LongitudinalSuite) -> str:
    """ASCII table of per-epoch stats for a longitudinal suite."""
    header = (
        "epoch        samples   aps   rps  vis/scan  med dBm  FPR\n"
        + "-" * 62
    )
    lines = [header]
    train_stats = compute_stats(suite.train)
    lines.append(f"{'train':<12}{train_stats.as_row()}")
    lines.extend(
        f"{label:<12}{compute_stats(ds).as_row()}"
        for label, ds in zip(suite.epoch_labels, suite.test_epochs)
    )
    return "\n".join(lines)
