"""Loader for the real UJI long-term WiFi fingerprinting corpus [10].

The paper evaluates on M. Silva et al., "Long-Term WiFi Fingerprinting
Dataset for Research on Robust Indoor Positioning" (MDPI Data, 2018).
That corpus ships as per-month directories of paired CSV files::

    <root>/
      01/ trn01rss.csv  trn01crd.csv  tst01rss.csv  tst01crd.csv
      02/ trn02rss.csv  ...
      ...

- ``*rss.csv``: one scan per row, comma-separated integers, one column
  per AP; the sentinel ``100`` means "AP not detected".
- ``*crd.csv``: one row per scan: ``x, y, floor``.

This module parses that layout into the repository's containers so the
evaluation harness runs unmodified on the *measured* corpus when a copy
is available (it cannot be redistributed here; the simulator-backed
generators reproduce its shape offline). Parsing is deliberately
tolerant: extra whitespace, float RSSI values and missing month folders
are all accepted.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..geometry.floorplan import Floorplan
from ..radio.access_point import NO_SIGNAL_DBM
from .fingerprint import FingerprintDataset, LongitudinalSuite

#: The corpus' "AP not detected" sentinel.
UJI_NOT_DETECTED = 100


def read_rss_csv(path: str | Path) -> np.ndarray:
    """Parse an ``*rss.csv`` file to an ``(n, n_aps)`` dBm matrix.

    The ``100`` sentinel becomes :data:`NO_SIGNAL_DBM`; everything else
    is clipped into the valid [-100, 0] dBm range.
    """
    rows = _read_numeric_csv(path)
    rssi = np.where(rows >= UJI_NOT_DETECTED, NO_SIGNAL_DBM, rows)
    return np.clip(rssi, NO_SIGNAL_DBM, 0.0)


def read_crd_csv(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Parse a ``*crd.csv`` file to ``(locations (n, 2), floors (n,))``."""
    rows = _read_numeric_csv(path)
    if rows.shape[1] < 2:
        raise ValueError(f"{path}: coordinate files need at least x, y columns")
    locations = rows[:, :2].astype(np.float64)
    floors = (
        rows[:, 2].astype(np.int64)
        if rows.shape[1] >= 3
        else np.zeros(rows.shape[0], dtype=np.int64)
    )
    return locations, floors


def _read_numeric_csv(path: str | Path) -> np.ndarray:
    path = Path(path)
    rows: list[list[float]] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append([float(cell) for cell in line.split(",")])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: non-numeric cell") from exc
    if not rows:
        raise ValueError(f"{path}: empty file")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError(f"{path}: ragged rows (expected {width} columns)")
    return np.asarray(rows, dtype=np.float64)


def load_uji_month(
    month_dir: str | Path,
    *,
    split: str = "trn",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One month folder -> ``(rssi, locations, floors)``.

    ``split`` is ``"trn"`` or ``"tst"``. File names follow the corpus
    convention ``<split><MM>rss.csv`` / ``<split><MM>crd.csv``.
    """
    if split not in ("trn", "tst"):
        raise ValueError("split must be 'trn' or 'tst'")
    month_dir = Path(month_dir)
    month = month_dir.name
    rss_path = month_dir / f"{split}{month}rss.csv"
    crd_path = month_dir / f"{split}{month}crd.csv"
    if not rss_path.exists() or not crd_path.exists():
        raise FileNotFoundError(
            f"{month_dir}: expected {rss_path.name} and {crd_path.name}"
        )
    rssi = read_rss_csv(rss_path)
    locations, floors = read_crd_csv(crd_path)
    if rssi.shape[0] != locations.shape[0]:
        raise ValueError(
            f"{month_dir}: {rssi.shape[0]} scans vs "
            f"{locations.shape[0]} coordinates"
        )
    return rssi, locations, floors


def _assign_rp_indices(
    locations: np.ndarray, reference_points: np.ndarray
) -> np.ndarray:
    """Nearest reference point per scan (RPs come from the training set)."""
    d2 = (
        (locations**2).sum(axis=1)[:, None]
        + (reference_points**2).sum(axis=1)[None, :]
        - 2.0 * locations @ reference_points.T
    )
    return d2.argmin(axis=1).astype(np.int64)


def load_uji_longterm(
    root: str | Path,
    *,
    floor: int | None = 3,
    months: Sequence[str] | None = None,
    rp_round_m: float = 0.5,
) -> LongitudinalSuite:
    """Assemble the full longitudinal suite from a corpus checkout.

    ``months`` defaults to every numeric sub-directory of ``root`` in
    sorted order; the first month's training split becomes the offline
    set (the paper: fingerprints "collected on the same day"), every
    month's test split is one evaluation epoch. ``floor`` filters to one
    library floor (the paper uses floor 3; pass None to keep all).

    Reference points are discovered from the training coordinates,
    snapped to ``rp_round_m`` to merge re-visits of the same spot.
    """
    root = Path(root)
    if months is None:
        months = sorted(p.name for p in root.iterdir() if p.name.isdigit())
    if not months:
        raise FileNotFoundError(f"{root}: no month directories found")
    train_rssi, train_loc, train_floor = load_uji_month(
        root / months[0], split="trn"
    )
    if floor is not None:
        keep = train_floor == floor
        train_rssi, train_loc = train_rssi[keep], train_loc[keep]
    if train_rssi.shape[0] == 0:
        raise ValueError(f"no training scans on floor {floor!r}")
    snapped = np.round(train_loc / rp_round_m) * rp_round_m
    reference_points = np.unique(snapped, axis=0)
    width = float(reference_points[:, 0].max()) + 1.0
    height = float(reference_points[:, 1].max()) + 1.0
    floorplan = Floorplan(
        name=f"uji-longterm-f{floor if floor is not None else 'all'}",
        width=max(width, 1.0),
        height=max(height, 1.0),
        reference_points=reference_points,
        rp_spacing=rp_round_m,
    )
    train = FingerprintDataset(
        rssi=train_rssi,
        rp_indices=_assign_rp_indices(train_loc, reference_points),
        locations=train_loc,
        times_hours=np.zeros(train_rssi.shape[0]),
        epochs=np.zeros(train_rssi.shape[0], dtype=np.int64),
    )
    test_epochs: list[FingerprintDataset] = []
    labels: list[str] = []
    for epoch, month in enumerate(months, start=1):
        rssi, loc, floors = load_uji_month(root / month, split="tst")
        if floor is not None:
            keep = floors == floor
            rssi, loc = rssi[keep], loc[keep]
        if rssi.shape[0] == 0:
            continue
        test_epochs.append(
            FingerprintDataset(
                rssi=rssi,
                rp_indices=_assign_rp_indices(loc, reference_points),
                locations=loc,
                times_hours=np.full(rssi.shape[0], epoch * 730.0),
                epochs=np.full(rssi.shape[0], epoch, dtype=np.int64),
            )
        )
        labels.append(f"month {month}")
    if not test_epochs:
        raise ValueError("no test scans survived the floor filter")
    return LongitudinalSuite(
        name="uji-longterm",
        floorplan=floorplan,
        train=train,
        test_epochs=test_epochs,
        epoch_labels=labels,
        metadata={"root": str(root), "months": list(months), "floor": floor},
    )
