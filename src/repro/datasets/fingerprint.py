"""Fingerprint dataset containers.

A :class:`FingerprintDataset` is the tabular object both phases of the
paper operate on: each row is one WiFi scan (RSSI per AP, -100 dBm for
unobserved) labelled with its reference point, capture location and
capture time. A :class:`LongitudinalSuite` bundles the offline training
set with the sequence of test epochs (months or collection instances)
that the evaluation sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..geometry.floorplan import Floorplan
from ..radio.access_point import NO_SIGNAL_DBM


@dataclass
class FingerprintDataset:
    """A set of labelled WiFi fingerprints.

    Attributes
    ----------
    rssi:
        ``(n_samples, n_aps)`` RSSI in dBm; ``NO_SIGNAL_DBM`` = unobserved.
    rp_indices:
        ``(n_samples,)`` reference-point labels.
    locations:
        ``(n_samples, 2)`` ground-truth capture coordinates in meters.
    times_hours:
        ``(n_samples,)`` capture time (hours since deployment).
    epochs:
        ``(n_samples,)`` epoch index (collection instance / month).
    """

    rssi: np.ndarray
    rp_indices: np.ndarray
    locations: np.ndarray
    times_hours: np.ndarray
    epochs: np.ndarray

    def __post_init__(self) -> None:
        self.rssi = np.asarray(self.rssi, dtype=np.float64)
        self.rp_indices = np.asarray(self.rp_indices, dtype=np.int64)
        self.locations = np.asarray(self.locations, dtype=np.float64)
        self.times_hours = np.asarray(self.times_hours, dtype=np.float64)
        self.epochs = np.asarray(self.epochs, dtype=np.int64)
        n = self.rssi.shape[0]
        if self.rssi.ndim != 2:
            raise ValueError(f"rssi must be 2-D, got {self.rssi.shape}")
        if self.locations.shape != (n, 2):
            raise ValueError("locations must be (n_samples, 2)")
        for name, arr in (
            ("rp_indices", self.rp_indices),
            ("times_hours", self.times_hours),
            ("epochs", self.epochs),
        ):
            if arr.shape != (n,):
                raise ValueError(f"{name} must be (n_samples,), got {arr.shape}")
        if n and (self.rssi > 0).any():
            raise ValueError("RSSI must be <= 0 dBm")
        if n and (self.rssi < NO_SIGNAL_DBM).any():
            raise ValueError(f"RSSI must be >= {NO_SIGNAL_DBM} dBm")

    # -- basic queries -----------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of fingerprint rows."""
        return int(self.rssi.shape[0])

    @property
    def n_aps(self) -> int:
        """Number of AP columns (fingerprint dimensionality)."""
        return int(self.rssi.shape[1])

    @property
    def rp_set(self) -> np.ndarray:
        """Sorted unique RP labels present in this dataset."""
        return np.unique(self.rp_indices)

    def observed_mask(self) -> np.ndarray:
        """Boolean (n_samples, n_aps): True where the AP was detected."""
        return self.rssi > NO_SIGNAL_DBM

    def visible_ap_union(self) -> np.ndarray:
        """AP indices observed in at least one sample."""
        return np.flatnonzero(self.observed_mask().any(axis=0))

    def fingerprints_per_rp(self) -> dict[int, int]:
        """Sample count per RP label."""
        labels, counts = np.unique(self.rp_indices, return_counts=True)
        return {int(label): int(c) for label, c in zip(labels, counts)}

    # -- selection ------------------------------------------------------------

    def select(self, mask_or_indices: np.ndarray) -> FingerprintDataset:
        """Row subset (boolean mask or index array)."""
        idx = np.asarray(mask_or_indices)
        return FingerprintDataset(
            rssi=self.rssi[idx],
            rp_indices=self.rp_indices[idx],
            locations=self.locations[idx],
            times_hours=self.times_hours[idx],
            epochs=self.epochs[idx],
        )

    def filter_epoch(self, epoch: int) -> FingerprintDataset:
        """Rows captured during one epoch."""
        return self.select(self.epochs == epoch)

    def subsample_fpr(
        self, fpr: int, rng: np.random.Generator
    ) -> FingerprintDataset:
        """Keep at most ``fpr`` fingerprints per RP, chosen at random.

        This is the knob behind the paper's Fig. 7 sensitivity study
        ("varying the number of fingerprints per RP").
        """
        if fpr <= 0:
            raise ValueError("fpr must be positive")
        keep: list[np.ndarray] = []
        for rp in self.rp_set:
            rows = np.flatnonzero(self.rp_indices == rp)
            if rows.shape[0] > fpr:
                rows = rng.choice(rows, size=fpr, replace=False)
            keep.append(np.sort(rows))
        return self.select(np.concatenate(keep))

    def merge(self, other: "FingerprintDataset") -> FingerprintDataset:
        """Row-wise concatenation (AP columns must match)."""
        if other.n_aps != self.n_aps:
            raise ValueError(
                f"AP column mismatch: {self.n_aps} vs {other.n_aps}"
            )
        return FingerprintDataset(
            rssi=np.vstack([self.rssi, other.rssi]),
            rp_indices=np.concatenate([self.rp_indices, other.rp_indices]),
            locations=np.vstack([self.locations, other.locations]),
            times_hours=np.concatenate([self.times_hours, other.times_hours]),
            epochs=np.concatenate([self.epochs, other.epochs]),
        )

    def shuffled(self, rng: np.random.Generator) -> FingerprintDataset:
        """Row-order permutation (used by the Fig. 7 repeat protocol)."""
        return self.select(rng.permutation(self.n_samples))

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write to a compressed ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            rssi=self.rssi,
            rp_indices=self.rp_indices,
            locations=self.locations,
            times_hours=self.times_hours,
            epochs=self.epochs,
        )

    @classmethod
    def load(cls, path: str | Path) -> FingerprintDataset:
        with np.load(Path(path)) as data:
            return cls(
                rssi=data["rssi"],
                rp_indices=data["rp_indices"],
                locations=data["locations"],
                times_hours=data["times_hours"],
                epochs=data["epochs"],
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FingerprintDataset(n={self.n_samples}, aps={self.n_aps}, "
            f"rps={self.rp_set.size}, epochs={np.unique(self.epochs).size})"
        )


@dataclass
class LongitudinalSuite:
    """Offline training data plus the longitudinal test sequence.

    ``test_epochs[i]`` holds all test fingerprints of epoch ``i`` with
    label ``epoch_labels[i]`` (e.g. ``"CI:3"`` or ``"month 7"``). The
    floorplan rides along because both STONE (triplet selection) and the
    error metric (RP coordinates) need the geometry.
    """

    name: str
    floorplan: Floorplan
    train: FingerprintDataset
    test_epochs: list[FingerprintDataset]
    epoch_labels: list[str]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.test_epochs) != len(self.epoch_labels):
            raise ValueError("one label per test epoch required")
        for ds in self.test_epochs:
            if ds.n_aps != self.train.n_aps:
                raise ValueError("test epochs must share the train AP columns")

    @property
    def n_epochs(self) -> int:
        """Number of longitudinal test epochs."""
        return len(self.test_epochs)

    @property
    def n_aps(self) -> int:
        """AP column count shared by train and every test epoch."""
        return self.train.n_aps

    def total_test_samples(self) -> int:
        """Total fingerprints across all test epochs."""
        return sum(ds.n_samples for ds in self.test_epochs)

    def describe(self) -> str:
        """Multi-line summary used by example scripts and reports."""
        lines = [
            f"suite {self.name!r}: {self.floorplan.describe()}",
            f"  train: {self.train.n_samples} fingerprints over "
            f"{self.train.rp_set.size} RPs ({self.n_aps} AP columns)",
            f"  test:  {self.n_epochs} epochs, {self.total_test_samples()} fingerprints",
        ]
        return "\n".join(lines)
