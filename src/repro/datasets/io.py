"""CSV import/export for fingerprint datasets.

The on-disk CSV schema mirrors public fingerprinting corpora (one row per
scan): ``rp,loc_x,loc_y,time_hours,epoch,ap_000,...,ap_NNN`` with RSSI in
dBm and -100 for unobserved APs. ``.npz`` round-tripping lives on the
dataset class itself; CSV is for interoperability with external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .fingerprint import FingerprintDataset


def dataset_to_csv(ds: FingerprintDataset, path: str | Path) -> None:
    """Write a dataset to CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        ap_cols = [f"ap_{i:03d}" for i in range(ds.n_aps)]
        writer.writerow(["rp", "loc_x", "loc_y", "time_hours", "epoch"] + ap_cols)
        for i in range(ds.n_samples):
            row = [
                int(ds.rp_indices[i]),
                f"{ds.locations[i, 0]:.3f}",
                f"{ds.locations[i, 1]:.3f}",
                f"{ds.times_hours[i]:.4f}",
                int(ds.epochs[i]),
            ]
            row.extend(f"{v:.1f}" for v in ds.rssi[i])
            writer.writerow(row)


def dataset_from_csv(path: str | Path) -> FingerprintDataset:
    """Read a dataset written by :func:`dataset_to_csv`."""
    path = Path(path)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header[:5] != ["rp", "loc_x", "loc_y", "time_hours", "epoch"]:
            raise ValueError(f"{path}: unexpected CSV header {header[:5]}")
        n_aps = len(header) - 5
        rps, locs, times, epochs, rssi = [], [], [], [], []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 5 + n_aps:
                raise ValueError(f"{path}:{line_no}: expected {5 + n_aps} fields")
            rps.append(int(row[0]))
            locs.append((float(row[1]), float(row[2])))
            times.append(float(row[3]))
            epochs.append(int(row[4]))
            rssi.append([float(v) for v in row[5:]])
    return FingerprintDataset(
        rssi=np.asarray(rssi, dtype=np.float64).reshape(len(rps), n_aps),
        rp_indices=np.asarray(rps),
        locations=np.asarray(locs),
        times_hours=np.asarray(times),
        epochs=np.asarray(epochs),
    )
