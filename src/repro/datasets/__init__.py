"""``repro.datasets`` — longitudinal fingerprint corpora.

Containers (:class:`FingerprintDataset`, :class:`LongitudinalSuite`),
synthetic generators mirroring the paper's UJI/Office/Basement corpora,
CSV/NPZ persistence, a loader for the real UJI long-term corpus layout,
and summary statistics.
"""

from .fingerprint import FingerprintDataset, LongitudinalSuite
from .generators import (
    SuiteConfig,
    build_environment,
    generate_path_suite,
    generate_uji_suite,
)
from .io import dataset_from_csv, dataset_to_csv
from .statistics import (
    DatasetStats,
    ap_churn_fraction,
    compute_stats,
    observed_visibility_matrix,
    suite_summary_table,
)
from .uji_io import (
    load_uji_longterm,
    load_uji_month,
    read_crd_csv,
    read_rss_csv,
)

__all__ = [
    "FingerprintDataset",
    "LongitudinalSuite",
    "SuiteConfig",
    "build_environment",
    "generate_path_suite",
    "generate_uji_suite",
    "dataset_to_csv",
    "dataset_from_csv",
    "DatasetStats",
    "compute_stats",
    "observed_visibility_matrix",
    "ap_churn_fraction",
    "suite_summary_table",
    "load_uji_longterm",
    "load_uji_month",
    "read_rss_csv",
    "read_crd_csv",
]
