"""Index configuration shared by every layer that names an index.

One small frozen dataclass travels from the CLI down to the fitted
:class:`~repro.core.knn_head.KNNHead`: it says *how* the reference
radio map should be partitioned (``kind``), into how many shards
(``n_shards``), how many shards a query probes (``n_probe``) and which
seed drives the coarse quantizer's k-means. Its :meth:`tag` string is
the canonical cache-key component — the evaluation engine's
``ResultCache`` and the serving layer's ``ModelStore`` both hash it, so
a sharded and an exhaustive fit of the same suite can never collide.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Index kinds the partitioner layer implements.
INDEX_KINDS = ("exhaustive", "region", "kmeans")


@dataclass(frozen=True)
class IndexConfig:
    """How the reference fingerprint set is partitioned and probed.

    Attributes
    ----------
    kind:
        ``"exhaustive"`` (score every reference row — today's behaviour,
        bit-identical), ``"region"`` (floorplan grid-cell shards) or
        ``"kmeans"`` (coarse quantizer over RSSI/embedding vectors).
    n_shards:
        Target shard count. Region partitioning may produce fewer
        (empty grid cells are dropped); k-means may produce fewer when
        clusters collapse.
    n_probe:
        Shards scored per query. ``n_probe >= n_shards`` degenerates to
        exhaustive search (and is bit-identical to it); smaller values
        trade a little recall for sub-linear distance work.
    seed:
        Seed for the coarse quantizer's k-means iterations (ignored by
        the region partitioner).
    backend:
        Kernel backend (:mod:`repro.kernels`) for the *probe* distance
        blocks — which shards a query scores. ``None`` inherits the
        owning head's backend. Participates in :meth:`tag` only when it
        can change results (a bit-identical backend probes identically).
    """

    kind: str = "exhaustive"
    n_shards: int = 16
    n_probe: int = 4
    seed: int = 0
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise ValueError(
                f"index kind must be one of {INDEX_KINDS}, got {self.kind!r}"
            )
        if self.n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if self.n_probe <= 0:
            raise ValueError("n_probe must be positive")
        if self.backend is not None:
            # Canonicalize (and validate) eagerly so equal behaviour
            # always means equal config objects and equal tags.
            # Local import: repro.kernels reaches back into this
            # package for the shared distance kernel.
            from ..kernels import canonical_backend_name

            object.__setattr__(
                self, "backend", canonical_backend_name(self.backend)
            )

    @property
    def is_exhaustive(self) -> bool:
        """True when this configuration performs no sharding at all."""
        return self.kind == "exhaustive"

    def tag(self) -> str:
        """Canonical string naming this configuration in cache keys.

        Canonical means *behaviorally* normalized, so configs that
        cannot differ in results share one tag (one refit, one cached
        artifact): exhaustive configs all tag ``"exhaustive"``
        regardless of the unused shard parameters, ``n_probe`` is
        clamped to ``n_shards`` (the index clamps it the same way), and
        the seed appears only for ``kmeans`` (the region partitioner
        never reads it).
        """
        if self.is_exhaustive:
            return "exhaustive"
        probe = min(self.n_probe, self.n_shards)
        tag = f"{self.kind}:s{self.n_shards}:p{probe}"
        if self.kind == "kmeans":
            tag += f":r{self.seed}"
        if self.backend is not None:
            from ..kernels import backend_changes_results

            # Backend participates only when it can change which shards
            # are probed; bit-identical backends share the legacy tag.
            if backend_changes_results(self.backend):
                tag += f":k{self.backend}"
        return tag


#: The do-nothing default: score the full reference matrix.
EXHAUSTIVE = IndexConfig()


def index_tag(config: IndexConfig | None) -> str:
    """Cache-key tag for an optional config (``None`` = exhaustive)."""
    return (config or EXHAUSTIVE).tag()
