"""Sharded radio-map index: sub-linear candidate selection for KNN.

Every framework in this reproduction bottoms out in nearest-neighbour
search over a dense reference fingerprint matrix, so each query pays
O(n_reference) distance work. A :class:`CandidateIndex` cuts that down:
the reference rows are partitioned into shards
(:mod:`repro.index.partitioners`), each shard gets an RSSI/embedding
centroid, and a query scores only the ``n_probe`` shards whose
centroids are nearest — the IVF recipe, specialised to radio maps.

Two concrete indexes:

* :class:`ExhaustiveIndex` — one shard holding every row. The KNN head
  treats it exactly like having no index at all, so results are
  bit-identical to the pre-index code by construction.
* :class:`ShardedRadioMap` — the real thing, built from an
  :class:`~repro.index.config.IndexConfig` by :func:`build_index`.
  When ``n_probe >= n_shards`` every query probes every shard and the
  candidate set is the full row range in ascending order, which makes
  full-probe results bit-identical to exhaustive search (the gate
  ``benchmarks/bench_index.py`` enforces).

The index answers *which rows to score*; the distance/top-k kernel
stays in :class:`repro.core.knn_head.KNNHead`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ..geometry.floorplan import Floorplan
from .config import IndexConfig
from .distance import squared_distances
from .partitioners import kmeans_partition, region_partition


class CandidateIndex(ABC):
    """Which reference rows should be scored for a batch of queries."""

    #: Mirrors :attr:`IndexConfig.kind` for reporting.
    kind: str = "exhaustive"

    @property
    @abstractmethod
    def n_rows(self) -> int:
        """Total reference rows the index covers."""

    @property
    @abstractmethod
    def n_shards(self) -> int:
        """Number of (non-empty) shards."""

    @property
    @abstractmethod
    def n_probe(self) -> int:
        """Shards scored per query (clamped to ``n_shards``)."""

    @abstractmethod
    def probe(self, queries: np.ndarray) -> np.ndarray:
        """``(n, n_probe)`` shard ids per query, ascending within a row.

        Ascending ids make the row a canonical grouping key: two
        queries probing the same shard set compare equal, whatever the
        centroid distance order was.
        """

    @abstractmethod
    def rows_for(self, shard_ids: Sequence[int]) -> np.ndarray:
        """Sorted union of the reference rows in the given shards."""

    @abstractmethod
    def primary_shard(self, queries: np.ndarray) -> np.ndarray:
        """``(n,)`` nearest-centroid shard id per query (for routing)."""

    @abstractmethod
    def describe(self) -> dict:
        """JSON-ready shard statistics for ``/models`` and reports."""


class ExhaustiveIndex(CandidateIndex):
    """The no-op index: a single shard holding every reference row."""

    kind = "exhaustive"

    def __init__(self, n_rows: int) -> None:
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        self._n_rows = int(n_rows)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_shards(self) -> int:
        return 1

    @property
    def n_probe(self) -> int:
        return 1

    def probe(self, queries: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(np.asarray(queries))
        return np.zeros((q.shape[0], 1), dtype=np.int64)

    def rows_for(self, shard_ids: Sequence[int]) -> np.ndarray:
        return np.arange(self._n_rows, dtype=np.int64)

    def primary_shard(self, queries: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(np.asarray(queries))
        return np.zeros(q.shape[0], dtype=np.int64)

    def describe(self) -> dict:
        return {"kind": self.kind, "n_shards": 1, "n_probe": 1,
                "n_rows": self._n_rows}


class ShardedRadioMap(CandidateIndex):
    """Partitioned reference set with nearest-centroid probing.

    Parameters
    ----------
    shard_rows:
        One sorted row-index array per (non-empty) shard; together they
        must partition ``range(n_rows)`` exactly.
    vectors:
        The ``(n_rows, d)`` reference vectors the shards were drawn
        over. Centroids are per-shard means of these vectors, in the
        *same space queries arrive in* — raw clipped RSSI for the KNN
        baselines, embeddings for STONE — so probing is one small
        ``(n, n_shards)`` distance block.
    n_probe:
        Shards scored per query, clamped to the shard count.
    kind:
        Partitioner name, for reporting and cache tags.
    backend:
        Kernel-backend name (:mod:`repro.kernels`) for the centroid
        probe distances; ``None`` is the bit-identical reference
        kernel. Full probing never computes a distance, so it stays
        identical across backends by construction.
    """

    def __init__(
        self,
        shard_rows: list[np.ndarray],
        vectors: np.ndarray,
        *,
        n_probe: int,
        kind: str,
        backend: str | None = None,
    ) -> None:
        if not shard_rows:
            raise ValueError("a sharded index needs at least one shard")
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        vectors = np.asarray(vectors, dtype=np.float64)
        self._shard_rows = [
            np.sort(np.asarray(rows, dtype=np.int64)) for rows in shard_rows
        ]
        counted = np.concatenate(self._shard_rows)
        if counted.size != vectors.shape[0] or (
            np.sort(counted).size
            and not np.array_equal(np.sort(counted), np.arange(vectors.shape[0]))
        ):
            raise ValueError("shard_rows must partition the reference rows")
        self.kind = str(kind)
        self._n_rows = int(vectors.shape[0])
        self._n_probe = min(int(n_probe), len(self._shard_rows))
        self._centroids = np.stack(
            [vectors[rows].mean(axis=0) for rows in self._shard_rows]
        )
        self._centroid_sq = (self._centroids * self._centroids).sum(axis=1)
        # Probe kernel seam. Lazy import: repro.kernels reaches back
        # into this package for the shared distance function.
        from ..kernels import resolve_backend_name

        self._probe_backend = resolve_backend_name(backend)

    # -- geometry of the index ----------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_shards(self) -> int:
        return len(self._shard_rows)

    @property
    def n_probe(self) -> int:
        return self._n_probe

    def shard_sizes(self) -> np.ndarray:
        """Row count per shard."""
        return np.array([rows.size for rows in self._shard_rows])

    # -- probing --------------------------------------------------------------

    def _as_queries(self, queries: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if q.shape[1] != self._centroids.shape[1]:
            raise ValueError(
                f"queries must be (n, {self._centroids.shape[1]}), got {q.shape}"
            )
        return q

    def _centroid_sq_distances(self, queries: np.ndarray) -> np.ndarray:
        # Pre-seam pickles lack the backend fields: fall back to the
        # (bit-identical) shared reference kernel they were built on.
        backend_name = getattr(self, "_probe_backend", None)
        if backend_name is None or backend_name == "reference":
            return squared_distances(
                self._as_queries(queries), self._centroids, self._centroid_sq
            )
        from ..kernels import get_backend

        backend = get_backend(backend_name)
        packed = getattr(self, "_packed_centroids", None)
        if packed is None or packed.backend != backend_name:
            packed = backend.pack(self._centroids)
            self._packed_centroids = packed
        return backend.sq_distances(self._as_queries(queries), packed)

    def probe(self, queries: np.ndarray) -> np.ndarray:
        if self._n_probe >= self.n_shards:
            # Full probe needs no centroid distances at all — every
            # query probes every shard.
            q = self._as_queries(queries)
            return np.broadcast_to(
                np.arange(self.n_shards, dtype=np.int64),
                (q.shape[0], self.n_shards),
            ).copy()
        d2 = self._centroid_sq_distances(queries)
        # Stable sort: deterministic shard choice on centroid-distance
        # ties. The selected ids are re-sorted ascending so identical
        # probe sets compare equal row-wise (canonical grouping key).
        nearest = np.argsort(d2, axis=1, kind="stable")[:, : self._n_probe]
        return np.sort(nearest, axis=1).astype(np.int64)

    def rows_for(self, shard_ids: Sequence[int]) -> np.ndarray:
        ids = np.unique(np.asarray(shard_ids, dtype=np.int64))
        if ids.size and (ids[0] < 0 or ids[-1] >= self.n_shards):
            raise IndexError(f"shard id out of range [0, {self.n_shards})")
        if ids.size == self.n_shards:
            return np.arange(self._n_rows, dtype=np.int64)
        # Shards are disjoint and internally sorted; the union of a few
        # sorted arrays merges with one concatenate + sort.
        return np.sort(np.concatenate([self._shard_rows[i] for i in ids]))

    def primary_shard(self, queries: np.ndarray) -> np.ndarray:
        d2 = self._centroid_sq_distances(queries)
        return d2.argmin(axis=1).astype(np.int64)

    # -- reporting -----------------------------------------------------------

    def describe(self) -> dict:
        sizes = self.shard_sizes()
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "n_probe": self._n_probe,
            "n_rows": self._n_rows,
            "probe_backend": getattr(self, "_probe_backend", "reference"),
            "rows_per_shard": {
                "min": int(sizes.min()),
                "mean": round(float(sizes.mean()), 1),
                "max": int(sizes.max()),
            },
        }


def build_index(
    config: IndexConfig | None,
    vectors: np.ndarray,
    locations: np.ndarray,
    *,
    floorplan: Floorplan | None = None,
    backend: str | None = None,
) -> CandidateIndex:
    """Build the index an :class:`IndexConfig` describes over a reference set.

    ``vectors`` must be the same matrix queries are compared against
    (raw clipped RSSI or embeddings); ``locations`` are the rows'
    capture coordinates (used by the region partitioner only).
    ``backend`` is the owning head's kernel backend, used for probe
    distances unless the config names its own.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if config is None or config.is_exhaustive:
        return ExhaustiveIndex(vectors.shape[0])
    if config.kind == "region":
        shards = region_partition(
            locations, config.n_shards, floorplan=floorplan
        )
    elif config.kind == "kmeans":
        shards = kmeans_partition(
            vectors, config.n_shards, seed=config.seed
        )
    else:  # pragma: no cover - IndexConfig validates kinds
        raise ValueError(f"unknown index kind {config.kind!r}")
    if len(shards) <= 1:
        # Degenerate partition (all rows in one cell/cluster): the
        # exhaustive index is the honest description of what happens.
        return ExhaustiveIndex(vectors.shape[0])
    return ShardedRadioMap(
        shards,
        vectors,
        n_probe=config.n_probe,
        kind=config.kind,
        backend=config.backend if config.backend is not None else backend,
    )
