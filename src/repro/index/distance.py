"""The one squared-Euclidean-distance kernel every search path shares.

The index layer's bit-identity guarantee (full-probe sharded search ==
exhaustive search) holds because both paths run *the same float ops in
the same order*. Keeping the kernel in exactly one place makes that
provable: ``KNNHead``'s exhaustive and sharded paths, the shard
centroid probing and the k-means partitioner all call this function,
so a numeric tweak (dtype, clamp, BLAS ordering) can never drift one
copy away from the others.
"""

from __future__ import annotations


import numpy as np


def squared_distances(
    queries: np.ndarray,
    refs: np.ndarray,
    refs_sq: np.ndarray | None = None,
) -> np.ndarray:
    """``(n, m)`` squared Euclidean distances, clamped at zero.

    ``refs_sq`` is the precomputed ``(refs * refs).sum(axis=1)`` —
    pass it on hot paths to skip recomputing the reference norms.
    """
    if refs_sq is None:
        refs_sq = (refs * refs).sum(axis=1)
    d2 = (
        (queries * queries).sum(axis=1)[:, None]
        + refs_sq[None, :]
        - 2.0 * (queries @ refs.T)
    )
    np.maximum(d2, 0.0, out=d2)
    return d2
