"""Reference-set partitioners: floorplan regions and a coarse quantizer.

Both partitioners map every reference row to exactly one shard and
return the same structure — a list of sorted row-index arrays — so the
:class:`~repro.index.sharded.ShardedRadioMap` built on top is agnostic
to how the shards were drawn:

* :func:`region_partition` cuts the floorplan's bounding box into a
  near-square grid of cells (geometry from
  :class:`repro.geometry.floorplan.Floorplan`) and assigns each
  reference row by its capture location. Physically adjacent
  fingerprints — which are also the radio-similar ones — land in the
  same shard.
* :func:`kmeans_partition` runs a small deterministic k-means (Lloyd's
  algorithm, k-means++-style seeding from an explicit RNG) directly on
  the RSSI/embedding vectors — the classic IVF coarse quantizer. It
  needs no geometry, so it also covers reference sets whose locations
  are unknown or unhelpful.

Empty shards are dropped (a grid cell with no reference points, a
k-means cluster that lost all members), so callers may receive fewer
shards than requested; singleton shards are legal.
"""

from __future__ import annotations


import numpy as np

from ..geometry.floorplan import Floorplan
from .distance import squared_distances


def _grid_dims(n_shards: int, width: float, height: float) -> tuple[int, int]:
    """Grid (nx, ny) with nx*ny <= n_shards, cells as square as possible.

    The cap matters: callers promise at most ``n_shards`` shards (the
    ``n_probe >= n_shards`` full-probe identity guarantee leans on it),
    so the grid rounds *down*, never up.
    """
    aspect = width / height if height > 0 else 1.0
    nx = max(1, min(n_shards, int(round(np.sqrt(n_shards * aspect)))))
    ny = max(1, n_shards // nx)
    return nx, ny


def region_partition(
    locations: np.ndarray,
    n_shards: int,
    *,
    floorplan: Floorplan | None = None,
) -> list[np.ndarray]:
    """Partition reference rows into floorplan grid-cell shards.

    ``locations`` is the ``(n, 2)`` capture coordinates of the
    reference rows. With a ``floorplan``, the grid spans its
    ``[0, width] x [0, height]`` bounds; without one, the bounding box
    of the locations. Points exactly on an interior cell boundary
    belong to the higher cell (``floor`` of the scaled coordinate);
    points on the outer edge are clamped into the last cell, so every
    row is assigned exactly once.
    """
    locations = np.asarray(locations, dtype=np.float64)
    if locations.ndim != 2 or locations.shape[1] != 2:
        raise ValueError(f"locations must be (n, 2), got {locations.shape}")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    n = locations.shape[0]
    if n == 0:
        return []
    if floorplan is not None:
        x0, y0 = 0.0, 0.0
        x1, y1 = float(floorplan.width), float(floorplan.height)
    else:
        x0, y0 = locations.min(axis=0)
        x1, y1 = locations.max(axis=0)
    nx, ny = _grid_dims(min(n_shards, n), x1 - x0 or 1.0, y1 - y0 or 1.0)
    span_x = (x1 - x0) or 1.0
    span_y = (y1 - y0) or 1.0
    cx = np.clip(
        ((locations[:, 0] - x0) / span_x * nx).astype(np.int64), 0, nx - 1
    )
    cy = np.clip(
        ((locations[:, 1] - y0) / span_y * ny).astype(np.int64), 0, ny - 1
    )
    cell = cy * nx + cx
    # unique() sorts, so shard order is deterministic; rows ascend.
    return [np.flatnonzero(cell == c) for c in np.unique(cell)]


def kmeans_partition(
    vectors: np.ndarray,
    n_shards: int,
    *,
    seed: int = 0,
    n_iter: int = 12,
) -> list[np.ndarray]:
    """Coarse-quantize reference vectors into k-means cluster shards.

    Deterministic: seeding and iteration count are fixed by the
    arguments, and ties in the assignment step break toward the lowest
    cluster id (``argmin``). Clusters that lose every member are
    dropped from the result rather than re-seeded, so the shard count
    can come back smaller than requested.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be (n, d), got {vectors.shape}")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    n = vectors.shape[0]
    if n == 0:
        return []
    k = min(n_shards, n)
    rng = np.random.default_rng([seed, n, vectors.shape[1]])
    # k-means++-style seeding: spread the initial centers out so a bad
    # draw cannot collapse most of the map into one shard.
    centers = np.empty((k, vectors.shape[1]), dtype=np.float64)
    centers[0] = vectors[int(rng.integers(n))]
    d2 = ((vectors - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:  # all remaining points coincide with a center
            centers[j:] = vectors[int(rng.integers(n))]
            break
        centers[j] = vectors[int(rng.choice(n, p=d2 / total))]
        d2 = np.minimum(d2, ((vectors - centers[j]) ** 2).sum(axis=1))
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(max(1, n_iter)):
        # (n, k) squared distances in one shot; k is small by design.
        new_assign = squared_distances(vectors, centers).argmin(axis=1)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        for j in range(k):
            members = vectors[assign == j]
            if members.shape[0]:
                centers[j] = members.mean(axis=0)
    return [
        np.flatnonzero(assign == j)
        for j in range(k)
        if (assign == j).any()
    ]
