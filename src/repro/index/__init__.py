"""Sharded radio-map index: sub-linear candidate selection for KNN.

Public surface:

* :class:`IndexConfig` — the configuration object every layer passes
  around (CLI flags → registry → fitted heads → cache keys).
* :func:`build_index` — construct the concrete index a config
  describes over a reference set.
* :class:`CandidateIndex` / :class:`ExhaustiveIndex` /
  :class:`ShardedRadioMap` — the interface and its implementations.
* :func:`region_partition` / :func:`kmeans_partition` — the
  partitioners, exposed for tests and custom indexes.
"""

from .config import EXHAUSTIVE, INDEX_KINDS, IndexConfig, index_tag
from .distance import squared_distances
from .partitioners import kmeans_partition, region_partition
from .sharded import (
    CandidateIndex,
    ExhaustiveIndex,
    ShardedRadioMap,
    build_index,
)

__all__ = [
    "EXHAUSTIVE",
    "INDEX_KINDS",
    "IndexConfig",
    "index_tag",
    "CandidateIndex",
    "ExhaustiveIndex",
    "ShardedRadioMap",
    "build_index",
    "kmeans_partition",
    "region_partition",
    "squared_distances",
]
