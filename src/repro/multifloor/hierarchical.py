"""Hierarchical multi-floor localization: floor first, then (x, y).

The standard decomposition for multi-building/multi-floor fingerprint
corpora (UJIIndoorLoc et al.): a floor classifier routes each scan to a
per-floor localizer. Any :class:`~repro.baselines.base.Localizer` can be
the per-floor stage — STONE for the re-training-free deployment, or any
baseline for comparison.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..baselines.base import Localizer
from ..core.preprocessing import normalize_rssi
from .building import Building
from .dataset import MultiFloorDataset, floor_local_dataset


class FloorClassifier:
    """K-nearest-neighbour floor detector over normalized RSSI.

    Floor signatures are dominated by which APs are audible at all (the
    slab kills most cross-floor signal), a structure KNN on normalized
    vectors captures without training — and, crucially for the paper's
    theme, without anything to go stale.
    """

    def __init__(self, k: int = 5) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._vectors: np.ndarray | None = None
        self._floors: np.ndarray | None = None

    def fit(self, rssi: np.ndarray, floors: np.ndarray) -> FloorClassifier:
        rssi = np.asarray(rssi, dtype=np.float64)
        floors = np.asarray(floors, dtype=np.int64)
        if rssi.ndim != 2 or rssi.shape[0] == 0:
            raise ValueError("rssi must be a non-empty (n, n_aps) matrix")
        if floors.shape != (rssi.shape[0],):
            raise ValueError("floors must align with rssi rows")
        self._vectors = normalize_rssi(rssi)
        self._floors = floors
        return self

    def predict(self, rssi: np.ndarray) -> np.ndarray:
        """Majority floor among the K nearest reference fingerprints."""
        if self._vectors is None:
            raise RuntimeError("FloorClassifier used before fit()")
        q = normalize_rssi(np.atleast_2d(np.asarray(rssi, dtype=np.float64)))
        refs = self._vectors
        d2 = (
            (q * q).sum(axis=1)[:, None]
            + (refs * refs).sum(axis=1)[None, :]
            - 2.0 * q @ refs.T
        )
        k = min(self.k, refs.shape[0])
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        out = np.empty(q.shape[0], dtype=np.int64)
        for i in range(q.shape[0]):
            values, counts = np.unique(self._floors[idx[i]], return_counts=True)
            out[i] = values[counts.argmax()]
        return out


class HierarchicalLocalizer:
    """Floor classifier + one single-floor localizer per floor.

    ``localizer_factory`` builds a fresh localizer for each floor (e.g.
    ``lambda floor: StoneLocalizer(config)``); floors with no training
    data are simply absent and scans routed to them fall back to the
    nearest available floor.
    """

    def __init__(
        self,
        localizer_factory: Callable[[int], Localizer],
        *,
        floor_k: int = 5,
    ) -> None:
        self.localizer_factory = localizer_factory
        self.floor_classifier = FloorClassifier(k=floor_k)
        self.per_floor: dict[int, Localizer] = {}
        self._fitted = False

    def fit(
        self,
        train: MultiFloorDataset,
        building: Building,
        *,
        rng: np.random.Generator | None = None,
    ) -> HierarchicalLocalizer:
        """Fit the floor detector, then every per-floor localizer.

        Global RP labels are remapped to floorplan-local indices before
        the per-floor fit (floor f's labels form a contiguous block
        aligned with its floorplan's RP order), so floorplan-aware
        machinery like STONE's triplet selector works unchanged.
        """
        rng = rng or np.random.default_rng(0)
        self.floor_classifier.fit(train.fingerprints.rssi, train.floor_indices)
        self.per_floor = {}
        for floor in train.floor_set:
            floorplan = building.floor(int(floor))
            floor_train = floor_local_dataset(train, int(floor), floorplan)
            localizer = self.localizer_factory(int(floor))
            localizer.fit(floor_train, floorplan, rng=rng)
            self.per_floor[int(floor)] = localizer
        self._fitted = True
        return self

    def begin_epoch(self, epoch: int, unlabeled_rssi: np.ndarray) -> None:
        """Forward the anonymous scans to per-floor localizers that adapt."""
        if unlabeled_rssi.shape[0] == 0:
            return
        floors = self.floor_classifier.predict(unlabeled_rssi)
        for floor, localizer in self.per_floor.items():
            rows = floors == floor
            localizer.begin_epoch(epoch, unlabeled_rssi[rows])

    def predict(self, rssi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per scan: (floor label, (x, y) on that floor)."""
        if not self._fitted:
            raise RuntimeError("HierarchicalLocalizer used before fit()")
        rssi = np.atleast_2d(np.asarray(rssi, dtype=np.float64))
        floors = self.floor_classifier.predict(rssi)
        available = np.asarray(sorted(self.per_floor))
        # Route unfittable floors to the nearest fitted one.
        for i, f in enumerate(floors):
            if int(f) not in self.per_floor:
                floors[i] = available[np.abs(available - f).argmin()]
        coords = np.empty((rssi.shape[0], 2), dtype=np.float64)
        for floor in np.unique(floors):
            rows = floors == floor
            coords[rows] = self.per_floor[int(floor)].predict(rssi[rows])
        return floors, coords
