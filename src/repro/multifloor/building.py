"""Multi-floor building model.

The UJI corpus covers two library floors; the paper evaluates floor 3
only "due to high floorplan similarity across the two floors" (Sec.
V.A.1). This module restores the full problem: a :class:`Building` is a
stack of floors sharing one AP namespace, with a concrete-slab
attenuation model coupling them — an AP one slab away is heavily (but
not always completely) attenuated, which is precisely what makes floor
detection learnable from WiFi fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.floorplan import Floorplan


@dataclass(frozen=True)
class SlabModel:
    """Inter-floor attenuation: ``per_slab_db`` per concrete slab crossed.

    Typical measured values for reinforced-concrete office slabs are
    15-25 dB each; the jitter term models penetration paths (stairwells,
    atria, risers) that leak more signal than the slab bulk.
    """

    per_slab_db: float = 18.0
    jitter_db: float = 4.0

    def __post_init__(self) -> None:
        if self.per_slab_db <= 0:
            raise ValueError("per_slab_db must be positive")
        if self.jitter_db < 0:
            raise ValueError("jitter_db must be non-negative")

    def attenuation_db(
        self, n_slabs: int, rng: np.random.Generator
    ) -> float:
        """Total extra path loss for a signal crossing ``n_slabs`` floors."""
        if n_slabs < 0:
            raise ValueError("n_slabs must be non-negative")
        if n_slabs == 0:
            return 0.0
        base = self.per_slab_db * n_slabs
        return float(max(base + rng.normal(0.0, self.jitter_db), 0.0))


@dataclass
class Building:
    """A vertical stack of floorplans.

    ``floors[i]`` is the floorplan of level ``i`` (bottom-up). Floors may
    differ in geometry; the UJI-like generator uses near-identical floors
    to reproduce the "high floorplan similarity" that made the original
    authors drop one.
    """

    name: str
    floors: list[Floorplan]
    slab: SlabModel = field(default_factory=SlabModel)
    floor_height_m: float = 3.5

    def __post_init__(self) -> None:
        if not self.floors:
            raise ValueError("a building needs at least one floor")
        if self.floor_height_m <= 0:
            raise ValueError("floor height must be positive")

    @property
    def n_floors(self) -> int:
        return len(self.floors)

    def floor(self, index: int) -> Floorplan:
        """Floorplan of level ``index`` (raises IndexError when absent)."""
        if not 0 <= index < self.n_floors:
            raise IndexError(f"floor {index} not in 0..{self.n_floors - 1}")
        return self.floors[index]

    def slabs_between(self, floor_a: int, floor_b: int) -> int:
        """Concrete slabs a signal crosses between two levels."""
        return abs(int(floor_a) - int(floor_b))

    def describe(self) -> str:
        lines = [f"building {self.name!r}: {self.n_floors} floors"]
        lines.extend(
            f"  floor {i}: {fp.describe()}" for i, fp in enumerate(self.floors)
        )
        return "\n".join(lines)
