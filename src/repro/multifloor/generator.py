"""Two-floor UJI-like longitudinal suite generator.

Each floor gets its own radio environment (own APs, shadowing, temporal
processes, AP lifecycle); the floors are coupled through the building's
slab model: a scan on floor *f* also hears floor *g*'s APs, attenuated
by the slabs in between plus a stable per-(AP, floor) leak offset —
stairwells leak the same way every day, which is what makes cross-floor
RSSI a usable floor signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.fingerprint import FingerprintDataset, LongitudinalSuite
from ..datasets.generators import build_environment
from ..radio.access_point import NO_SIGNAL_DBM
from ..radio.ephemerality import uji_like_schedule
from ..radio.sampler import RadioEnvironment
from ..radio.time import SimTime, monthly_times
from .building import Building, SlabModel
from .dataset import MultiFloorDataset, MultiFloorSuite, floor_local_dataset


@dataclass(frozen=True)
class MultiFloorConfig:
    """Knobs of the two-floor generator."""

    n_floors: int = 2
    aps_per_floor: int = 40
    train_fpr: int = 6
    test_fpr: int = 2
    n_months: int = 10
    slab: SlabModel = SlabModel()

    def __post_init__(self) -> None:
        if self.n_floors < 2:
            raise ValueError("a multi-floor suite needs at least two floors")
        if min(self.aps_per_floor, self.train_fpr, self.test_fpr) <= 0:
            raise ValueError("counts must be positive")
        if self.n_months <= 0:
            raise ValueError("n_months must be positive")


def _leak_offsets(
    n_floors: int, aps_per_floor: int, slab: SlabModel, rng: np.random.Generator
) -> np.ndarray:
    """Stable attenuation for (AP's floor, AP, listener's floor) triples."""
    out = np.zeros((n_floors, aps_per_floor, n_floors))
    for src in range(n_floors):
        for ap in range(aps_per_floor):
            for dst in range(n_floors):
                out[src, ap, dst] = slab.attenuation_db(abs(src - dst), rng)
    return out


def _capture_row(
    envs: list[RadioEnvironment],
    floor: int,
    rp_local: int,
    time: SimTime,
    epoch: int,
    leaks: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One global scan: own-floor scan + attenuated other-floor signals."""
    aps_per_floor = envs[0].n_aps
    row = np.full(len(envs) * aps_per_floor, NO_SIGNAL_DBM)
    location = envs[floor].floorplan.reference_points[rp_local]
    for src, env in enumerate(envs):
        lo = src * aps_per_floor
        if src == floor:
            row[lo : lo + aps_per_floor] = env.scan_at_rp(
                rp_local, time, rng, epoch=epoch, position_jitter_m=0.15
            )
            continue
        noise_std = env.scan_noise_std_db(time)
        for ap in range(aps_per_floor):
            mean = env.mean_rssi_dbm(ap, location, time, epoch=epoch)
            if mean <= NO_SIGNAL_DBM:
                continue
            attenuated = mean - leaks[src, ap, floor]
            measured = env.device.measure(
                attenuated + rng.normal(0.0, noise_std), rng
            )
            row[lo + ap] = measured
    return row


def _capture_epoch(
    envs: list[RadioEnvironment],
    time: SimTime,
    epoch: int,
    fpr: int,
    leaks: np.ndarray,
    rng: np.random.Generator,
) -> MultiFloorDataset:
    """``fpr`` fingerprints at every RP of every floor at one epoch."""
    rows: list[np.ndarray] = []
    rp_idx: list[int] = []
    locs: list[np.ndarray] = []
    floors: list[int] = []
    rp_offset = 0
    for floor, env in enumerate(envs):
        n_rp = env.floorplan.n_reference_points
        for rp in range(n_rp):
            for _ in range(fpr):
                rows.append(
                    _capture_row(envs, floor, rp, time, epoch, leaks, rng)
                )
                rp_idx.append(rp_offset + rp)
                locs.append(env.floorplan.reference_points[rp])
                floors.append(floor)
        rp_offset += n_rp
    n = len(rows)
    fingerprints = FingerprintDataset(
        rssi=np.vstack(rows),
        rp_indices=np.asarray(rp_idx, dtype=np.int64),
        locations=np.vstack(locs),
        times_hours=np.full(n, time.hours),
        epochs=np.full(n, epoch, dtype=np.int64),
    )
    return MultiFloorDataset(
        fingerprints=fingerprints,
        floor_indices=np.asarray(floors, dtype=np.int64),
    )


def floor_suite(suite: MultiFloorSuite, floor: int) -> LongitudinalSuite:
    """One floor of a multi-floor suite as a single-floor deployment.

    The returned :class:`~repro.datasets.fingerprint.LongitudinalSuite`
    is exactly what the single-floor stack (the evaluation engine, the
    serving layer's :class:`~repro.serve.store.ModelStore`) consumes:
    the floor's floorplan, its training slice with floorplan-local RP
    labels, and its slice of every test epoch. This is the fleet layer's
    deployment-slot unit — one warm model per ``(building, floor)``.

    The AP columns stay *building-wide* (all floors of the building),
    not floor-local: the slab-leaked signal from neighbouring floors is
    a stable part of each floor's radio signature, and keeping the
    columns shared means every slot of a building accepts the same scan
    vector the building's floor classifier saw.

    The training slice must cover the floor (the generators always do);
    its global RP offset then anchors the remap of sparse test epochs.
    """
    floor = int(floor)
    floorplan = suite.building.floor(floor)
    # Offset from a label-array mask, not a full slice — the slice of
    # every column happens once, inside floor_local_dataset.
    on_floor = suite.train.floor_indices == floor
    if not on_floor.any():
        raise ValueError(f"floor {floor}: no training rows in {suite.name!r}")
    offset = int(suite.train.fingerprints.rp_indices[on_floor].min())
    train = floor_local_dataset(suite.train, floor, floorplan, rp_offset=offset)
    test_epochs = [
        floor_local_dataset(ds, floor, floorplan, rp_offset=offset)
        for ds in suite.test_epochs
    ]
    return LongitudinalSuite(
        name=f"{suite.name}/f{floor}",
        floorplan=floorplan,
        train=train,
        test_epochs=test_epochs,
        epoch_labels=list(suite.epoch_labels),
        metadata={
            "building": suite.building.name,
            "floor": floor,
            "rp_offset": offset,
            "parent_suite": suite.name,
        },
    )


def generate_multifloor_suite(
    seed: int = 0,
    *,
    config: MultiFloorConfig | None = None,
) -> MultiFloorSuite:
    """UJI-like building with ``n_floors`` near-identical library floors.

    Training fingerprints come from month 0 (one day); each following
    month is a test epoch. Every floor keeps its own AP lifecycle with
    the catastrophic change near 70% of the horizon, like the
    single-floor UJI generator.
    """
    config = config or MultiFloorConfig()
    root = np.random.SeedSequence(seed)
    floor_seeds = root.spawn(config.n_floors)
    envs: list[RadioEnvironment] = []
    change_epoch = max(1, int(round(0.7 * config.n_months)))
    for seq in floor_seeds:
        floor_seed = int(seq.generate_state(1)[0]) % (2**31)
        schedule = uji_like_schedule(
            config.aps_per_floor,
            np.random.default_rng(seq.spawn(1)[0]),
            n_epochs=config.n_months + 1,
            change_epoch=change_epoch,
        )
        envs.append(
            build_environment(
                "uji",
                floor_seed,
                n_aps=config.aps_per_floor,
                schedule=schedule,
            )
        )
    building = Building(
        name=f"uji-{config.n_floors}f",
        floors=[env.floorplan for env in envs],
        slab=config.slab,
    )
    leak_rng = np.random.default_rng(root.spawn(1)[0])
    leaks = _leak_offsets(
        config.n_floors, config.aps_per_floor, config.slab, leak_rng
    )
    rng = np.random.default_rng(root.spawn(2)[1])
    train = _capture_epoch(
        envs, SimTime.at(hours=2.0), 0, config.train_fpr, leaks, rng
    )
    test_epochs = [
        _capture_epoch(envs, t, month, config.test_fpr, leaks, rng)
        for month, t in enumerate(monthly_times(config.n_months), start=1)
    ]
    labels = [f"month {m}" for m in range(1, config.n_months + 1)]
    return MultiFloorSuite(
        name=f"uji-{config.n_floors}f",
        building=building,
        train=train,
        test_epochs=test_epochs,
        epoch_labels=labels,
        metadata={
            "seed": seed,
            "config": config,
            "environments": envs,
        },
    )
