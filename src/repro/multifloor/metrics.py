"""Multi-floor accuracy metrics and the longitudinal evaluation loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import MultiFloorSuite
from .hierarchical import HierarchicalLocalizer


def floor_hit_rate(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Fraction of scans assigned to the correct floor."""
    predicted = np.asarray(predicted)
    actual = np.asarray(actual)
    if predicted.shape != actual.shape:
        raise ValueError("floor sequences must have identical shapes")
    if predicted.shape[0] == 0:
        raise ValueError("cannot score an empty sequence")
    return float((predicted == actual).mean())


def combined_error_m(
    predicted_floors: np.ndarray,
    predicted_xy: np.ndarray,
    actual_floors: np.ndarray,
    actual_xy: np.ndarray,
    *,
    floor_height_m: float = 3.5,
) -> np.ndarray:
    """Per-scan 3-D-style error: planar error plus vertical floor miss.

    The standard EvAAL/IPIN convention charges a misdetected floor its
    physical height — a scan placed perfectly in (x, y) but one floor
    off is still ``floor_height_m`` wrong.
    """
    planar = np.linalg.norm(
        np.asarray(predicted_xy, dtype=np.float64)
        - np.asarray(actual_xy, dtype=np.float64),
        axis=1,
    )
    vertical = (
        np.abs(
            np.asarray(predicted_floors, dtype=np.float64)
            - np.asarray(actual_floors, dtype=np.float64)
        )
        * floor_height_m
    )
    return np.sqrt(planar**2 + vertical**2)


@dataclass(frozen=True)
class MultiFloorEpochResult:
    """One test epoch's multi-floor scores."""

    label: str
    floor_hit_rate: float
    mean_2d_m: float
    mean_combined_m: float
    n_scans: int

    def as_row(self) -> str:
        return (
            f"{self.label:<10} floor {self.floor_hit_rate:6.1%}  "
            f"2d {self.mean_2d_m:5.2f} m  "
            f"combined {self.mean_combined_m:5.2f} m  (n={self.n_scans})"
        )


def evaluate_multifloor(
    localizer: HierarchicalLocalizer,
    suite: MultiFloorSuite,
    *,
    rng: np.random.Generator | None = None,
) -> list[MultiFloorEpochResult]:
    """Fit on the suite's training month, sweep the test months.

    Mirrors :func:`repro.eval.runner.evaluate_localizer` — fit once,
    offer each epoch's anonymous scans via ``begin_epoch``, then score.
    The 2-D error is computed against the true (x, y) regardless of the
    predicted floor; the combined error adds the floor penalty.
    """
    rng = rng or np.random.default_rng(0)
    localizer.fit(suite.train, suite.building, rng=rng)
    results: list[MultiFloorEpochResult] = []
    for epoch_idx, (ds, label) in enumerate(
        zip(suite.test_epochs, suite.epoch_labels), start=1
    ):
        localizer.begin_epoch(epoch_idx, ds.fingerprints.rssi)
        floors, coords = localizer.predict(ds.fingerprints.rssi)
        combined = combined_error_m(
            floors,
            coords,
            ds.floor_indices,
            ds.fingerprints.locations,
            floor_height_m=suite.building.floor_height_m,
        )
        planar = np.linalg.norm(
            coords - ds.fingerprints.locations, axis=1
        )
        results.append(
            MultiFloorEpochResult(
                label=label,
                floor_hit_rate=floor_hit_rate(floors, ds.floor_indices),
                mean_2d_m=float(planar.mean()),
                mean_combined_m=float(combined.mean()),
                n_scans=ds.n_samples,
            )
        )
    return results
