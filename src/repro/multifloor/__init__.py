"""Multi-floor indoor localization.

The paper evaluated only UJI floor 3 "for brevity"; this package builds
the full problem back: a multi-floor building model with slab
attenuation, a two-floor UJI-like longitudinal suite generator, a floor
classifier + hierarchical localizer wrapper around any single-floor
framework, and EvAAL-style combined error metrics.
"""

from .building import Building, SlabModel
from .dataset import MultiFloorDataset, MultiFloorSuite, floor_local_dataset
from .generator import MultiFloorConfig, floor_suite, generate_multifloor_suite
from .hierarchical import FloorClassifier, HierarchicalLocalizer
from .metrics import (
    MultiFloorEpochResult,
    combined_error_m,
    evaluate_multifloor,
    floor_hit_rate,
)

__all__ = [
    "Building",
    "FloorClassifier",
    "HierarchicalLocalizer",
    "MultiFloorConfig",
    "MultiFloorDataset",
    "MultiFloorEpochResult",
    "MultiFloorSuite",
    "SlabModel",
    "combined_error_m",
    "evaluate_multifloor",
    "floor_hit_rate",
    "floor_local_dataset",
    "floor_suite",
    "generate_multifloor_suite",
]
