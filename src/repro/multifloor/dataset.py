"""Fingerprint containers with floor labels."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.fingerprint import FingerprintDataset
from ..geometry.floorplan import Floorplan
from .building import Building


@dataclass
class MultiFloorDataset:
    """A :class:`FingerprintDataset` plus a floor label per row.

    ``rp_indices`` are *global* labels, unique across floors (floor 1's
    RPs continue where floor 0's stopped), so single-floor machinery can
    treat a per-floor slice as an ordinary dataset.
    """

    fingerprints: FingerprintDataset
    floor_indices: np.ndarray

    def __post_init__(self) -> None:
        self.floor_indices = np.asarray(self.floor_indices, dtype=np.int64)
        if self.floor_indices.shape != (self.fingerprints.n_samples,):
            raise ValueError("floor_indices must have one entry per row")
        if self.fingerprints.n_samples and self.floor_indices.min() < 0:
            raise ValueError("floor indices must be non-negative")

    @property
    def n_samples(self) -> int:
        return self.fingerprints.n_samples

    @property
    def n_aps(self) -> int:
        return self.fingerprints.n_aps

    @property
    def floor_set(self) -> np.ndarray:
        """Sorted unique floor labels present."""
        return np.unique(self.floor_indices)

    def floor_slice(self, floor: int) -> FingerprintDataset:
        """All rows captured on one floor, as a plain dataset."""
        mask = self.floor_indices == floor
        return self.fingerprints.select(mask)

    def select(self, mask_or_indices: np.ndarray) -> MultiFloorDataset:
        """Row subset preserving floor labels."""
        idx = np.asarray(mask_or_indices)
        return MultiFloorDataset(
            fingerprints=self.fingerprints.select(idx),
            floor_indices=self.floor_indices[idx],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiFloorDataset(n={self.n_samples}, aps={self.n_aps}, "
            f"floors={self.floor_set.tolist()})"
        )


def floor_local_dataset(
    ds: MultiFloorDataset,
    floor: int,
    floorplan: Floorplan,
    *,
    rp_offset: int | None = None,
) -> FingerprintDataset:
    """One floor's rows with RP labels remapped to floorplan-local indices.

    The multi-floor containers label reference points *globally* (floor
    1's RPs continue where floor 0's stopped); single-floor machinery —
    STONE's triplet selector, the KNN heads, the serving stack — indexes
    RPs against one floorplan. This helper bridges the two: it slices
    ``floor``'s rows and subtracts the floor's global offset so labels
    form a ``0..n_reference_points-1`` block aligned with ``floorplan``.

    ``rp_offset`` pins the global offset explicitly. Leave it ``None``
    to derive it from the slice itself (the minimum label present) —
    correct whenever the floor's training survey covers RP 0, which the
    generators guarantee. Pass the training slice's offset when
    remapping a *test* epoch, so sparse epochs that miss RP 0 still land
    on the same local labels.
    """
    sliced = ds.floor_slice(int(floor))
    if sliced.n_samples == 0:
        if rp_offset is None:
            raise ValueError(
                f"floor {floor}: no rows to derive the RP offset from; "
                f"pass rp_offset to remap an empty slice"
            )
        return sliced  # empty; labels are vacuously floorplan-local
    offset = int(sliced.rp_indices.min()) if rp_offset is None else int(rp_offset)
    local = sliced.rp_indices - offset
    if int(local.min()) < 0 or int(local.max()) >= floorplan.n_reference_points:
        raise ValueError(
            f"floor {floor}: RP labels are not a contiguous block "
            f"aligned with the floorplan ({local.max() + 1} > "
            f"{floorplan.n_reference_points})"
        )
    return FingerprintDataset(
        rssi=sliced.rssi,
        rp_indices=local,
        locations=sliced.locations,
        times_hours=sliced.times_hours,
        epochs=sliced.epochs,
    )


@dataclass
class MultiFloorSuite:
    """Longitudinal multi-floor evaluation bundle.

    Mirrors :class:`~repro.datasets.fingerprint.LongitudinalSuite` with
    floor labels throughout and the :class:`Building` in place of a
    single floorplan.
    """

    name: str
    building: Building
    train: MultiFloorDataset
    test_epochs: list[MultiFloorDataset]
    epoch_labels: list[str]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.test_epochs) != len(self.epoch_labels):
            raise ValueError("one label per test epoch required")
        for ds in self.test_epochs:
            if ds.n_aps != self.train.n_aps:
                raise ValueError("test epochs must share the train AP columns")

    @property
    def n_epochs(self) -> int:
        return len(self.test_epochs)

    def describe(self) -> str:
        return (
            f"suite {self.name!r} over {self.building.n_floors} floors: "
            f"train {self.train.n_samples} rows, "
            f"{self.n_epochs} test epochs"
        )
