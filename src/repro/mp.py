"""Multiprocessing start-method policy, shared by every process pool.

Linux defaults to ``fork``, macOS and Windows to ``spawn`` — and the two
disagree about what a child process inherits (``fork`` copies the whole
parent heap; ``spawn`` re-imports everything and only receives pickled
arguments). Code that works under one can silently depend on it, so the
``REPRO_MP_START`` environment variable forces a start method for every
pool in the repo — the evaluation engine's
:class:`~repro.eval.engine.ParallelRunner` and the fleet's
:class:`~repro.fleet.worker.WorkerPool` — and CI runs the tier-1 suite
under both ``fork`` and ``spawn`` so the multiprocessing paths stay
portable to the platforms whose default is ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import os

#: Environment variable forcing the multiprocessing start method for
#: every process pool in the repo (``fork`` / ``spawn`` / ``forkserver``).
START_METHOD_ENV = "REPRO_MP_START"


def resolve_start_method(method: str | None = None) -> str | None:
    """The start method to use, or ``None`` for the platform default.

    Resolution order: explicit ``method`` → ``$REPRO_MP_START`` →
    ``None``. Unknown names raise ``ValueError`` immediately — a typo in
    CI config must fail the build, not silently fall back to ``fork``.
    """
    if method is None or method == "":
        method = os.environ.get(START_METHOD_ENV) or None
    if method is None:
        return None
    method = method.strip().lower()
    allowed = multiprocessing.get_all_start_methods()
    if method not in allowed:
        raise ValueError(
            f"unknown multiprocessing start method {method!r}; "
            f"this platform supports {allowed}"
        )
    return method


def mp_context(method: str | None = None) -> multiprocessing.context.BaseContext:
    """A multiprocessing context honoring :func:`resolve_start_method`."""
    return multiprocessing.get_context(resolve_start_method(method))
