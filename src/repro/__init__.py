"""STONE reproduction: Siamese Neural Encoders for Long-Term Indoor
Localization with Mobile Devices (Tiku & Pasricha, DATE 2022).

Public API tour
---------------
- ``repro.api`` — **the typed public surface**: spec dataclasses
  (:class:`~repro.api.LocalizerSpec`, :class:`~repro.api.ServeSpec`,
  :class:`~repro.api.FleetSpec`), the
  :class:`~repro.api.LocalizationSession` facade (identical over local
  and remote backends) and the :class:`~repro.api.ReproClient` HTTP
  client. New code builds through this; everything below is subject to
  change between releases.
- ``repro.core`` — the STONE framework (:class:`~repro.core.StoneLocalizer`).
- ``repro.baselines`` — KNN, LT-KNN, GIFT, SCNN prior works, plus
  SELE / WiDeep / PL-Ensemble from the surrounding literature.
- ``repro.datasets`` — longitudinal fingerprint suite generators and the
  real-UJI-corpus loader.
- ``repro.eval`` — the evaluation protocol and per-figure experiments.
- ``repro.tracking`` — online-phase walks and temporal smoothing (HMM,
  particle filter).
- ``repro.compress`` — quantization/pruning and on-device cost models.
- ``repro.multifloor`` — the stacked-building problem and hierarchical
  localization.
- ``repro.nn`` — the NumPy deep-learning substrate.
- ``repro.radio`` / ``repro.geometry`` — the simulated measurement chain.

Quickstart::

    from repro.datasets import generate_path_suite
    from repro.core import StoneLocalizer, StoneConfig
    from repro.eval import evaluate_localizer

    suite = generate_path_suite("office", seed=0)
    stone = StoneLocalizer(StoneConfig.for_suite("office"))
    result = evaluate_localizer(stone, suite)
    print(result.mean_errors())
"""

from . import (
    api,
    baselines,
    compress,
    core,
    datasets,
    eval,
    geometry,
    multifloor,
    nn,
    radio,
    tracking,
)

__version__ = "1.3.0"

__all__ = [
    "api",
    "nn",
    "geometry",
    "radio",
    "datasets",
    "core",
    "baselines",
    "tracking",
    "compress",
    "multifloor",
    "eval",
    "__version__",
]
