"""Command-line interface: regenerate figures and run quick studies.

Usage (after ``pip install -e .``)::

    python -m repro.cli --version
    python -m repro.cli figure FIG5 --seed 0
    python -m repro.cli figure FIG6B --fast --jobs 4 --cache-dir .repro-cache
    python -m repro.cli compare office --frameworks STONE,LT-KNN --fast
    python -m repro.cli compare office --jobs 4 --chunk-size 1024
    python -m repro.cli compare office --index kmeans --n-shards 32 --n-probe 4
    python -m repro.cli suite basement --out basement.npz
    python -m repro.cli serve office --framework KNN --port 8000 --fast
    python -m repro.cli serve office --framework KNN --index region --fast
    python -m repro.cli serve --fleet "HQ:2,LAB:3" --framework KNN --fast
    python -m repro.cli store ls --model-dir ./models
    python -m repro.cli store prune --model-dir ./models --keep 1 --dry-run
    python -m repro.cli fleet "HQ:2,LAB:3:kmeans" --fast --eval
    python -m repro.cli track office --framework STONE --fast
    python -m repro.cli compress office --bits 8 --sparsity 0.5 --fast
    python -m repro.cli multifloor --months 4 --fast
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .baselines.registry import PAPER_FRAMEWORKS
from .datasets import generate_path_suite, generate_uji_suite, suite_summary_table
from .eval import (
    compare_frameworks,
    comparison_table,
    line_chart,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_headline_claims,
)

_FIGURES = {
    "FIG3": lambda seed, fast, opts: run_fig3(seed),
    "FIG4": lambda seed, fast, opts: run_fig4(seed),
    "FIG5": lambda seed, fast, opts: run_fig5(seed, fast=fast, **opts),
    "FIG6A": lambda seed, fast, opts: run_fig6("basement", seed, fast=fast, **opts),
    "FIG6B": lambda seed, fast, opts: run_fig6("office", seed, fast=fast, **opts),
    # Fig. 7 parallelizes its (FPR x repeat) grid cells; each cell is a
    # fresh STONE fit so the framework-trace cache does not apply.
    "FIG7": lambda seed, fast, opts: run_fig7(
        "office",
        seed,
        fast=fast,
        jobs=opts.get("jobs", 1),
        chunk_size=opts.get("chunk_size"),
    ),
    "SEC5C-CLAIM": lambda seed, fast, opts: run_headline_claims(
        seed, fast=fast, **opts
    ),
}


def _suite_for(name: str, seed: int):
    """Build the named dataset suite (uji is the open-grid generator)."""
    if name == "uji":
        return generate_uji_suite(seed)
    return generate_path_suite(name, seed)


_CHUNK_SIZE_HELP = (
    "max query rows per inference block; bounds peak memory, "
    "never changes results (default: unchunked)"
)


def _index_spec(args: argparse.Namespace):
    """Build the public IndexSpec the CLI flags describe (or None)."""
    if args.index == "exhaustive":
        if args.n_shards != 16 or args.n_probe != 4:
            print(
                "note: --n-shards/--n-probe have no effect without "
                "--index region|kmeans (the default is exhaustive search)"
            )
        return None
    from .api import IndexSpec

    return IndexSpec(
        kind=args.index,
        n_shards=args.n_shards,
        n_probe=args.n_probe,
        seed=args.seed,
    )


def _engine_opts(args: argparse.Namespace) -> dict:
    """Collect the evaluation-engine flags shared by figure/compare."""
    from .api import engine_index

    return {
        "jobs": args.jobs,
        "chunk_size": args.chunk_size,
        "cache_dir": args.cache_dir,
        "index": engine_index(_index_spec(args)),
    }


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the evaluation fan-out "
            "(default: 1, serial; 0 = one per available CPU)"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=_CHUNK_SIZE_HELP,
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "memoize finished framework traces in this directory; "
            "repeated runs with identical inputs skip fits "
            "(default: no cache)"
        ),
    )
    _add_index_flags(parser)


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    """Kernel-backend flag shared by serve/fleet."""
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "kernel backend for the radio-map distance path: "
            "'reference' (exact float64, the default), 'blas64' "
            "(bit-identical, pinned through the seam), 'blas' "
            "(float32 sgemm, ~2x faster, bounded error) or 'quantized' "
            "(int8 codes, 8x smaller radio maps); unset falls back to "
            "$REPRO_KERNEL_BACKEND, then 'reference' (applies to "
            "STONE/KNN/LT-KNN, other frameworks run unchanged)"
        ),
    )


def _backend_for(args: argparse.Namespace, caps) -> str | None:
    """Resolve the --backend flag against a framework's capabilities."""
    backend = getattr(args, "backend", None)
    if backend is not None and not caps.supports_kernel_backend:
        print(
            f"note: {caps.name} has no kernel-backend seam — "
            f"--backend {backend} ignored, serving the reference path"
        )
        return "reference"
    return backend


def _add_index_flags(parser: argparse.ArgumentParser) -> None:
    """Radio-map index flags shared by figure/compare/serve."""
    parser.add_argument(
        "--index",
        choices=("exhaustive", "region", "kmeans"),
        default="exhaustive",
        help=(
            "shard the reference radio map so each query scores only "
            "its probed shards: 'region' = floorplan grid cells, "
            "'kmeans' = coarse quantizer over RSSI/embedding vectors "
            "(default: exhaustive, score everything — today's exact "
            "behaviour; applies to STONE/KNN/LT-KNN, other frameworks "
            "run unchanged)"
        ),
    )
    parser.add_argument(
        "--n-shards",
        type=int,
        default=16,
        help="target shard count for --index region/kmeans (default: 16)",
    )
    parser.add_argument(
        "--n-probe",
        type=int,
        default=4,
        help=(
            "shards scored per query; n-probe >= n-shards is "
            "bit-identical to exhaustive search (default: 4)"
        ),
    )


#: Engine flags a figure cannot use: FIG3/FIG4 run no framework
#: evaluations, and FIG7's grid cells each train a fresh model so there
#: is no framework trace to cache (and its per-cell STONE fits stay
#: exhaustive — the grid sweeps training data volume, not inference).
_ENGINE_FLAGS_IGNORED = {
    "FIG3": ("--jobs", "--chunk-size", "--cache-dir", "--index"),
    "FIG4": ("--jobs", "--chunk-size", "--cache-dir", "--index"),
    "FIG7": ("--cache-dir", "--index"),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    figure_id = args.id.upper()
    runner = _FIGURES.get(figure_id)
    if runner is None:
        print(f"unknown figure {args.id!r}; known: {', '.join(_FIGURES)}")
        return 2
    given = {
        "--jobs": args.jobs != 1,
        "--chunk-size": args.chunk_size is not None,
        "--cache-dir": args.cache_dir is not None,
        "--index": args.index != "exhaustive",
    }
    for flag in _ENGINE_FLAGS_IGNORED.get(figure_id, ()):
        if given[flag]:
            print(f"note: {flag} has no effect for {figure_id}")
    result = runner(args.seed, args.fast, _engine_opts(args))
    print(result.rendered)
    for note in result.notes:
        print(f"note: {note}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.rendered + "\n")
        print(f"saved: {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    suite = _suite_for(args.suite, args.seed)
    frameworks = [f.strip() for f in args.frameworks.split(",") if f.strip()]
    if args.index != "exhaustive":
        from .baselines.registry import supports_candidate_index

        unsharded = [f for f in frameworks if not supports_candidate_index(f)]
        if unsharded:
            print(
                f"note: --index {args.index} applies to the NN-search "
                f"frameworks only; {', '.join(unsharded)} run unchanged"
            )
    comparison = compare_frameworks(
        suite,
        frameworks,
        seed=args.seed,
        fast=args.fast,
        **_engine_opts(args),
    )
    series = comparison.series()
    print(line_chart(series, x_labels=comparison.labels(),
                     title=f"{args.suite}: mean localization error"))
    print()
    print(comparison_table(series, comparison.labels()))
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    suite = _suite_for(args.suite, args.seed)
    print(suite.describe())
    print()
    print(suite_summary_table(suite))
    if args.out:
        suite.train.save(args.out)
        print(f"\nsaved offline training set: {args.out}")
    return 0


def _fleet_spec(args: argparse.Namespace, spec_string: str):
    """Build the public FleetSpec the CLI flags + spec string describe."""
    from .api import FleetSpec
    from .baselines.registry import framework_capabilities
    from .fleet import parse_fleet_spec

    buildings = parse_fleet_spec(spec_string)
    caps = framework_capabilities(args.framework)
    index = _index_spec(args)
    backend = _backend_for(args, caps)
    if not caps.supports_index:
        sharded = [
            b.name for b in buildings if b.index_kind not in (None, "exhaustive")
        ]
        if index is not None or sharded:
            print(
                f"note: {caps.name} has no reference radio map to shard — "
                f"index settings ignored, fleet slots serve unsharded"
            )
        index = None
        buildings = [
            type(b)(name=b.name, n_floors=b.n_floors, index_kind=None)
            for b in buildings
        ]
    return FleetSpec(
        buildings=tuple(buildings),
        framework=args.framework,
        seed=args.seed,
        fast=args.fast,
        index=index,
        backend=backend,
        months=args.fleet_months,
        aps_per_floor=args.fleet_aps_per_floor,
        model_dir=args.model_dir,
        # The inspect-only `repro fleet` subcommand has no serving
        # flags; the spec keeps its defaults there.
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", 8000),
        batch_window_ms=getattr(args, "batch_window_ms", 2.0),
        max_batch=getattr(args, "max_batch", 256),
        chunk_size=getattr(args, "chunk_size", None),
        max_pending_rows=getattr(args, "max_pending_rows", None),
        workers=getattr(args, "workers", 0),
        log_json=getattr(args, "log_json", False),
        slow_ms=getattr(args, "slow_ms", None),
        drift_threshold_m=getattr(args, "drift_threshold_m", None),
        live_min_scans=getattr(args, "live_min_scans", 32),
        live_max_scans=getattr(args, "live_max_scans", 4096),
        live_max_age_s=getattr(args, "live_max_age_s", None),
    )


def _add_fleet_gen_flags(parser: argparse.ArgumentParser) -> None:
    """Fleet-suite generation knobs shared by serve --fleet and fleet."""
    parser.add_argument(
        "--fleet-months",
        type=int,
        default=4,
        help="longitudinal test months per generated building (default: 4)",
    )
    parser.add_argument(
        "--fleet-aps-per-floor",
        type=int,
        default=24,
        help="APs per generated floor (default: 24)",
    )


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    fleet_spec = _fleet_spec(args, args.fleet)
    registry = fleet_spec.build_registry()
    print(registry.describe_text())
    server = fleet_spec.build_server(registry)
    return server.run()


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api import LocalizerSpec, ServeSpec
    from .baselines.registry import framework_capabilities

    if args.fleet:
        return _cmd_serve_fleet(args)
    suite = _suite_for(args.suite, args.seed)
    caps = framework_capabilities(args.framework)
    index = _index_spec(args)
    backend = _backend_for(args, caps)
    if index is not None and not caps.supports_index:
        print(
            f"note: {caps.name} has no reference radio map to shard — "
            f"--index {args.index} ignored, serving unsharded"
        )
        index = None
    serve_spec = ServeSpec(
        localizer=LocalizerSpec(
            framework=args.framework,
            suite_name=args.suite,
            fast=args.fast,
            seed=args.seed,
            index=index,
            backend=backend,
        ),
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        chunk_size=args.chunk_size,
        model_dir=args.model_dir,
        log_json=args.log_json,
        slow_ms=args.slow_ms,
    )
    server = serve_spec.build(suite)
    entry = server.entry
    if entry.source == "disk":
        print(f"{caps.name}: warm-loaded fitted model from {args.model_dir}")
    else:
        print(f"{caps.name}: fitted in {entry.fit_seconds:.1f}s", end="")
        print(f" (persisted to {args.model_dir})" if args.model_dir else "")
    backend_name = getattr(entry.localizer, "kernel_backend", "reference")
    if backend_name != "reference":
        print(f"kernel backend: {backend_name}")
    index_stats = entry.localizer.index_describe()
    if index_stats is not None and index_stats.get("kind") != "exhaustive":
        rows = index_stats.get("rows_per_shard", {})
        print(
            f"index: {index_stats['kind']} — {index_stats['n_shards']} shards, "
            f"probe {index_stats['n_probe']}, "
            f"{rows.get('min')}–{rows.get('max')} rows/shard"
        )
    if not caps.batched_inference:
        print(
            f"note: {caps.name} decodes scan sequences statefully — "
            "requests dispatch one at a time (no cross-request batching)"
        )
    return server.run()


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import run_fleet_experiment

    fleet_spec = _fleet_spec(args, args.spec)
    registry = fleet_spec.build_registry()
    print(registry.describe_text())
    if args.eval:
        print()
        result = run_fleet_experiment(registry, max_epochs=args.max_epochs)
        print(result.rendered())
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    import numpy as np

    from .api import LocalizerSpec
    from .eval import format_table
    from .radio.time import SimTime
    from .tracking import (
        compare_tracking_methods,
        simulate_path_walk,
        simulate_random_walk,
    )

    suite = _suite_for(args.suite, args.seed)
    env = suite.metadata["environment"]
    localizer = LocalizerSpec(
        framework=args.framework, suite_name=suite.name, fast=args.fast
    ).build()
    rng = np.random.default_rng(args.seed)
    localizer.fit(suite.train, suite.floorplan, rng=rng)
    ci_hours = suite.metadata.get("ci_hours")
    start_time = (
        SimTime(ci_hours[args.epoch])
        if ci_hours is not None and args.epoch < len(ci_hours)
        else None
    )
    if args.suite == "uji":
        # Open grid floor: free-space waypoint walk is physical.
        trajectory = simulate_random_walk(
            env,
            n_waypoints=args.waypoints,
            epoch=args.epoch,
            start_time=start_time,
            rng=rng,
        )
    else:
        # Corridor paths: walk the surveyed path itself.
        trajectory = simulate_path_walk(
            env, epoch=args.epoch, start_time=start_time, rng=rng
        )
    print(
        f"walk: {trajectory.n_steps} scans over "
        f"{trajectory.path_length_m():.0f} m at epoch {args.epoch}"
    )
    results = compare_tracking_methods(
        localizer, trajectory, suite.floorplan, rng=rng
    )
    rows = [
        [method, s.mean_m, s.median_m, s.rmse_m, s.p95_m]
        for method, s in results.items()
    ]
    print(format_table(["method", "mean", "median", "rmse", "p95"], rows))
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    import numpy as np

    from .api import LocalizerSpec
    from .compress import (
        QuantizationSpec,
        deployment_table,
        magnitude_prune,
        model_cost,
        quantize_model,
    )
    from .eval import evaluate_localizer

    suite = _suite_for(args.suite, args.seed)
    rng = np.random.default_rng(args.seed)
    stone = LocalizerSpec(
        framework="STONE", suite_name=suite.name, fast=args.fast
    ).build()
    stone.fit(suite.train, suite.floorplan, rng=rng)
    result = evaluate_localizer(stone, suite, rng=rng, fit=False)
    print(f"float32 STONE: overall mean {result.overall_mean():.2f} m")
    cost = model_cost(
        stone.encoder, (1, stone.preprocessor.image_side, stone.preprocessor.image_side)
    )
    print(cost.table())
    quantized = quantize_model(stone.encoder, QuantizationSpec(bits=args.bits))
    stone.set_encoder(quantized.dequantized_model())
    q_result = evaluate_localizer(stone, suite, rng=rng, fit=False)
    print(
        f"int{args.bits} STONE: overall mean {q_result.overall_mean():.2f} m "
        f"({quantized.compression_ratio():.1f}x smaller)"
    )
    if args.sparsity > 0:
        pruned_model, report = magnitude_prune(stone.encoder, args.sparsity)
        stone.set_encoder(pruned_model)
        p_result = evaluate_localizer(stone, suite, rng=rng, fit=False)
        print(
            f"+{args.sparsity:.0%} pruned: overall mean "
            f"{p_result.overall_mean():.2f} m ({report.compression_ratio():.2f}x)"
        )
    print()
    print(deployment_table(cost, weight_bytes=quantized.storage_bytes()))
    return 0


def _cmd_multifloor(args: argparse.Namespace) -> int:
    import numpy as np

    from .api import LocalizerSpec
    from .multifloor import (
        HierarchicalLocalizer,
        MultiFloorConfig,
        evaluate_multifloor,
        generate_multifloor_suite,
    )

    config = MultiFloorConfig(
        aps_per_floor=args.aps_per_floor,
        n_months=args.months,
        train_fpr=4 if args.fast else 6,
        test_fpr=1 if args.fast else 2,
    )
    suite = generate_multifloor_suite(args.seed, config=config)
    print(suite.describe())
    floor_spec = LocalizerSpec(
        framework=args.framework, suite_name="uji", fast=args.fast
    )
    localizer = HierarchicalLocalizer(lambda floor: floor_spec.build())
    results = evaluate_multifloor(
        localizer, suite, rng=np.random.default_rng(args.seed)
    )
    for r in results:
        print(r.as_row())
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from .serve.store import ModelStore

    store = ModelStore(args.model_dir)
    # A fleet spec binds slots to digests: those artifacts are "live"
    # (annotated in ls, never pruned). Building the registry against
    # this store warm-loads from disk, so present artifacts do not refit.
    bindings: dict[str, str] = {}
    if args.fleet:
        registry = _fleet_spec(args, args.fleet).build_registry(store=store)
        for slot in registry.slots():
            bindings[slot.entry.key.digest] = slot.slot.label
    manifest = store.disk_manifest()
    for row in manifest:
        row["slot"] = bindings.get(row["digest"])
    if args.action == "prune":
        removed = store.prune(
            keep=args.keep, dry_run=args.dry_run, referenced=set(bindings)
        )
        verb = "would remove" if args.dry_run else "removed"
        for row in removed:
            print(
                f"{verb}: {row['digest'][:16]}  {row['framework']}/"
                f"{row['suite']}  {row['size_bytes']} bytes"
            )
        kept = len(manifest) - len(removed)
        print(f"{verb} {len(removed)} artifact(s), kept {kept}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump({"removed": removed, "kept": kept}, fh,
                          indent=2, sort_keys=True)
        return 0
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"artifacts": manifest}, fh, indent=2, sort_keys=True)
        print(f"wrote manifest: {args.json}")
        return 0
    if not manifest:
        print(f"no artifacts under {store.model_dir}")
        return 0
    from .eval import format_table

    rows = []
    for row in manifest:
        if "error" in row:
            rows.append([row["digest"][:16], row["error"], "", "", "", "",
                         row["size_bytes"], ""])
            continue
        rows.append([
            row["digest"][:16],
            row["framework"],
            row["suite"],
            f"seed={row['seed']}" + (" fast" if row["fast"] else ""),
            row["backend"],
            row["index_tag"],
            row["size_bytes"],
            row["slot"] or "",
        ])
    print(format_table(
        ["digest", "framework", "suite", "config", "backend", "index",
         "bytes", "slot"],
        rows,
    ))
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    import json
    import time

    from .synth import (
        ChaosSpec,
        LoadSpec,
        full_city,
        generate_building_suite,
        generate_fleet,
        quick_city,
        run_load,
        suite_content_hash,
    )

    spec = full_city() if args.preset == "full" else quick_city()
    overrides = {
        "n_buildings": args.buildings,
        "floors_per_building": args.floors,
        "n_months": args.months,
        "ap_density_per_100m2": args.ap_density,
        "environment": args.environment,
        "dropout_rate": args.dropout_rate,
    }
    spec = spec.scaled(**{k: v for k, v in overrides.items() if v is not None})
    print(spec.describe())
    print(f"fingerprint: {spec.fingerprint()}")

    report: dict = {"spec": spec.to_dict(), "fingerprint": spec.fingerprint()}
    probe = generate_building_suite(spec, args.seed)
    content = suite_content_hash(probe)
    print(
        f"\n{probe.name}: {probe.train.n_samples} train rows, "
        f"{len(probe.test_epochs)} test months — content {content[:16]}…"
    )
    report["building0_content_hash"] = content

    registry = None
    if args.fleet or args.load:
        if args.index == "mixed":
            index = "mixed"
        elif args.index == "exhaustive":
            index = None
        else:
            from .index import IndexConfig

            index = IndexConfig(kind=args.index, seed=args.seed)

        def progress(done: int, total: int) -> None:
            if done == total or done % 10 == 0:
                print(f"  fitted {done}/{total} buildings", flush=True)

        t0 = time.perf_counter()
        registry = generate_fleet(
            spec,
            seed=args.seed,
            framework=args.framework,
            fast=not args.full_models,
            index=index,
            model_dir=args.model_dir,
            progress=progress if spec.n_buildings >= 20 else None,
        )
        build_s = time.perf_counter() - t0
        print(f"\nfleet up in {build_s:.2f}s:")
        print(registry.describe_text())
        report["fleet"] = {
            "n_buildings": len(registry.buildings),
            "n_slots": registry.n_slots,
            "n_aps": registry.n_aps,
            "build_seconds": round(build_s, 3),
        }

    if args.load:
        chaos = ChaosSpec(
            malformed=args.chaos_malformed,
            oversized=args.chaos_oversized,
            misroute=args.chaos_misroute,
            bad_observation=args.chaos_bad_observe,
        )
        load = LoadSpec(
            mode=args.load,
            clients=args.clients,
            rate_rps=args.rate,
            burst=args.burst,
            duration_s=args.duration,
            batch_rows=args.batch_rows,
            zipf_s=args.zipf,
            pin_fraction=args.pin_fraction,
            observe_fraction=args.observe_fraction,
            seed=args.seed,
            chaos=chaos,
        )
        from .fleet.dispatch import FleetDispatcher
        from .obs import MetricsRegistry

        # Own the dispatcher so its bound metrics registry survives the
        # run: the post-run snapshot is exactly the fleet-/metrics delta
        # a scrape pair around the load window would show.
        metrics = MetricsRegistry()
        dispatcher = FleetDispatcher(registry, batch_window_ms=1.0)
        dispatcher.bind_metrics(metrics)
        live = None
        if load.observe_fraction > 0 or chaos.bad_observation > 0:
            from .live import LiveManager

            live = LiveManager(dispatcher)
            live.bind_metrics(metrics)
        try:
            result = run_load(registry, load, dispatcher=dispatcher, live=live)
            dispatcher.update_gauges()
            fleet_metrics = metrics.snapshot().as_dict()
            live_summary = live.describe() if live is not None else None
        finally:
            if live is not None:
                live.close()
            dispatcher.close()
        print()
        print(result.describe())
        report["load"] = result.to_dict()
        report["load"]["fleet_metrics"] = fleet_metrics
        if live_summary is not None:
            report["load"]["live"] = live_summary

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"\nwrote report: {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro.cli`` argument parser."""
    from . import __version__
    from .serve.protocol import API_VERSION

    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="STONE reproduction toolbox (DATE 2022)",
    )
    parser.add_argument(
        "--version",
        action="version",
        # api v{N} is the wire-protocol version servers/clients
        # negotiate (the `api_version` field); see docs/api.md.
        version=f"repro {__version__} (api v{API_VERSION})",
        help="print package and wire-protocol versions, then exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("id", help=f"one of: {', '.join(_FIGURES)}")
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--fast", action="store_true", help="smoke-scale models")
    p_fig.add_argument("--out", help="also write the artefact to this file")
    _add_engine_flags(p_fig)
    p_fig.set_defaults(fn=_cmd_figure)

    p_cmp = sub.add_parser("compare", help="compare frameworks on a suite")
    p_cmp.add_argument("suite", choices=("office", "basement", "uji"))
    p_cmp.add_argument(
        "--frameworks",
        default=",".join(PAPER_FRAMEWORKS),
        help="comma-separated framework names (registry: STONE, KNN, LT-KNN, GIFT, SCNN, SELE)",
    )
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--fast", action="store_true")
    _add_engine_flags(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_suite = sub.add_parser("suite", help="generate and describe a dataset suite")
    p_suite.add_argument("suite", choices=("office", "basement", "uji"))
    p_suite.add_argument("--seed", type=int, default=0)
    p_suite.add_argument("--out", help="save the offline training set (.npz)")
    p_suite.set_defaults(fn=_cmd_suite)

    p_srv = sub.add_parser(
        "serve",
        help="serve a long-lived fitted localizer over HTTP (micro-batched)",
    )
    p_srv.add_argument(
        "suite",
        nargs="?",
        default="office",
        choices=("office", "basement", "uji"),
        help="dataset suite for single-model serving (ignored with --fleet)",
    )
    p_srv.add_argument("--framework", default="STONE")
    p_srv.add_argument(
        "--fleet",
        default=None,
        metavar="SPEC",
        help=(
            "serve a whole fleet instead of one model: comma-separated "
            "buildings NAME:FLOORS[:INDEX_KIND], e.g. 'HQ:2,LAB:3:kmeans'; "
            "scans route hierarchically to per-(building, floor) warm "
            "models (the positional suite is ignored)"
        ),
    )
    p_srv.add_argument(
        "--max-pending-rows",
        type=int,
        default=None,
        help=(
            "fleet admission bound: rows in flight before new requests "
            "get 429 (default: two protocol-maximum batches; fleet "
            "mode only)"
        ),
    )
    p_srv.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "run fleet slots in this many worker processes, radio maps "
            "shared over shared memory; answers stay bit-identical "
            "(default: 0 = in-process; fleet mode only)"
        ),
    )
    _add_fleet_gen_flags(p_srv)
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=8000, help="0 = ephemeral port"
    )
    p_srv.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help=(
            "how long the first queued request waits for co-batchable "
            "traffic before dispatch (default: 2.0)"
        ),
    )
    p_srv.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="dispatch immediately at this many pending rows (default: 256)",
    )
    p_srv.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=_CHUNK_SIZE_HELP,
    )
    p_srv.add_argument(
        "--model-dir",
        default=None,
        help=(
            "persist fitted models here so a server restart warm-loads "
            "instead of refitting (default: fit in-process only)"
        ),
    )
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument("--fast", action="store_true", help="smoke-scale models")
    p_srv.add_argument(
        "--log-json",
        action="store_true",
        help=(
            "emit one structured JSON log line per request to stderr "
            "(component, request_id, endpoint, status, duration)"
        ),
    )
    p_srv.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help=(
            "with --log-json, only log successful requests slower than "
            "this many milliseconds; errors always log (default: log all)"
        ),
    )
    p_srv.add_argument(
        "--drift-threshold-m",
        type=float,
        default=None,
        metavar="M",
        help=(
            "live ingest (POST /observe): refit + hot-swap a slot once "
            "its buffered observations' mean error under the serving "
            "model exceeds this many meters (default: drift scoring "
            "off; the buffer-full trigger still applies; fleet mode only)"
        ),
    )
    p_srv.add_argument(
        "--live-min-scans",
        type=int,
        default=32,
        help=(
            "never judge drift (or refit) on fewer buffered scans than "
            "this (default: 32; fleet mode only)"
        ),
    )
    p_srv.add_argument(
        "--live-max-scans",
        type=int,
        default=4096,
        help=(
            "refit unconditionally once this many scans are buffered "
            "(default: 4096; fleet mode only)"
        ),
    )
    p_srv.add_argument(
        "--live-max-age-s",
        type=float,
        default=None,
        metavar="S",
        help=(
            "refit once the oldest buffered scan is this old "
            "(default: no age trigger; fleet mode only)"
        ),
    )
    _add_index_flags(p_srv)
    _add_backend_flag(p_srv)
    p_srv.set_defaults(fn=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="inspect (and optionally evaluate) a multi-building fleet",
    )
    p_fleet.add_argument(
        "spec",
        help="comma-separated buildings NAME:FLOORS[:INDEX_KIND]",
    )
    p_fleet.add_argument("--framework", default="KNN")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--fast", action="store_true", help="smoke-scale models")
    p_fleet.add_argument(
        "--eval",
        action="store_true",
        help=(
            "run the fleet experiment: routing accuracy and routed-vs-"
            "oracle localization error across the test months"
        ),
    )
    p_fleet.add_argument(
        "--max-epochs",
        type=int,
        default=None,
        help="cap evaluated test months (default: all generated)",
    )
    p_fleet.add_argument(
        "--model-dir",
        default=None,
        help="persist/warm-load slot models here (shared fleet store)",
    )
    _add_fleet_gen_flags(p_fleet)
    _add_index_flags(p_fleet)
    _add_backend_flag(p_fleet)
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_store = sub.add_parser(
        "store",
        help="audit (and prune) the persisted fitted-model artifact store",
    )
    p_store.add_argument(
        "action",
        nargs="?",
        choices=("ls", "prune"),
        default="ls",
        help=(
            "ls = list every artifact with its self-described identity "
            "(spec fingerprint, backend, size, slot binding); prune = "
            "delete superseded versions per configuration group "
            "(default: ls)"
        ),
    )
    p_store.add_argument(
        "--model-dir",
        required=True,
        help="the artifact directory to audit (repro serve --model-dir)",
    )
    p_store.add_argument(
        "--fleet",
        default=None,
        metavar="SPEC",
        help=(
            "annotate artifacts with the slot bindings this fleet spec "
            "resolves to (e.g. 'HQ:2,LAB:3'); bound digests are never "
            "pruned"
        ),
    )
    p_store.add_argument(
        "--keep",
        type=int,
        default=1,
        help=(
            "prune: versions to keep per configuration group, newest "
            "first (default: 1)"
        ),
    )
    p_store.add_argument(
        "--dry-run",
        action="store_true",
        help="prune: report what would be removed without deleting",
    )
    p_store.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the manifest/prune report here as JSON",
    )
    p_store.add_argument("--framework", default="KNN")
    p_store.add_argument("--seed", type=int, default=0)
    p_store.add_argument(
        "--fast", action="store_true",
        help="with --fleet: the fleet was built at smoke scale",
    )
    _add_fleet_gen_flags(p_store)
    _add_index_flags(p_store)
    _add_backend_flag(p_store)
    p_store.set_defaults(fn=_cmd_store)

    p_track = sub.add_parser(
        "track", help="compare trajectory smoothing strategies on a walk"
    )
    p_track.add_argument("suite", choices=("office", "basement", "uji"))
    p_track.add_argument("--framework", default="STONE")
    p_track.add_argument("--epoch", type=int, default=0, help="AP-lifecycle epoch")
    p_track.add_argument("--waypoints", type=int, default=5)
    p_track.add_argument("--seed", type=int, default=0)
    p_track.add_argument("--fast", action="store_true")
    p_track.set_defaults(fn=_cmd_track)

    p_comp = sub.add_parser(
        "compress", help="quantize/prune STONE's encoder and re-evaluate"
    )
    p_comp.add_argument("suite", choices=("office", "basement", "uji"))
    p_comp.add_argument("--bits", type=int, default=8)
    p_comp.add_argument("--sparsity", type=float, default=0.0)
    p_comp.add_argument("--seed", type=int, default=0)
    p_comp.add_argument("--fast", action="store_true")
    p_comp.set_defaults(fn=_cmd_compress)

    p_mf = sub.add_parser(
        "multifloor", help="two-floor UJI-like hierarchical evaluation"
    )
    p_mf.add_argument("--framework", default="KNN")
    p_mf.add_argument("--months", type=int, default=6)
    p_mf.add_argument("--aps-per-floor", type=int, default=40)
    p_mf.add_argument("--seed", type=int, default=0)
    p_mf.add_argument("--fast", action="store_true")
    p_mf.set_defaults(fn=_cmd_multifloor)

    p_syn = sub.add_parser(
        "synth",
        help="generate a synthetic city, stand up its fleet, stress it",
    )
    p_syn.add_argument(
        "--preset",
        choices=("quick", "full"),
        default="quick",
        help=(
            "base scenario: quick = 4 buildings x 2 floors (seconds), "
            "full = 100 buildings x 10 floors = 1000 slots (default: quick)"
        ),
    )
    p_syn.add_argument("--buildings", type=int, default=None)
    p_syn.add_argument("--floors", type=int, default=None)
    p_syn.add_argument(
        "--months", type=int, default=None, help="longitudinal test months"
    )
    p_syn.add_argument(
        "--ap-density",
        type=float,
        default=None,
        help="access points per 100 m^2 of floor area",
    )
    p_syn.add_argument(
        "--environment", choices=("open", "office", "basement"), default=None
    )
    p_syn.add_argument(
        "--dropout-rate",
        type=float,
        default=None,
        help="fraction of APs going dark per month (AP churn)",
    )
    p_syn.add_argument("--seed", type=int, default=0)
    p_syn.add_argument(
        "--fleet",
        action="store_true",
        help="also fit the whole city into a FleetRegistry",
    )
    p_syn.add_argument("--framework", default="KNN")
    p_syn.add_argument(
        "--full-models",
        action="store_true",
        help="fit full-scale slot models (default: fast smoke-scale)",
    )
    p_syn.add_argument(
        "--index",
        choices=("mixed", "exhaustive", "region", "kmeans"),
        default="mixed",
        help=(
            "per-building index configs: 'mixed' rotates all kinds "
            "across the city (default: mixed)"
        ),
    )
    p_syn.add_argument(
        "--model-dir",
        default=None,
        help="persist/warm-load slot models here (shared fleet store)",
    )
    p_syn.add_argument(
        "--load",
        choices=("closed", "open"),
        default=None,
        help=(
            "run the load generator against the fleet (implies --fleet): "
            "closed = N clients back-to-back, open = fixed-rate bursts"
        ),
    )
    p_syn.add_argument("--duration", type=float, default=2.0, metavar="S")
    p_syn.add_argument("--clients", type=int, default=8)
    p_syn.add_argument(
        "--rate", type=float, default=200.0, help="open-loop offered rps"
    )
    p_syn.add_argument(
        "--burst", type=int, default=1, help="open-loop burst-train length"
    )
    p_syn.add_argument("--batch-rows", type=int, default=4)
    p_syn.add_argument(
        "--zipf",
        type=float,
        default=0.0,
        help="hot-slot skew exponent (slot popularity ~ 1/rank^s)",
    )
    p_syn.add_argument(
        "--pin-fraction",
        type=float,
        default=0.0,
        help="fraction of requests pinned to their true (building, floor)",
    )
    p_syn.add_argument(
        "--observe-fraction",
        type=float,
        default=0.0,
        metavar="FRAC",
        help=(
            "fraction of requests sent as labeled /observe ingests into "
            "the live-update loop instead of localizations"
        ),
    )
    p_syn.add_argument(
        "--chaos-malformed", type=float, default=0.0, metavar="FRAC"
    )
    p_syn.add_argument(
        "--chaos-oversized", type=float, default=0.0, metavar="FRAC"
    )
    p_syn.add_argument(
        "--chaos-misroute", type=float, default=0.0, metavar="FRAC"
    )
    p_syn.add_argument(
        "--chaos-bad-observe",
        type=float,
        default=0.0,
        metavar="FRAC",
        help=(
            "fraction of requests sent as malformed/mislabeled /observe "
            "payloads (must 400 without poisoning any buffer)"
        ),
    )
    p_syn.add_argument(
        "--json", metavar="PATH", default=None, help="write the run report here"
    )
    p_syn.set_defaults(fn=_cmd_synth)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
